//! Cascade reconciliation (Brassard & Salvail \[21\], as used by Han et al.
//! \[9\]).
//!
//! The protocol runs several passes. In each pass the key is shuffled with a
//! shared permutation and partitioned into blocks (`k` bits in the first
//! pass, doubling each pass). The parties compare block parities over the
//! public channel; every mismatching block is binary-searched (CONFIRM) to
//! locate and flip one error. Corrections found in later passes trigger
//! re-checks of earlier blocks containing the corrected position
//! ("cascading").
//!
//! Cascade corrects efficiently but is **interactive**: each binary-search
//! step is a round trip, which is exactly the overhead the paper's
//! autoencoder reconciliation eliminates (one syndrome message). Two entry
//! points expose it:
//!
//! * [`CascadeReconciler::reconcile`] — the offline simulation used by the
//!   paper's comparison: both keys in hand, parities answered locally.
//! * [`CascadeEngine`] — the Alice-side interactive engine behind the
//!   escalation ladder (DESIGN §11): it emits batched rounds of parity
//!   *queries* (explicit position lists) for the wire, absorbs Bob's parity
//!   answers, and tracks the information leaked so privacy amplification can
//!   debit it. Bob's side is stateless: [`parities`] over his fixed key.

use crate::{ReconcileResult, Reconciler};
use quantize::BitString;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Cascade reconciler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeReconciler {
    /// Initial block length `k` (the paper's comparison sets `k = 3`).
    pub initial_block: usize,
    /// Number of passes (the paper's comparison sets 4).
    pub passes: usize,
    /// Whether corrections trigger re-checks of earlier passes' blocks
    /// (the "cascade" step). The strict pass-limited variant — matching the
    /// paper's "iteration number is set to 4" — disables it; the full
    /// protocol enables it at the cost of extra interaction.
    pub backtrack: bool,
    /// Seed for the shared pass permutations.
    pub seed: u64,
}

impl CascadeReconciler {
    /// Cascade with initial block length `k` and `passes` passes.
    pub fn new(initial_block: usize, passes: usize) -> Self {
        CascadeReconciler {
            initial_block,
            passes,
            backtrack: true,
            seed: 0xCA5C_ADE,
        }
    }

    /// The paper's comparison configuration: `k = 3`, 4 passes, strictly
    /// pass-limited (no backtracking beyond the 4 iterations).
    pub fn paper_default() -> Self {
        CascadeReconciler {
            initial_block: 3,
            passes: 4,
            backtrack: false,
            seed: 0xCA5C_ADE,
        }
    }
}

/// One parity query: the key positions whose XOR the peer must report.
pub type ParityQuery = Vec<usize>;

/// Parity of `key` over the positions in `idx`.
///
/// # Panics
///
/// Panics if any position is out of range — callers answering wire queries
/// must validate indices first.
pub fn parity(key: &BitString, idx: &[usize]) -> bool {
    idx.iter().fold(false, |acc, &i| acc ^ key.get(i))
}

/// Answer a batch of parity queries over a fixed key — Bob's entire role in
/// interactive Cascade.
///
/// # Panics
///
/// Panics if any queried position is out of range.
pub fn parities(key: &BitString, queries: &[ParityQuery]) -> Vec<bool> {
    queries.iter().map(|q| parity(key, q)).collect()
}

/// An in-flight CONFIRM binary search over one odd-parity block.
#[derive(Debug, Clone)]
struct BinarySearch {
    block: Vec<usize>,
    lo: usize,
    hi: usize,
}

/// What each query of an outstanding round corresponds to.
#[derive(Debug, Clone, Copy)]
enum RoundItem {
    /// Halving probe of the binary search at this index in `searches`.
    Probe(usize),
    /// Top-level parity check of a (possibly re-queued) block.
    Check,
}

#[derive(Debug, Clone)]
struct Round {
    queries: Vec<ParityQuery>,
    items: Vec<RoundItem>,
}

/// Alice-side interactive Cascade: emits rounds of parity queries, absorbs
/// the peer's answers, and corrects its key in place.
///
/// Queries within one round cover pairwise-disjoint position sets, so a bit
/// flipped while absorbing one answer can never invalidate another answer of
/// the same round; conflicting checks are simply held for a later round.
/// [`next_round`](Self::next_round) is idempotent — until
/// [`absorb`](Self::absorb) consumes the outstanding round it returns the
/// same queries, matching the retransmission discipline of the wire layer.
/// Leakage and message counts advance only when a round is absorbed, i.e.
/// only for parities the peer actually revealed.
#[derive(Debug, Clone)]
pub struct CascadeEngine {
    config: CascadeReconciler,
    key: BitString,
    rng: StdRng,
    /// Next pass to start (0-based).
    pass: usize,
    /// Blocks of the in-progress pass, committed to history at pass end.
    current_pass_blocks: Vec<Vec<usize>>,
    /// Blocks of completed passes, for cascading re-checks.
    history: Vec<Vec<usize>>,
    /// Blocks whose parity must be (re-)checked.
    pending: Vec<Vec<usize>>,
    searches: Vec<BinarySearch>,
    round: Option<Round>,
    leaked_bits: usize,
    messages: usize,
    done: bool,
}

impl CascadeEngine {
    /// Start an engine correcting `key` (Alice's noisy copy).
    pub fn new(config: CascadeReconciler, key: BitString) -> Self {
        let done = key.len() == 0 || config.passes == 0;
        CascadeEngine {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            key,
            pass: 0,
            current_pass_blocks: Vec::new(),
            history: Vec::new(),
            pending: Vec::new(),
            searches: Vec::new(),
            round: None,
            leaked_bits: 0,
            messages: 0,
            done,
        }
    }

    /// The queries the peer must answer next, or `None` when the protocol
    /// has run out of passes. Repeated calls without an intervening
    /// [`absorb`](Self::absorb) return the same round.
    pub fn next_round(&mut self) -> Option<Vec<ParityQuery>> {
        loop {
            if let Some(round) = &self.round {
                return Some(round.queries.clone());
            }
            if self.done {
                return None;
            }
            if !self.searches.is_empty() || !self.pending.is_empty() {
                self.build_round();
                continue;
            }
            // Pass drained: only now are its blocks eligible for cascading
            // re-checks (a block must never re-queue itself mid-search).
            self.history.append(&mut self.current_pass_blocks);
            if self.pass >= self.config.passes {
                self.done = true;
                return None;
            }
            self.start_pass();
        }
    }

    fn start_pass(&mut self) {
        let n = self.key.len();
        let block_len = (self.config.initial_block << self.pass).clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        if self.pass > 0 {
            order.shuffle(&mut self.rng);
        }
        let blocks: Vec<Vec<usize>> = order.chunks(block_len).map(<[usize]>::to_vec).collect();
        self.current_pass_blocks.clone_from(&blocks);
        self.pending = blocks;
        self.pass += 1;
    }

    /// Assemble the next round from active searches and pending checks,
    /// holding back anything whose positions overlap an earlier pick.
    fn build_round(&mut self) {
        let mut claimed = std::collections::HashSet::new();
        let mut queries: Vec<ParityQuery> = Vec::new();
        let mut items = Vec::new();
        for (si, s) in self.searches.iter().enumerate() {
            if s.block[s.lo..s.hi].iter().any(|p| claimed.contains(p)) {
                continue;
            }
            claimed.extend(s.block[s.lo..s.hi].iter().copied());
            let mid = s.lo + (s.hi - s.lo) / 2;
            queries.push(s.block[s.lo..mid].to_vec());
            items.push(RoundItem::Probe(si));
        }
        let mut held = Vec::new();
        for check in self.pending.drain(..) {
            if check.iter().any(|p| claimed.contains(p)) {
                held.push(check);
                continue;
            }
            claimed.extend(check.iter().copied());
            queries.push(check);
            items.push(RoundItem::Check);
        }
        self.pending = held;
        debug_assert!(!queries.is_empty(), "round built from empty work set");
        self.round = Some(Round { queries, items });
    }

    /// Flip `pos` and queue cascading re-checks of earlier-pass blocks that
    /// contain it.
    fn flip(&mut self, pos: usize) {
        self.key.set(pos, !self.key.get(pos));
        if self.config.backtrack {
            for earlier in &self.history {
                if earlier.contains(&pos) {
                    self.pending.push(earlier.clone());
                }
            }
        }
    }

    /// Absorb the peer's answers to the outstanding round.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the round outstanding, so it can be
    /// re-emitted) when no round is outstanding or the answer count does not
    /// match the query count.
    pub fn absorb(&mut self, answers: &[bool]) -> Result<(), String> {
        let Some(round) = self.round.take() else {
            return Err("no outstanding cascade round".into());
        };
        if answers.len() != round.queries.len() {
            let expected = round.queries.len();
            self.round = Some(round);
            return Err(format!(
                "expected {expected} parities, got {}",
                answers.len()
            ));
        }
        // Every absorbed query is one revealed parity bit and one
        // query/answer message pair.
        self.leaked_bits += round.queries.len();
        self.messages += 2 * round.queries.len();
        let mut finished = Vec::new();
        for ((item, query), &bob) in round.items.iter().zip(&round.queries).zip(answers) {
            let mine = parity(&self.key, query);
            match *item {
                RoundItem::Probe(si) => {
                    let s = &mut self.searches[si];
                    let mid = s.lo + (s.hi - s.lo) / 2;
                    if mine != bob {
                        s.hi = mid;
                    } else {
                        s.lo = mid;
                    }
                    if s.hi - s.lo == 1 {
                        let pos = s.block[s.lo];
                        finished.push(si);
                        self.flip(pos);
                    }
                }
                RoundItem::Check => {
                    if mine != bob {
                        if query.len() == 1 {
                            self.flip(query[0]);
                        } else {
                            self.searches.push(BinarySearch {
                                block: query.clone(),
                                lo: 0,
                                hi: query.len(),
                            });
                        }
                    }
                }
            }
        }
        for &si in finished.iter().rev() {
            self.searches.remove(si);
        }
        Ok(())
    }

    /// Alice's key as corrected so far.
    pub fn key(&self) -> &BitString {
        &self.key
    }

    /// Consume the engine, yielding the corrected key.
    pub fn into_key(self) -> BitString {
        self.key
    }

    /// Parity bits revealed by the peer so far (absorbed rounds only).
    pub fn leaked_bits(&self) -> usize {
        self.leaked_bits
    }

    /// Protocol messages exchanged so far (one query + one answer per
    /// absorbed parity).
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Whether every pass has completed.
    pub fn is_done(&self) -> bool {
        self.done && self.round.is_none()
    }
}

impl Reconciler for CascadeReconciler {
    fn reconcile(&self, k_alice: &BitString, k_bob: &BitString) -> ReconcileResult {
        assert_eq!(k_alice.len(), k_bob.len(), "key length mismatch");
        let mut engine = CascadeEngine::new(*self, k_alice.clone());
        while let Some(queries) = engine.next_round() {
            let answers = parities(k_bob, &queries);
            engine
                .absorb(&answers)
                .expect("lockstep answers match the round"); // vk-lint: allow(panic-freedom, "answers parity our own round's queries; absorb cannot mismatch in lockstep")
        }
        ReconcileResult {
            leaked_bits: engine.leaked_bits(),
            messages: engine.messages(),
            corrected: engine.into_key(),
        }
    }

    fn name(&self) -> String {
        format!("Cascade k={} passes={}", self.initial_block, self.passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn random_key(seed: u64, n: usize) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<bool>()).collect()
    }

    fn flip_random(k: &BitString, count: usize, seed: u64) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..k.len()).collect();
        idx.shuffle(&mut rng);
        let mut out = k.clone();
        for &p in idx.iter().take(count) {
            out.set(p, !out.get(p));
        }
        out
    }

    #[test]
    fn identical_keys_untouched() {
        let k = random_key(141, 128);
        let r = CascadeReconciler::paper_default().reconcile(&k, &k);
        assert_eq!(r.corrected, k);
    }

    #[test]
    fn corrects_sparse_errors() {
        let kb = random_key(142, 128);
        for errors in [1, 3, 6, 10] {
            let ka = flip_random(&kb, errors, 142 + errors as u64);
            let r = CascadeReconciler::new(3, 4).reconcile(&ka, &kb);
            assert_eq!(r.corrected, kb, "{errors} errors should be fully corrected");
        }
    }

    #[test]
    fn high_error_rate_mostly_corrected() {
        let kb = random_key(143, 256);
        let ka = flip_random(&kb, 30, 999); // ~12% BDR
        let r = CascadeReconciler::new(3, 4).reconcile(&ka, &kb);
        let remaining = r.corrected.hamming(&kb);
        assert!(remaining <= 4, "{remaining} errors remain");
    }

    #[test]
    fn pass_limited_variant_leaves_residual_errors_at_high_bdr() {
        // The strict 4-pass configuration cannot fully equalize heavily
        // mismatched keys — the practical limit the comparison reflects.
        let kb = random_key(146, 256);
        let ka = flip_random(&kb, 80, 1000); // ~31% BDR
        let strict = CascadeReconciler::paper_default().reconcile(&ka, &kb);
        assert!(
            strict.corrected.hamming(&kb) > 0,
            "pass-limited cascade should not fully correct 31% BDR"
        );
    }

    #[test]
    fn interactive_cost_grows_with_errors() {
        let kb = random_key(144, 128);
        let few = CascadeReconciler::paper_default().reconcile(&flip_random(&kb, 2, 1), &kb);
        let many = CascadeReconciler::paper_default().reconcile(&flip_random(&kb, 12, 2), &kb);
        assert!(many.messages > few.messages);
        assert!(many.leaked_bits > few.leaked_bits);
    }

    #[test]
    fn cascade_uses_many_messages() {
        // The paper's core complaint: multiple rounds of exchange.
        let kb = random_key(145, 128);
        let ka = flip_random(&kb, 8, 3);
        let r = CascadeReconciler::paper_default().reconcile(&ka, &kb);
        assert!(r.messages > 50, "messages {}", r.messages);
    }

    #[test]
    fn empty_keys() {
        let k = BitString::new();
        let r = CascadeReconciler::paper_default().reconcile(&k, &k);
        assert_eq!(r.corrected.len(), 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn engine_round_queries_are_disjoint_and_in_range() {
        let kb = random_key(150, 128);
        let ka = flip_random(&kb, 9, 151);
        let mut engine = CascadeEngine::new(CascadeReconciler::new(4, 3), ka);
        while let Some(queries) = engine.next_round() {
            let mut seen = std::collections::HashSet::new();
            for q in &queries {
                assert!(!q.is_empty());
                for &p in q {
                    assert!(p < 128, "query position {p} out of range");
                    assert!(seen.insert(p), "position {p} queried twice in one round");
                }
            }
            engine.absorb(&parities(&kb, &queries)).unwrap();
        }
        assert_eq!(engine.into_key(), kb);
    }

    #[test]
    fn engine_reemits_round_until_absorbed() {
        let kb = random_key(152, 64);
        let ka = flip_random(&kb, 4, 153);
        let mut engine = CascadeEngine::new(CascadeReconciler::new(4, 2), ka);
        let first = engine.next_round().unwrap();
        // Retransmission: the same round comes back, nothing is double-counted.
        assert_eq!(engine.next_round().unwrap(), first);
        assert_eq!(engine.leaked_bits(), 0, "leak counted only on absorb");
        engine.absorb(&parities(&kb, &first)).unwrap();
        assert_eq!(engine.leaked_bits(), first.len());
        assert_eq!(engine.messages(), 2 * first.len());
    }

    #[test]
    fn engine_rejects_mismatched_answer_counts() {
        let kb = random_key(154, 64);
        let ka = flip_random(&kb, 3, 155);
        let mut engine = CascadeEngine::new(CascadeReconciler::new(4, 2), ka);
        let round = engine.next_round().unwrap();
        assert!(engine.absorb(&[]).is_err());
        // The round survives a bad answer and can still be completed.
        assert_eq!(engine.next_round().unwrap(), round);
        engine.absorb(&parities(&kb, &round)).unwrap();
    }

    #[test]
    fn engine_matches_simulated_reconcile_cost() {
        let kb = random_key(156, 128);
        let ka = flip_random(&kb, 6, 157);
        let config = CascadeReconciler::new(3, 4);
        let sim = config.reconcile(&ka, &kb);
        let mut engine = CascadeEngine::new(config, ka);
        while let Some(queries) = engine.next_round() {
            engine.absorb(&parities(&kb, &queries)).unwrap();
        }
        assert!(engine.is_done());
        assert_eq!(engine.leaked_bits(), sim.leaked_bits);
        assert_eq!(engine.messages(), sim.messages);
        assert_eq!(engine.into_key(), sim.corrected);
    }
}
