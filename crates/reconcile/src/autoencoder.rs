//! Autoencoder-based reconciliation — the paper's contribution (Sec. IV-C).
//!
//! Protocol (Fig. 7):
//!
//! 1. both keys pass the position-preserving mask (`K → K′`, see
//!    [`crate::bloom`]);
//! 2. Bob computes the syndrome `y_Bob = f₁(K′_Bob)` with his MLP encoder
//!    and transmits it (plus a MAC, handled by the protocol layer in the
//!    `vehicle-key` crate);
//! 3. Alice computes `y_Alice = f₂(K′_Alice)`, forms `h = y_Bob − y_Alice`,
//!    and decodes the mismatch vector `Δx = g(h)` with the MLP decoder;
//! 4. Alice corrects `K″_Alice = K′_Alice ⊕ Δx`, then unmasks.
//!
//! The networks are trained **offline on synthetic mismatch distributions**
//! (random keys + Bernoulli bit flips at representative disagreement rates),
//! so no real channel data is consumed by training — Alice, Bob, and Eve all
//! hold the same public model, and security rests on Eve lacking the keys,
//! not the network.
//!
//! Deviation from the paper noted for reproducibility: Eq. 6 trains the
//! decoder with an ℓ₂ objective; we train the sigmoid output with binary
//! cross-entropy, which optimizes the same fixed point (the decoder's output
//! matching `K′_Bob ⊕ K′_Alice`) but converges faster for sparse binary
//! targets. The `repro ablate-loss` bench compares both.

use crate::bloom::PositionPreservingMask;
use crate::{ReconcileResult, Reconciler};
use nn::activation::Activation;
use nn::{codec, loss, Adam, Matrix, Mlp};
use quantize::BitString;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Fixed data-parallel shard width in batch rows for
/// [`AutoencoderTrainer::train`]. Part of the numerics (the gradient is
/// reduced shard by shard), so it must not depend on the thread count.
const SHARD_ROWS: usize = 16;

/// Decoder training objective (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainLoss {
    /// Binary cross-entropy (default).
    Bce,
    /// The paper's Eq. 6 ℓ₂ objective.
    Mse,
}

/// A trained autoencoder reconciler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoencoderReconciler {
    key_len: usize,
    code_dim: usize,
    hidden_units: usize,
    /// Bob's encoder `f₁: N → M`.
    f1: Mlp,
    /// Alice's encoder `f₂: N → M`.
    f2: Mlp,
    /// Decoder `g: M → U → U → U → N`.
    g: Mlp,
    /// Public per-session mask seed.
    mask_seed: u64,
}

impl AutoencoderReconciler {
    /// Key length `N` the model reconciles per segment.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Syndrome dimension `M`.
    pub fn code_dim(&self) -> usize {
        self.code_dim
    }

    /// Decoder hidden width `U` (the paper's AE-16 … AE-128 sweep).
    pub fn hidden_units(&self) -> usize {
        self.hidden_units
    }

    /// Set the public session mask seed (fresh per key agreement).
    pub fn with_mask_seed(mut self, seed: u64) -> Self {
        self.mask_seed = seed;
        self
    }

    /// The mask seed currently baked into the model.
    pub fn mask_seed(&self) -> u64 {
        self.mask_seed
    }

    /// The mask in use.
    pub fn mask(&self) -> PositionPreservingMask {
        PositionPreservingMask::new(self.mask_seed, self.key_len)
    }

    /// **Bob's step**: syndrome `y_Bob = f₁(mask(K_Bob))`.
    ///
    /// # Panics
    ///
    /// Panics if the key length differs from the model's.
    pub fn bob_syndrome(&self, k_bob: &BitString) -> Vec<f32> {
        self.bob_syndrome_seeded(self.mask_seed, k_bob)
    }

    /// [`AutoencoderReconciler::bob_syndrome`] under an explicit mask seed —
    /// lets many sessions share one immutable model
    /// ([`SharedReconciler`]) while each keeps its own session mask.
    ///
    /// # Panics
    ///
    /// Panics if the key length differs from the model's.
    pub fn bob_syndrome_seeded(&self, mask_seed: u64, k_bob: &BitString) -> Vec<f32> {
        assert_eq!(k_bob.len(), self.key_len, "key length mismatch");
        let masked = PositionPreservingMask::new(mask_seed, self.key_len).apply(k_bob);
        let x = Matrix::from_vec(1, self.key_len, masked.to_floats());
        self.f1.infer(&x).data().to_vec()
    }

    /// **Alice's step**: decode the mismatch vector from Bob's syndrome and
    /// her own key, returning her corrected key (in the original, unmasked
    /// domain).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn alice_correct(&self, y_bob: &[f32], k_alice: &BitString) -> BitString {
        self.alice_correct_seeded(self.mask_seed, y_bob, k_alice)
    }

    /// [`AutoencoderReconciler::alice_correct`] under an explicit mask seed
    /// (see [`AutoencoderReconciler::bob_syndrome_seeded`]).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn alice_correct_seeded(
        &self,
        mask_seed: u64,
        y_bob: &[f32],
        k_alice: &BitString,
    ) -> BitString {
        assert_eq!(k_alice.len(), self.key_len, "key length mismatch");
        assert_eq!(y_bob.len(), self.code_dim, "syndrome length mismatch");
        let mask = PositionPreservingMask::new(mask_seed, self.key_len);
        let masked = mask.apply(k_alice);
        let xa = Matrix::from_vec(1, self.key_len, masked.to_floats());
        let ya = self.f2.infer(&xa);
        let h = Matrix::from_vec(1, self.code_dim, y_bob.to_vec()).sub(&ya);
        let dx = self.g.infer(&h);
        let delta = BitString::from_soft(dx.data());
        let corrected_masked = masked.xor(&delta);
        mask.invert(&corrected_masked)
    }

    /// Serialize the trained model to a compact binary blob.
    ///
    /// Layout: magic `VKAE`, version byte, then `key_len` / `code_dim` /
    /// `hidden_units` as little-endian u32, `mask_seed` as u64, and the
    /// three MLPs `f1`, `f2`, `g` in [`nn::codec`]'s layout. The format is
    /// self-describing enough to reject foreign bytes, and infallible to
    /// write — no serde, no intermediate error path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = codec::Writer::new();
        w.put_bytes(Self::CODEC_MAGIC);
        w.put_u8(Self::CODEC_VERSION);
        w.put_u32(u32::try_from(self.key_len).unwrap_or(u32::MAX));
        w.put_u32(u32::try_from(self.code_dim).unwrap_or(u32::MAX));
        w.put_u32(u32::try_from(self.hidden_units).unwrap_or(u32::MAX));
        w.put_u64(self.mask_seed);
        codec::write_mlp(&mut w, &self.f1);
        codec::write_mlp(&mut w, &self.f2);
        codec::write_mlp(&mut w, &self.g);
        w.into_bytes()
    }
}

impl AutoencoderReconciler {
    /// Magic prefix of the serialized form.
    const CODEC_MAGIC: &'static [u8; 4] = b"VKAE";
    /// Format version. Caches written by the old serde-based format (no
    /// magic) fail to decode; callers retrain or regenerate them.
    const CODEC_VERSION: u8 = 1;

    /// Deserialize a model previously written by
    /// [`AutoencoderReconciler::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a message if the bytes are truncated, carry the wrong magic
    /// or version, or encode MLPs whose shapes contradict the header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = codec::Reader::new(bytes);
        let magic = r.get_array::<4>().map_err(|e| e.to_string())?;
        if &magic != Self::CODEC_MAGIC {
            return Err("not an autoencoder model (bad magic)".to_string());
        }
        let version = r.get_u8().map_err(|e| e.to_string())?;
        if version != Self::CODEC_VERSION {
            return Err(format!("unsupported model version {version}"));
        }
        let key_len = r.get_u32().map_err(|e| e.to_string())? as usize;
        let code_dim = r.get_u32().map_err(|e| e.to_string())? as usize;
        let hidden_units = r.get_u32().map_err(|e| e.to_string())? as usize;
        let mask_seed = r.get_u64().map_err(|e| e.to_string())?;
        let f1 = codec::read_mlp(&mut r).map_err(|e| e.to_string())?;
        let f2 = codec::read_mlp(&mut r).map_err(|e| e.to_string())?;
        let g = codec::read_mlp(&mut r).map_err(|e| e.to_string())?;
        if r.remaining() != 0 {
            return Err(format!("{} trailing byte(s)", r.remaining()));
        }
        for (name, mlp, input, output) in [
            ("f1", &f1, key_len, code_dim),
            ("f2", &f2, key_len, code_dim),
            ("g", &g, code_dim, key_len),
        ] {
            if mlp.input_size() != input || mlp.output_size() != output {
                return Err(format!(
                    "{name} is {}x{}, header says {input}x{output}",
                    mlp.input_size(),
                    mlp.output_size()
                ));
            }
        }
        Ok(AutoencoderReconciler {
            key_len,
            code_dim,
            hidden_units,
            f1,
            f2,
            g,
            mask_seed,
        })
    }
}

/// A cheaply-cloneable per-session view of one shared trained model.
///
/// The MLP weights of an [`AutoencoderReconciler`] run to hundreds of
/// kilobytes; cloning the model into every live session caps how many
/// sessions one box can hold. `SharedReconciler` keeps the trained weights
/// behind one immutable [`Arc`](std::sync::Arc) and carries only the
/// per-session public mask seed by value, so a clone is two machine words —
/// 10k concurrent sessions share a single copy of the weights.
#[derive(Debug, Clone)]
pub struct SharedReconciler {
    model: std::sync::Arc<AutoencoderReconciler>,
    mask_seed: u64,
}

impl SharedReconciler {
    /// Key length `N` the model reconciles per segment.
    pub fn key_len(&self) -> usize {
        self.model.key_len()
    }

    /// Syndrome dimension `M`.
    pub fn code_dim(&self) -> usize {
        self.model.code_dim()
    }

    /// Decoder hidden width `U`.
    pub fn hidden_units(&self) -> usize {
        self.model.hidden_units()
    }

    /// The underlying shared model.
    pub fn model(&self) -> &std::sync::Arc<AutoencoderReconciler> {
        &self.model
    }

    /// Replace the per-session mask seed (the shared weights are untouched).
    #[must_use]
    pub fn with_mask_seed(mut self, seed: u64) -> Self {
        self.mask_seed = seed;
        self
    }

    /// The session mask in use.
    pub fn mask(&self) -> PositionPreservingMask {
        PositionPreservingMask::new(self.mask_seed, self.model.key_len())
    }

    /// **Bob's step** under this session's mask (see
    /// [`AutoencoderReconciler::bob_syndrome`]).
    ///
    /// # Panics
    ///
    /// Panics if the key length differs from the model's.
    pub fn bob_syndrome(&self, k_bob: &BitString) -> Vec<f32> {
        self.model.bob_syndrome_seeded(self.mask_seed, k_bob)
    }

    /// **Alice's step** under this session's mask (see
    /// [`AutoencoderReconciler::alice_correct`]).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn alice_correct(&self, y_bob: &[f32], k_alice: &BitString) -> BitString {
        self.model
            .alice_correct_seeded(self.mask_seed, y_bob, k_alice)
    }
}

impl From<AutoencoderReconciler> for SharedReconciler {
    /// Wrap an owned model, inheriting its baked-in mask seed. This is the
    /// compatibility path for call sites that still clone the model per
    /// session; scale paths should share one `Arc` instead.
    fn from(model: AutoencoderReconciler) -> Self {
        let mask_seed = model.mask_seed();
        SharedReconciler {
            model: std::sync::Arc::new(model),
            mask_seed,
        }
    }
}

impl From<std::sync::Arc<AutoencoderReconciler>> for SharedReconciler {
    fn from(model: std::sync::Arc<AutoencoderReconciler>) -> Self {
        let mask_seed = model.mask_seed();
        SharedReconciler { model, mask_seed }
    }
}

impl From<&std::sync::Arc<AutoencoderReconciler>> for SharedReconciler {
    fn from(model: &std::sync::Arc<AutoencoderReconciler>) -> Self {
        SharedReconciler::from(std::sync::Arc::clone(model))
    }
}

impl Reconciler for AutoencoderReconciler {
    fn reconcile(&self, k_alice: &BitString, k_bob: &BitString) -> ReconcileResult {
        assert_eq!(k_alice.len(), k_bob.len(), "key length mismatch");
        let mut corrected = BitString::new();
        let mut leaked = 0;
        let mut messages = 0;
        let mut offset = 0;
        while offset < k_alice.len() {
            let seg = self.key_len.min(k_alice.len() - offset);
            if seg < self.key_len {
                // Trailing partial segment: fall back to transmitting it
                // masked (negligible for properly sized keys).
                let tail = k_bob.slice(offset, seg);
                corrected.extend(&tail);
                leaked += seg;
                messages += 1;
                break;
            }
            let ka = k_alice.slice(offset, seg);
            let kb = k_bob.slice(offset, seg);
            let y = self.bob_syndrome(&kb);
            messages += 1;
            leaked += 16 * y.len(); // 16-bit fixed-point per code value
            corrected.extend(&self.alice_correct(&y, &ka));
            offset += seg;
        }
        if telemetry::enabled() {
            telemetry::counter("reconcile.syndrome_bits", leaked as u64);
            telemetry::counter("reconcile.segments", messages as u64);
        }
        ReconcileResult {
            corrected,
            leaked_bits: leaked,
            messages,
        }
    }

    fn name(&self) -> String {
        format!("AE-{}", self.hidden_units)
    }
}

/// Trainer for [`AutoencoderReconciler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoencoderTrainer {
    /// Key length `N` (paper: 128-bit final keys, 64-bit model output —
    /// we default to 128).
    pub key_len: usize,
    /// Syndrome dimension `M` (paper implementation: 32-unit encoders).
    pub code_dim: usize,
    /// Decoder hidden width `U`.
    pub hidden_units: usize,
    /// Training steps.
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Bit-disagreement-rate range to sample during training.
    pub error_rate: (f64, f64),
    /// Training objective.
    pub loss: TrainLoss,
    /// Positive-class weight for the BCE objective (mismatch bits are rare;
    /// weighting keeps all-zeros from being a local optimum).
    pub pos_weight: f32,
}

impl Default for AutoencoderTrainer {
    /// The paper's implementation section: 64-bit key segments, 32-unit
    /// encoders, 64-unit decoder hidden layers (the AE-64 setting chosen in
    /// Sec. V-D).
    fn default() -> Self {
        AutoencoderTrainer {
            key_len: 64,
            code_dim: 32,
            hidden_units: 128,
            steps: 12000,
            batch: 64,
            lr: 2e-3,
            error_rate: (0.005, 0.10),
            loss: TrainLoss::Bce,
            pos_weight: 5.0,
        }
    }
}

impl AutoencoderTrainer {
    /// Builder-style override of the decoder hidden width (AE-16 … AE-128).
    pub fn with_hidden_units(mut self, u: usize) -> Self {
        self.hidden_units = u;
        self
    }

    /// Builder-style override of the training objective.
    pub fn with_loss(mut self, l: TrainLoss) -> Self {
        self.loss = l;
        self
    }

    /// Builder-style override of the step count.
    pub fn with_steps(mut self, s: usize) -> Self {
        self.steps = s;
        self
    }

    /// Builder-style override of the positive-class BCE weight.
    pub fn with_pos_weight(mut self, w: f32) -> Self {
        self.pos_weight = w;
        self
    }

    /// Convenience: override the positive-class weight, then train.
    pub fn train_with_pos_weight<R: Rng + ?Sized>(
        self,
        w: f32,
        rng: &mut R,
    ) -> AutoencoderReconciler {
        self.with_pos_weight(w).train(rng)
    }

    /// Train a reconciler on synthetic mismatch distributions. Returns the
    /// trained model.
    pub fn train<R: Rng + ?Sized>(&self, rng: &mut R) -> AutoencoderReconciler {
        let n = self.key_len;
        let m = self.code_dim;
        let u = self.hidden_units;
        // The two encoders are weight-tied during training: with independent
        // (or independently-drifting) weights the code difference
        // h = f₁(K′_B) − f₂(K′_A) is dominated by the nuisance term
        // (W₁−W₂)·K′_A instead of the sparse mismatch signal W·ΔK, and
        // training collapses into the all-zeros optimum. Tying is exact: we
        // run two forward/backward clones per step and apply the *summed*
        // gradient to the shared parameters (the bias gradients cancel, so
        // the shared bias also cancels in the deployed subtraction). The
        // deployed model still carries two encoder fields, matching the
        // paper's f₁/f₂ structure on the wire.
        let mut enc = Mlp::new(&[n, m], &[Activation::Identity], rng);
        let mut g = Mlp::new(
            &[m, u, u, u, n],
            &[
                Activation::Relu,
                Activation::Relu,
                Activation::Relu,
                Activation::Sigmoid,
            ],
            rng,
        );
        let mut adam = Adam::new(self.lr);
        let _train_span = telemetry::span("reconcile.train")
            .field("steps", self.steps as u64)
            .field("hidden_units", u as u64)
            .field("code_dim", m as u64)
            .enter();
        let loss_every = (self.steps / 10).max(1);
        // Fixed data-parallel shard plan: a function of the batch size only,
        // never of the thread count. Shard gradients are reduced in shard
        // order below, so training is bit-identical for every `VK_JOBS`
        // value — threads change which worker runs a shard, not what is
        // computed.
        let shard_plan: Vec<(usize, usize)> = (0..self.batch)
            .step_by(SHARD_ROWS)
            .map(|r0| (r0, SHARD_ROWS.min(self.batch - r0)))
            .collect();
        for step in 0..self.steps {
            // Synthetic batch. RNG consumption stays on this thread so the
            // stream is identical for any thread count.
            let mut kb = Matrix::zeros(self.batch, n);
            let mut ka = Matrix::zeros(self.batch, n);
            let mut delta = Matrix::zeros(self.batch, n);
            for r in 0..self.batch {
                let p = self.error_rate.0
                    + rng.random::<f64>() * (self.error_rate.1 - self.error_rate.0);
                for c in 0..n {
                    let b = rng.random::<bool>();
                    let flip = rng.random::<f64>() < p;
                    kb.set(r, c, f32::from(u8::from(b)));
                    ka.set(r, c, f32::from(u8::from(b ^ flip)));
                    delta.set(r, c, f32::from(u8::from(flip)));
                }
            }
            let want_loss =
                telemetry::enabled() && (step % loss_every == 0 || step + 1 == self.steps);
            // Forward/backward per shard on per-worker replicas (weight-tied
            // encoder clones plus a decoder clone), executed on the global
            // worker pool. Results come back in shard order.
            let (enc_ref, g_ref) = (&enc, &g);
            let shard_out = nn::Pool::global().run(shard_plan.clone(), |_, (r0, rows)| {
                let kb_s = kb.row_block(r0, rows);
                let ka_s = ka.row_block(r0, rows);
                let delta_s = delta.row_block(r0, rows);
                let mut enc_b = enc_ref.clone();
                let mut enc_a = enc_ref.clone();
                let mut dec = g_ref.clone();
                let yb = enc_b.forward(&kb_s);
                let ya = enc_a.forward(&ka_s);
                let h = yb.sub(&ya);
                let dx = dec.forward(&h);
                let grad_dx = match self.loss {
                    TrainLoss::Bce => loss::weighted_bce_grad(&dx, &delta_s, self.pos_weight),
                    TrainLoss::Mse => loss::mse_grad(&dx, &delta_s),
                };
                let shard_loss = want_loss.then(|| match self.loss {
                    TrainLoss::Bce => loss::weighted_bce(&dx, &delta_s, self.pos_weight),
                    TrainLoss::Mse => loss::mse(&dx, &delta_s),
                });
                enc_b.zero_grad();
                enc_a.zero_grad();
                dec.zero_grad();
                let grad_h = dec.backward(&grad_dx);
                enc_b.backward(&grad_h);
                enc_a.backward(&grad_h.scale(-1.0));
                // Sum the tied gradients (the deployed encoder is shared).
                let mut enc_grads: Vec<Matrix> = Vec::new();
                enc_b.visit_params(&mut |p| enc_grads.push(std::mem::take(&mut p.grad)));
                let mut i = 0;
                enc_a.visit_params(&mut |p| {
                    enc_grads[i].add_assign(&p.grad);
                    i += 1;
                });
                let mut dec_grads: Vec<Matrix> = Vec::new();
                dec.visit_params(&mut |p| dec_grads.push(std::mem::take(&mut p.grad)));
                (shard_loss, rows, enc_grads, dec_grads)
            });
            // Reduce in shard order. Each shard's gradient is the mean over
            // its own rows; weighting by |shard|/|batch| recovers exactly
            // the full-batch mean-gradient decomposition.
            enc.visit_params(&mut |p| p.zero_grad());
            g.visit_params(&mut |p| p.zero_grad());
            let mut train_loss = 0.0f32;
            for (shard_loss, rows, enc_grads, dec_grads) in &shard_out {
                let scale = *rows as f32 / self.batch as f32;
                if let Some(l) = shard_loss {
                    train_loss += l * scale;
                }
                let mut i = 0;
                enc.visit_params(&mut |p| {
                    p.grad.zip_assign(&enc_grads[i], |a, gr| a + gr * scale);
                    i += 1;
                });
                let mut i = 0;
                g.visit_params(&mut |p| {
                    p.grad.zip_assign(&dec_grads[i], |a, gr| a + gr * scale);
                    i += 1;
                });
            }
            if want_loss {
                telemetry::mark("reconcile.train.step")
                    .field("step", step as u64)
                    .field("loss", f64::from(train_loss))
                    .emit();
            }
            enc.visit_params(&mut |p| adam.update(p));
            g.visit_params(&mut |p| adam.update(p));
            adam.step();
        }
        AutoencoderReconciler {
            key_len: n,
            code_dim: m,
            hidden_units: u,
            f1: enc.clone(),
            f2: enc,
            g,
            mask_seed: 0xB10F,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_trainer() -> AutoencoderTrainer {
        AutoencoderTrainer::default().with_steps(3000)
    }

    /// One well-trained model shared across the accuracy tests (training is
    /// the expensive part; the assertions are all read-only).
    fn shared_model() -> &'static AutoencoderReconciler {
        static MODEL: std::sync::OnceLock<AutoencoderReconciler> = std::sync::OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(150);
            AutoencoderTrainer::default()
                .with_steps(9000)
                .train(&mut rng)
        })
    }

    fn random_key(rng: &mut StdRng, n: usize) -> BitString {
        (0..n).map(|_| rng.random::<bool>()).collect()
    }

    fn flip_random(k: &BitString, count: usize, rng: &mut StdRng) -> BitString {
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..k.len()).collect();
        idx.shuffle(rng);
        let mut out = k.clone();
        for &p in idx.iter().take(count) {
            out.set(p, !out.get(p));
        }
        out
    }

    #[test]
    fn trained_model_corrects_sparse_errors() {
        let mut rng = StdRng::seed_from_u64(151);
        let model = shared_model();
        let mut perfect = 0;
        let trials = 30;
        for _ in 0..trials {
            let kb = random_key(&mut rng, 64);
            let ka = flip_random(&kb, 2, &mut rng);
            let r = model.reconcile(&ka, &kb);
            if r.corrected == kb {
                perfect += 1;
            }
        }
        assert!(
            perfect >= trials * 7 / 10,
            "only {perfect}/{trials} keys fully corrected"
        );
    }

    #[test]
    fn agreement_improves_dramatically() {
        let mut rng = StdRng::seed_from_u64(152);
        let model = shared_model();
        let mut before = 0.0;
        let mut after = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let kb = random_key(&mut rng, 64);
            let ka = flip_random(&kb, 3, &mut rng);
            before += ka.agreement(&kb);
            after += model.reconcile(&ka, &kb).corrected.agreement(&kb);
        }
        before /= trials as f64;
        after /= trials as f64;
        assert!(after > 0.97, "post-reconciliation agreement {after}");
        assert!(after > before);
    }

    #[test]
    fn single_message_protocol() {
        let mut rng = StdRng::seed_from_u64(153);
        let model = small_trainer().with_steps(200).train(&mut rng);
        let kb = random_key(&mut rng, 64);
        let r = model.reconcile(&kb, &kb);
        assert_eq!(r.messages, 1, "AE reconciliation is one-shot");
        assert_eq!(r.leaked_bits, 16 * model.code_dim());
    }

    #[test]
    fn syndrome_has_code_dimension() {
        let mut rng = StdRng::seed_from_u64(154);
        let model = small_trainer().with_steps(100).train(&mut rng);
        let kb = random_key(&mut rng, 64);
        assert_eq!(model.bob_syndrome(&kb).len(), model.code_dim());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(155);
        let model = small_trainer().with_steps(100).train(&mut rng);
        let bytes = model.to_bytes();
        let restored = AutoencoderReconciler::from_bytes(&bytes).unwrap();
        let kb = random_key(&mut rng, 64);
        assert_eq!(model.bob_syndrome(&kb), restored.bob_syndrome(&kb));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(AutoencoderReconciler::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn mask_seed_changes_syndrome() {
        let mut rng = StdRng::seed_from_u64(156);
        let model = small_trainer().with_steps(100).train(&mut rng);
        let kb = random_key(&mut rng, 64);
        let y1 = model.clone().with_mask_seed(1).bob_syndrome(&kb);
        let y2 = model.clone().with_mask_seed(2).bob_syndrome(&kb);
        assert_ne!(y1, y2);
    }
}
