//! Small dense linear algebra for the compressed-sensing decoder.

/// Solve the least-squares problem `min ‖A·x − b‖²` for a tall or square
/// `A` (`m×n`, `m ≥ n`) via the normal equations with Gaussian elimination
/// and partial pivoting. Returns `None` when the normal matrix is singular.
pub fn least_squares(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let m = a.len();
    if m == 0 {
        return Some(Vec::new());
    }
    let n = a[0].len();
    if n == 0 {
        return Some(Vec::new());
    }
    assert_eq!(b.len(), m, "rhs length mismatch");
    // Normal equations: (AᵀA) x = Aᵀ b.
    let mut ata = vec![vec![0.0; n]; n];
    let mut atb = vec![0.0; n];
    for i in 0..n {
        for j in i..n {
            let mut s = 0.0;
            for row in 0..m {
                s += a[row][i] * a[row][j];
            }
            ata[i][j] = s;
            ata[j][i] = s;
        }
        for (row, &bv) in b.iter().enumerate() {
            atb[i] += a[row][i] * bv;
        }
    }
    solve(&mut ata, &mut atb)
}

/// Solve `M·x = rhs` in place with partial pivoting. Returns `None` if `M`
/// is (numerically) singular.
pub fn solve(m: &mut [Vec<f64>], rhs: &mut [f64]) -> Option<Vec<f64>> {
    let n = m.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row][k] -= factor * m[col][k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for col in row + 1..n {
            s -= m[row][col] * x[col];
        }
        x[row] = s / m[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut m = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut rhs = vec![3.0, 4.0];
        assert_eq!(solve(&mut m, &mut rhs).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let mut m = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut rhs = vec![5.0, 10.0];
        let x = solve(&mut m, &mut rhs).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let mut m = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut rhs = vec![1.0, 2.0];
        assert!(solve(&mut m, &mut rhs).is_none());
    }

    #[test]
    fn least_squares_exact_fit() {
        // Overdetermined but consistent: y = 2a + b.
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let b = vec![2.0, 1.0, 3.0];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: best fit of constant to [1, 2, 3] is 2.
        let a = vec![vec![1.0], vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0, 3.0];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_empty() {
        assert_eq!(least_squares(&[], &[]).unwrap(), Vec::<f64>::new());
    }
}
