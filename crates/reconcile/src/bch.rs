//! BCH syndrome reconciliation (error-correction-code method — the family
//! the paper cites as reference \[22\]).
//!
//! The classic code-offset / Slepian–Wolf construction: for each 63-bit key
//! segment Bob transmits the BCH **syndromes** of his word (no parity bits
//! touch the key itself). Alice computes her own syndromes, subtracts, and
//! the difference is exactly the syndrome of the error pattern
//! `e = K_A ⊕ K_B`. She decodes `e` with Berlekamp–Massey over GF(2⁶) plus
//! a Chien search and flips the located bits — correcting up to `t` errors
//! per segment with a fixed, one-message exchange (leaking `6·t` bits).
//!
//! The implementation is a complete narrow-sense binary BCH(63, ·, t)
//! decoder over GF(2⁶) (primitive polynomial `x⁶ + x + 1`), supporting
//! `t ∈ 1..=5`.

use crate::{ReconcileResult, Reconciler};
use quantize::BitString;
use serde::{Deserialize, Serialize};

/// GF(2⁶) arithmetic with precomputed exp/log tables.
#[derive(Debug, Clone)]
struct Gf64 {
    exp: [u8; 128],
    log: [u8; 64],
}

impl Gf64 {
    const ORDER: usize = 63; // multiplicative group order

    fn new() -> Self {
        // Primitive polynomial x^6 + x + 1 (0b1000011).
        let mut exp = [0u8; 128];
        let mut log = [0u8; 64];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(Self::ORDER) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x40 != 0 {
                x ^= 0x43; // reduce by x^6 + x + 1
            }
        }
        // Extend exp for convenient index wrap-around.
        for i in Self::ORDER..128 {
            exp[i] = exp[i - Self::ORDER];
        }
        Gf64 { exp, log }
    }

    fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(usize::from(self.log[a as usize]) + usize::from(self.log[b as usize]))
                % Self::ORDER]
        }
    }

    fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "inverse of zero");
        self.exp[(Self::ORDER - usize::from(self.log[a as usize])) % Self::ORDER]
    }

    /// α^k for any integer k ≥ 0.
    fn alpha_pow(&self, k: usize) -> u8 {
        self.exp[k % Self::ORDER]
    }
}

/// BCH(63, ·, t) syndrome reconciler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BchReconciler {
    /// Correctable errors per 63-bit segment (1..=5).
    pub t: usize,
}

impl BchReconciler {
    /// Code length (bits per segment).
    pub const N: usize = 63;

    /// Reconciler correcting up to `t` errors per segment.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= t <= 5`.
    pub fn new(t: usize) -> Self {
        assert!((1..=5).contains(&t), "t must be 1..=5");
        BchReconciler { t }
    }

    /// Syndromes `S₁..S₂ₜ` of a 63-bit word: `S_j = Σ_{i: bit i set} α^{i·j}`.
    pub fn syndromes(&self, word: &BitString) -> Vec<u8> {
        assert_eq!(word.len(), Self::N, "BCH word must be 63 bits");
        let gf = Gf64::new();
        (1..=2 * self.t)
            .map(|j| {
                let mut s = 0u8;
                for i in 0..Self::N {
                    if word.get(i) {
                        s ^= gf.alpha_pow(i * j);
                    }
                }
                s
            })
            .collect()
    }

    /// Decode an error pattern from difference syndromes. Returns the error
    /// positions, or `None` when more than `t` errors occurred (decoder
    /// failure — detectable, not silent).
    pub fn decode_errors(&self, syndromes: &[u8]) -> Option<Vec<usize>> {
        assert_eq!(syndromes.len(), 2 * self.t, "need 2t syndromes");
        if syndromes.iter().all(|&s| s == 0) {
            return Some(Vec::new());
        }
        let gf = Gf64::new();
        // Berlekamp–Massey over GF(64): find the error-locator polynomial
        // σ(x) with σ(0) = 1.
        let mut sigma = vec![1u8]; // current locator
        let mut b = vec![1u8]; // previous locator
        let mut l = 0usize; // current number of assumed errors
        let mut m = 1usize; // steps since last update
        let mut b_disc = 1u8; // discrepancy at last update
        for n in 0..2 * self.t {
            // Discrepancy d = S_{n+1} + Σ σ_i · S_{n+1-i}.
            let mut d = syndromes[n];
            for i in 1..=l.min(sigma.len() - 1) {
                d ^= gf.mul(sigma[i], syndromes[n - i]);
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t_poly = sigma.clone();
                // σ = σ − (d/b_disc)·x^m·b
                let coef = gf.mul(d, gf.inv(b_disc));
                let mut shifted = vec![0u8; m];
                shifted.extend_from_slice(&b);
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (s, &v) in sigma.iter_mut().zip(&shifted) {
                    *s ^= gf.mul(coef, v);
                }
                l = n + 1 - l;
                b = t_poly;
                b_disc = d;
                m = 1;
            } else {
                let coef = gf.mul(d, gf.inv(b_disc));
                let mut shifted = vec![0u8; m];
                shifted.extend_from_slice(&b);
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (s, &v) in sigma.iter_mut().zip(&shifted) {
                    *s ^= gf.mul(coef, v);
                }
                m += 1;
            }
        }
        if l > self.t {
            return None; // too many errors
        }
        // Chien search: roots of σ(x) at x = α^{-i} mark error positions i.
        let mut positions = Vec::new();
        for i in 0..Self::N {
            // Evaluate σ(α^{-i}).
            let x = gf.alpha_pow(Gf64::ORDER - i % Gf64::ORDER);
            let mut acc = 0u8;
            let mut xp = 1u8;
            for &c in &sigma {
                acc ^= gf.mul(c, xp);
                xp = gf.mul(xp, x);
            }
            if acc == 0 {
                positions.push(i);
            }
        }
        if positions.len() != l {
            return None; // locator degree mismatch: uncorrectable
        }
        Some(positions)
    }

    /// Public-channel cost of one segment's syndromes, in bits.
    pub fn leakage_bits(&self) -> usize {
        6 * 2 * self.t
    }
}

impl Default for BchReconciler {
    /// `t = 4`: 48 leaked bits per 63-bit segment.
    fn default() -> Self {
        BchReconciler::new(4)
    }
}

impl Reconciler for BchReconciler {
    fn reconcile(&self, k_alice: &BitString, k_bob: &BitString) -> ReconcileResult {
        assert_eq!(k_alice.len(), k_bob.len(), "key length mismatch");
        let mut corrected = BitString::new();
        let mut leaked = 0;
        let mut messages = 0;
        let mut offset = 0;
        while offset < k_alice.len() {
            let seg = Self::N.min(k_alice.len() - offset);
            if seg < Self::N {
                // Trailing partial segment: transmitted directly (negligible
                // for properly sized keys; counted as leakage).
                corrected.extend(&k_bob.slice(offset, seg));
                leaked += seg;
                messages += 1;
                break;
            }
            let ka = k_alice.slice(offset, seg);
            let kb = k_bob.slice(offset, seg);
            let s_bob = self.syndromes(&kb);
            messages += 1;
            leaked += self.leakage_bits();
            let s_alice = self.syndromes(&ka);
            let diff: Vec<u8> = s_alice.iter().zip(&s_bob).map(|(a, b)| a ^ b).collect();
            let mut seg_bits = ka;
            if let Some(errors) = self.decode_errors(&diff) {
                for e in errors {
                    seg_bits.set(e, !seg_bits.get(e));
                }
            }
            // On decoder failure the segment is left as-is; the key
            // confirmation step catches it (same contract as the AE path).
            corrected.extend(&seg_bits);
            offset += seg;
        }
        ReconcileResult {
            corrected,
            leaked_bits: leaked,
            messages,
        }
    }

    fn name(&self) -> String {
        format!("BCH(63,t={})", self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_word(seed: u64) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..63).map(|_| rng.random::<bool>()).collect()
    }

    fn flip(w: &BitString, positions: &[usize]) -> BitString {
        let mut out = w.clone();
        for &p in positions {
            out.set(p, !out.get(p));
        }
        out
    }

    #[test]
    fn gf64_field_axioms() {
        let gf = Gf64::new();
        // α^63 = 1 and all powers distinct (primitive element).
        assert_eq!(gf.alpha_pow(63), 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..63 {
            assert!(seen.insert(gf.alpha_pow(i)), "α^{i} repeats");
        }
        // Inverses.
        for a in 1..64u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
        // Distributivity spot-check.
        for (a, b, c) in [(3u8, 17u8, 44u8), (60, 2, 33)] {
            assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
        }
    }

    #[test]
    fn zero_syndromes_for_equal_words() {
        let bch = BchReconciler::new(3);
        let w = random_word(1);
        let sa = bch.syndromes(&w);
        let sb = bch.syndromes(&w);
        let diff: Vec<u8> = sa.iter().zip(&sb).map(|(a, b)| a ^ b).collect();
        assert_eq!(bch.decode_errors(&diff), Some(Vec::new()));
    }

    #[test]
    fn corrects_up_to_t_errors_exactly() {
        for t in 1..=5 {
            let bch = BchReconciler::new(t);
            for trial in 0..10u64 {
                let kb = random_word(100 + trial);
                let positions: Vec<usize> =
                    (0..t).map(|i| (7 * i + trial as usize * 3) % 63).collect();
                let mut dedup = positions.clone();
                dedup.sort_unstable();
                dedup.dedup();
                let ka = flip(&kb, &dedup);
                let r = bch.reconcile(&ka, &kb);
                assert_eq!(
                    r.corrected,
                    kb,
                    "t = {t}, trial {trial}: {} errors not corrected",
                    dedup.len()
                );
            }
        }
    }

    #[test]
    fn detects_more_than_t_errors() {
        // t+2 and beyond must either fail detectably (None) or at minimum
        // never report success with a wrong count; the reconciler must not
        // panic.
        let bch = BchReconciler::new(2);
        let kb = random_word(300);
        let ka = flip(&kb, &[1, 9, 20, 33, 47]);
        let r = bch.reconcile(&ka, &kb);
        // 5 > t: correction may fail, but the result is well-formed.
        assert_eq!(r.corrected.len(), 63);
    }

    #[test]
    fn syndrome_leakage_accounting() {
        let bch = BchReconciler::new(4);
        assert_eq!(bch.leakage_bits(), 48);
        let kb = random_word(400);
        let r = bch.reconcile(&kb, &kb);
        assert_eq!(r.leaked_bits, 48);
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn multi_segment_keys() {
        let mut rng = StdRng::seed_from_u64(500);
        let kb: BitString = (0..126).map(|_| rng.random::<bool>()).collect();
        let mut ka = kb.clone();
        for p in [5usize, 70, 100] {
            ka.set(p, !ka.get(p));
        }
        let bch = BchReconciler::new(4);
        let r = bch.reconcile(&ka, &kb);
        assert_eq!(r.corrected, kb);
        assert_eq!(r.messages, 2);
    }

    #[test]
    #[should_panic(expected = "t must be")]
    fn rejects_unsupported_t() {
        BchReconciler::new(6);
    }
}
