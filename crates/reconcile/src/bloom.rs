//! Position-preserving key masking (the paper's "adapted Bloom filter").
//!
//! Sec. IV-C: before entering the autoencoder, the keys of Alice and Bob
//! "are first passed through an adapted Bloom filter to protect the keys
//! against reverse engineering … This specially designed Bloom filter can
//! retain position information, which means that its output can retain the
//! same number of mismatched bits as the input key."
//!
//! We realize those stated properties with a keyed bijection on bit strings:
//! a pseudorandom bit **permutation** composed with a pseudorandom **XOR
//! pad**, both derived from a public per-session seed. For any two keys,
//! `mask(a) ⊕ mask(b) = π(a ⊕ b)`: the number of mismatched bits is exactly
//! preserved (their positions are permuted), while the masked key itself is
//! unrecognizable without the seed-independent original. An eavesdropper who
//! learns syndrome information about `K′` learns nothing directly usable
//! about `K` without replaying the whole pipeline — and the subsequent
//! privacy-amplification hash destroys the remainder.

use quantize::BitString;
use serde::{Deserialize, Serialize};

/// A keyed, Hamming-distance-preserving bijection on bit strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionPreservingMask {
    seed: u64,
    len: usize,
}

impl PositionPreservingMask {
    /// Create a mask for keys of `len` bits from a public session seed.
    pub fn new(seed: u64, len: usize) -> Self {
        PositionPreservingMask { seed, len }
    }

    /// Key length this mask operates on.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask operates on empty strings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn permutation(&self) -> Vec<usize> {
        // Fisher–Yates driven by splitmix64 on the seed.
        let mut state = self.seed ^ 0xA076_1D64_78BD_642F;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut perm: Vec<usize> = (0..self.len).collect();
        for i in (1..self.len).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    fn pad(&self) -> BitString {
        let mut state = self.seed ^ 0x2545_F491_4F6C_DD1D;
        let mut bits = BitString::zeros(self.len);
        let mut word = 0u64;
        for i in 0..self.len {
            if i % 64 == 0 {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                word = z ^ (z >> 31);
            }
            bits.set(i, (word >> (i % 64)) & 1 == 1);
        }
        bits
    }

    /// Apply the mask: `K′ = π(K ⊕ pad)`.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != self.len()`.
    pub fn apply(&self, key: &BitString) -> BitString {
        assert_eq!(key.len(), self.len, "mask length mismatch");
        let padded = key.xor(&self.pad());
        let perm = self.permutation();
        let mut out = BitString::zeros(self.len);
        for (src, &dst) in perm.iter().enumerate() {
            out.set(dst, padded.get(src));
        }
        out
    }

    /// Invert the mask: `K = π⁻¹(K′) ⊕ pad`.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != self.len()`.
    pub fn invert(&self, masked: &BitString) -> BitString {
        assert_eq!(masked.len(), self.len, "mask length mismatch");
        let perm = self.permutation();
        let mut unpermuted = BitString::zeros(self.len);
        for (src, &dst) in perm.iter().enumerate() {
            unpermuted.set(src, masked.get(dst));
        }
        unpermuted.xor(&self.pad())
    }

    /// Map a mismatch vector on the masked domain back to the original
    /// domain (`Δx` positions are permuted, the pad cancels in XOR).
    pub fn invert_mismatch(&self, masked_delta: &BitString) -> BitString {
        assert_eq!(masked_delta.len(), self.len, "mask length mismatch");
        let perm = self.permutation();
        let mut out = BitString::zeros(self.len);
        for (src, &dst) in perm.iter().enumerate() {
            out.set(src, masked_delta.get(dst));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_key(rng: &mut StdRng, n: usize) -> BitString {
        (0..n).map(|_| rng.random::<bool>()).collect()
    }

    #[test]
    fn apply_invert_round_trip() {
        let mut rng = StdRng::seed_from_u64(121);
        let mask = PositionPreservingMask::new(7, 128);
        for _ in 0..10 {
            let k = random_key(&mut rng, 128);
            assert_eq!(mask.invert(&mask.apply(&k)), k);
        }
    }

    #[test]
    fn hamming_distance_preserved() {
        let mut rng = StdRng::seed_from_u64(122);
        let mask = PositionPreservingMask::new(99, 128);
        for _ in 0..20 {
            let a = random_key(&mut rng, 128);
            let b = random_key(&mut rng, 128);
            assert_eq!(
                mask.apply(&a).hamming(&mask.apply(&b)),
                a.hamming(&b),
                "mask must preserve the mismatch count"
            );
        }
    }

    #[test]
    fn output_unrecognizable() {
        let mut rng = StdRng::seed_from_u64(123);
        let mask = PositionPreservingMask::new(5, 256);
        let k = random_key(&mut rng, 256);
        let masked = mask.apply(&k);
        // Roughly half the bits should differ from the input.
        let d = masked.hamming(&k);
        assert!((90..=166).contains(&d), "distance {d}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut rng = StdRng::seed_from_u64(124);
        let k = random_key(&mut rng, 128);
        let m1 = PositionPreservingMask::new(1, 128).apply(&k);
        let m2 = PositionPreservingMask::new(2, 128).apply(&k);
        assert_ne!(m1, m2);
    }

    #[test]
    fn invert_mismatch_maps_delta_home() {
        let mut rng = StdRng::seed_from_u64(125);
        let mask = PositionPreservingMask::new(55, 128);
        let a = random_key(&mut rng, 128);
        let mut b = a.clone();
        for i in [3, 40, 77] {
            b.set(i, !b.get(i));
        }
        let delta_masked = mask.apply(&a).xor(&mask.apply(&b));
        let delta = mask.invert_mismatch(&delta_masked);
        assert_eq!(delta, a.xor(&b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        PositionPreservingMask::new(1, 128).apply(&BitString::zeros(64));
    }
}
