//! CSV interchange for measurement campaigns.
//!
//! Lets real-world LoRa traces flow into the pipeline (and simulated
//! campaigns flow out for analysis elsewhere). The format is a flat CSV,
//! one register-RSSI reading per row:
//!
//! ```csv
//! # scenario=V2V-Urban sf=12 bw_hz=125000 cr_denom=8
//! round,node,t,rssi_dbm,distance_m,relative_speed_ms
//! 0,bob,0.000,-92,812.3,13.2
//! 0,alice,1.538,-95,812.3,13.2
//! 0,eve,1.538,-99,812.3,13.2
//! ```
//!
//! `node` is `alice` (readings of Bob's response), `bob` (readings of
//! Alice's probe) or `eve`; rounds must be contiguous from 0. Distance and
//! relative speed are per-round metadata repeated on each row (use 0 when
//! unknown — nothing in the pipeline requires them).

use crate::campaign::Campaign;
use crate::probe::ProbeRound;
use lora_phy::{Bandwidth, CodeRate, LoRaConfig, RssiReading, SpreadingFactor};
use mobility::ScenarioKind;
use std::io::{BufRead, Write};

/// Error for CSV import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number, 0 for structural problems.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn scenario_name(kind: ScenarioKind) -> &'static str {
    match kind {
        ScenarioKind::V2iUrban => "V2I-Urban",
        ScenarioKind::V2iRural => "V2I-Rural",
        ScenarioKind::V2vUrban => "V2V-Urban",
        ScenarioKind::V2vRural => "V2V-Rural",
    }
}

fn scenario_from(name: &str) -> Option<ScenarioKind> {
    match name {
        "V2I-Urban" => Some(ScenarioKind::V2iUrban),
        "V2I-Rural" => Some(ScenarioKind::V2iRural),
        "V2V-Urban" => Some(ScenarioKind::V2vUrban),
        "V2V-Rural" => Some(ScenarioKind::V2vRural),
        _ => None,
    }
}

/// Write a campaign as CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv<W: Write>(campaign: &Campaign, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# scenario={} sf={} bw_hz={} cr_denom={}",
        scenario_name(campaign.scenario),
        campaign.lora.sf.value(),
        campaign.lora.bw.hz() as u32,
        campaign.lora.cr.denominator(),
    )?;
    writeln!(w, "round,node,t,rssi_dbm,distance_m,relative_speed_ms")?;
    for (idx, round) in campaign.rounds.iter().enumerate() {
        let mut dump = |node: &str, readings: &[RssiReading]| -> std::io::Result<()> {
            for r in readings {
                writeln!(
                    w,
                    "{idx},{node},{:.4},{:.2},{:.2},{:.3}",
                    r.t, r.rssi_dbm, round.distance_m, round.relative_speed_ms
                )?;
            }
            Ok(())
        };
        dump("bob", &round.bob_rrssi)?;
        dump("alice", &round.alice_rrssi)?;
        if let Some(eve) = &round.eve_rrssi {
            dump("eve", eve)?;
        }
    }
    Ok(())
}

/// Read a campaign from CSV written by [`write_csv`] (or hand-assembled
/// from real traces in the same format).
///
/// # Errors
///
/// Returns a [`CsvError`] naming the offending line.
pub fn read_csv<R: BufRead>(r: R) -> Result<Campaign, CsvError> {
    let mut scenario = ScenarioKind::V2vUrban;
    let mut lora = LoRaConfig::paper_default();
    let mut rounds: Vec<ProbeRound> = Vec::new();
    let mut header_seen = false;
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| CsvError {
            line: lineno,
            message: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            for kv in meta.split_whitespace() {
                let Some((k, v)) = kv.split_once('=') else {
                    continue;
                };
                match k {
                    "scenario" => {
                        scenario = scenario_from(v).ok_or_else(|| CsvError {
                            line: lineno,
                            message: format!("unknown scenario '{v}'"),
                        })?;
                    }
                    "sf" => {
                        let sf = v.parse().map_err(|_| CsvError {
                            line: lineno,
                            message: format!("bad sf '{v}'"),
                        })?;
                        lora.sf = SpreadingFactor::from_value(sf).map_err(|e| CsvError {
                            line: lineno,
                            message: e.to_string(),
                        })?;
                    }
                    "bw_hz" => {
                        let hz = v.parse().map_err(|_| CsvError {
                            line: lineno,
                            message: format!("bad bw_hz '{v}'"),
                        })?;
                        lora.bw = Bandwidth::from_hz(hz).map_err(|e| CsvError {
                            line: lineno,
                            message: e.to_string(),
                        })?;
                    }
                    "cr_denom" => {
                        let d = v.parse().map_err(|_| CsvError {
                            line: lineno,
                            message: format!("bad cr_denom '{v}'"),
                        })?;
                        lora.cr = CodeRate::from_denominator(d).map_err(|e| CsvError {
                            line: lineno,
                            message: e.to_string(),
                        })?;
                    }
                    _ => {}
                }
            }
            continue;
        }
        if !header_seen {
            if !line.starts_with("round,") {
                return Err(CsvError {
                    line: lineno,
                    message: "expected header row 'round,node,...'".into(),
                });
            }
            header_seen = true;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(CsvError {
                line: lineno,
                message: format!("expected 6 fields, found {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<f64, CsvError> {
            s.parse().map_err(|_| CsvError {
                line: lineno,
                message: format!("bad {what} '{s}'"),
            })
        };
        let round_idx: usize = fields[0].parse().map_err(|_| CsvError {
            line: lineno,
            message: format!("bad round index '{}'", fields[0]),
        })?;
        if round_idx > rounds.len() {
            return Err(CsvError {
                line: lineno,
                message: format!(
                    "round {round_idx} out of order (next expected {})",
                    rounds.len()
                ),
            });
        }
        if round_idx == rounds.len() {
            rounds.push(ProbeRound {
                t_start: parse(fields[2], "t")?,
                bob_rrssi: Vec::new(),
                alice_rrssi: Vec::new(),
                eve_rrssi: None,
                distance_m: parse(fields[4], "distance")?,
                relative_speed_ms: parse(fields[5], "relative speed")?,
            });
        }
        let reading = RssiReading {
            t: parse(fields[2], "t")?,
            rssi_dbm: parse(fields[3], "rssi")?,
        };
        let round = rounds.last_mut().expect("round exists");
        match fields[1] {
            "alice" => round.alice_rrssi.push(reading),
            "bob" => round.bob_rrssi.push(reading),
            "eve" => round.eve_rrssi.get_or_insert_with(Vec::new).push(reading),
            other => {
                return Err(CsvError {
                    line: lineno,
                    message: format!("unknown node '{other}'"),
                })
            }
        }
    }
    if !header_seen {
        return Err(CsvError {
            line: 0,
            message: "missing header row".into(),
        });
    }
    for (i, r) in rounds.iter().enumerate() {
        if r.alice_rrssi.is_empty() || r.bob_rrssi.is_empty() {
            return Err(CsvError {
                line: 0,
                message: format!("round {i} lacks alice or bob readings"),
            });
        }
    }
    Ok(Campaign {
        scenario,
        lora,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Testbed, TestbedConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn campaign(n: usize) -> Campaign {
        let mut rng = StdRng::seed_from_u64(71);
        let cfg = TestbedConfig::default();
        let mut tb = Testbed::generate(
            ScenarioKind::V2iRural,
            n as f64 * cfg.round_interval_s + 30.0,
            50.0,
            cfg,
            &mut rng,
        );
        tb.run(n, &mut rng)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = campaign(3);
        let mut buf = Vec::new();
        write_csv(&c, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.scenario, c.scenario);
        assert_eq!(back.lora.sf, c.lora.sf);
        assert_eq!(back.rounds.len(), c.rounds.len());
        for (a, b) in back.rounds.iter().zip(&c.rounds) {
            assert_eq!(a.alice_rrssi.len(), b.alice_rrssi.len());
            assert_eq!(a.bob_rrssi.len(), b.bob_rrssi.len());
            assert_eq!(
                a.eve_rrssi.as_ref().map(Vec::len),
                b.eve_rrssi.as_ref().map(Vec::len)
            );
            // RSSI values survive at the written precision.
            assert!((a.alice_rrssi[0].rssi_dbm - b.alice_rrssi[0].rssi_dbm).abs() < 0.01);
        }
    }

    #[test]
    fn hand_written_trace_parses() {
        let csv = "\
# scenario=V2V-Rural sf=12 bw_hz=125000 cr_denom=8
round,node,t,rssi_dbm,distance_m,relative_speed_ms
0,bob,0.0,-92,500,10
0,bob,0.1,-93,500,10
0,alice,1.6,-94,500,10
0,alice,1.7,-95,500,10
";
        let c = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(c.scenario, ScenarioKind::V2vRural);
        assert_eq!(c.rounds.len(), 1);
        assert_eq!(c.rounds[0].bob_rrssi.len(), 2);
        assert!(c.rounds[0].eve_rrssi.is_none());
    }

    #[test]
    fn errors_name_the_line() {
        let bad_field = "\
round,node,t,rssi_dbm,distance_m,relative_speed_ms
0,alice,zero,-92,500,10
";
        let err = read_csv(bad_field.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad t"));

        let bad_node = "\
round,node,t,rssi_dbm,distance_m,relative_speed_ms
0,mallory,0.0,-92,500,10
";
        assert!(read_csv(bad_node.as_bytes())
            .unwrap_err()
            .message
            .contains("unknown node"));

        let no_header = "0,alice,0.0,-92,500,10\n";
        assert!(read_csv(no_header.as_bytes()).is_err());
    }

    #[test]
    fn incomplete_round_rejected() {
        let csv = "\
round,node,t,rssi_dbm,distance_m,relative_speed_ms
0,alice,0.0,-92,500,10
";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.message.contains("lacks alice or bob"));
    }

    #[test]
    fn imported_campaign_feeds_the_pipeline_types() {
        // The imported campaign is a first-class Campaign: series helpers
        // work directly.
        let c = campaign(4);
        let mut buf = Vec::new();
        write_csv(&c, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.alice_prssi().len(), 4);
        assert!(back.eve_prssi().is_some());
    }
}
