//! Measurement campaigns: collections of probe rounds plus dataset
//! utilities (series extraction, train/validation/test splits).

use crate::probe::{ProbeRound, Testbed, TestbedConfig};
use lora_phy::LoRaConfig;
use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A full measurement campaign in one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Scenario the data was collected in.
    pub scenario: ScenarioKind,
    /// Radio configuration used.
    pub lora: LoRaConfig,
    /// The probe/response rounds in chronological order.
    pub rounds: Vec<ProbeRound>,
}

impl Campaign {
    /// Alice's packet-RSSI series (one value per round).
    pub fn alice_prssi(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.alice_prssi()).collect()
    }

    /// Bob's packet-RSSI series (one value per round).
    pub fn bob_prssi(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.bob_prssi()).collect()
    }

    /// Eve's packet-RSSI series, if Eve was simulated.
    pub fn eve_prssi(&self) -> Option<Vec<f64>> {
        self.rounds
            .iter()
            .map(|r| {
                r.eve_rrssi
                    .as_ref()
                    .map(|v| lora_phy::Receiver::packet_rssi(v))
            })
            .collect()
    }

    /// Total number of rRSSI samples Alice collected (relevant to the key
    /// generation rate: rRSSI yields far more raw material per packet than
    /// the single pRSSI value).
    pub fn alice_rrssi_count(&self) -> usize {
        self.rounds.iter().map(|r| r.alice_rrssi.len()).sum()
    }

    /// Wall-clock duration spanned by the campaign in seconds.
    pub fn duration_s(&self) -> f64 {
        match (self.rounds.first(), self.rounds.last()) {
            (Some(first), Some(last)) => last.t_start - first.t_start + 2.0 * self.lora.airtime(16),
            _ => 0.0,
        }
    }

    /// Split rounds into train/validation/test sets with the paper's
    /// 70/15/15 proportions, shuffled by `rng`.
    pub fn split<R: Rng + ?Sized>(&self, rng: &mut R) -> Split {
        self.split_with(0.70, 0.15, rng)
    }

    /// Split with explicit train/validation fractions (test gets the rest).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum to more than 1.
    pub fn split_with<R: Rng + ?Sized>(
        &self,
        train_frac: f64,
        val_frac: f64,
        rng: &mut R,
    ) -> Split {
        assert!(train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
        let mut idx: Vec<usize> = (0..self.rounds.len()).collect();
        idx.shuffle(rng);
        let n_train = (self.rounds.len() as f64 * train_frac).round() as usize;
        let n_val = (self.rounds.len() as f64 * val_frac).round() as usize;
        let take = |ids: &[usize]| Campaign {
            scenario: self.scenario,
            lora: self.lora,
            rounds: ids.iter().map(|&i| self.rounds[i].clone()).collect(),
        };
        Split {
            train: take(&idx[..n_train.min(idx.len())]),
            validation: take(&idx[n_train.min(idx.len())..(n_train + n_val).min(idx.len())]),
            test: take(&idx[(n_train + n_val).min(idx.len())..]),
        }
    }
}

/// Generate several independent campaigns in parallel (one scenario and
/// channel realization each), using one thread per campaign. Deterministic
/// given `rng`: each campaign gets a seed drawn up front.
///
/// This is the bulk data-generation path for model training — the paper's
/// dataset spans 20+ hours of drives, which a single thread simulates
/// slowly.
pub fn generate_parallel<R: Rng + ?Sized>(
    kind: ScenarioKind,
    count: usize,
    rounds_each: usize,
    speed_kmh: f64,
    config: TestbedConfig,
    rng: &mut R,
) -> Vec<Campaign> {
    let seeds: Vec<u64> = (0..count).map(|_| rng.random()).collect();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .into_iter()
            .map(|seed| {
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let duration = rounds_each as f64 * config.round_interval_s + 60.0;
                    let mut tb = Testbed::generate(kind, duration, speed_kmh, config, &mut rng);
                    tb.run(rounds_each, &mut rng)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign thread panicked"))
            .collect()
    })
    .expect("campaign scope panicked")
}

/// A train/validation/test partition of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Split {
    /// Training rounds (70% by default).
    pub train: Campaign,
    /// Validation rounds (15% by default).
    pub validation: Campaign,
    /// Held-out test rounds (15% by default).
    pub test: Campaign,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Testbed, TestbedConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn campaign(n: usize) -> Campaign {
        let mut rng = StdRng::seed_from_u64(61);
        let cfg = TestbedConfig::default();
        let mut tb = Testbed::generate(
            ScenarioKind::V2iUrban,
            n as f64 * 4.0 + 30.0,
            50.0,
            cfg,
            &mut rng,
        );
        tb.run(n, &mut rng)
    }

    #[test]
    fn series_lengths_match_rounds() {
        let c = campaign(12);
        assert_eq!(c.alice_prssi().len(), 12);
        assert_eq!(c.bob_prssi().len(), 12);
        assert_eq!(c.eve_prssi().unwrap().len(), 12);
    }

    #[test]
    fn rrssi_count_exceeds_round_count() {
        let c = campaign(5);
        assert!(c.alice_rrssi_count() > 5 * 100);
    }

    #[test]
    fn split_is_a_partition() {
        let c = campaign(40);
        let mut rng = StdRng::seed_from_u64(62);
        let s = c.split(&mut rng);
        let total = s.train.rounds.len() + s.validation.rounds.len() + s.test.rounds.len();
        assert_eq!(total, 40);
        assert_eq!(s.train.rounds.len(), 28); // 70% of 40
        assert_eq!(s.validation.rounds.len(), 6); // 15% of 40
    }

    #[test]
    fn split_contains_no_duplicates() {
        let c = campaign(20);
        let mut rng = StdRng::seed_from_u64(63);
        let s = c.split(&mut rng);
        let mut starts: Vec<u64> = s
            .train
            .rounds
            .iter()
            .chain(&s.validation.rounds)
            .chain(&s.test.rounds)
            .map(|r| r.t_start.to_bits())
            .collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 20);
    }

    #[test]
    #[should_panic]
    fn split_rejects_bad_fractions() {
        let c = campaign(4);
        let mut rng = StdRng::seed_from_u64(64);
        c.split_with(0.9, 0.3, &mut rng);
    }

    #[test]
    fn parallel_generation_is_deterministic() {
        let cfg = TestbedConfig::default();
        let mut rng1 = StdRng::seed_from_u64(99);
        let a = generate_parallel(ScenarioKind::V2vUrban, 3, 4, 50.0, cfg, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(99);
        let b = generate_parallel(ScenarioKind::V2vUrban, 3, 4, 50.0, cfg, &mut rng2);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rounds.len(), y.rounds.len());
            assert_eq!(
                x.rounds[0].alice_rrssi[0].rssi_dbm,
                y.rounds[0].alice_rrssi[0].rssi_dbm
            );
        }
        // Campaigns are independent realizations.
        assert_ne!(
            a[0].rounds[0].alice_rrssi[0].rssi_dbm,
            a[1].rounds[0].alice_rrssi[0].rssi_dbm
        );
    }

    #[test]
    fn duration_positive() {
        let c = campaign(3);
        assert!(c.duration_s() > 0.0);
    }
}
