//! Probe/response exchange simulation.
//!
//! One **round** replays exactly what the paper's nodes do:
//!
//! 1. at `t₀` Alice transmits a probe packet; it is on the air for the
//!    config's airtime `T_t`; **Bob** polls his RSSI register throughout and
//!    collects his rRSSI sequence;
//! 2. after his operation delay `T_d`, **Bob** transmits the response;
//!    **Alice** collects her rRSSI sequence during `[t₀+T_t+T_d, t₀+2T_t+T_d]`;
//! 3. **Eve**, a few metres from Alice, overhears Bob's response and collects
//!    her own rRSSI sequence through her (spatially decorrelated) channel.
//!
//! The tail of Bob's sequence and the head of Alice's sequence are only
//! `T_d` (milliseconds) apart — *within* coherence time — while their packet
//! means are `≈T_t` (seconds) apart. This is the physical fact behind the
//! paper's pRSSI→arRSSI move (Figs. 3, 4, 9).

use channel::{ChannelModel, Direction, Environment, EveChannel, LinkBudget};
use lora_phy::{DeviceKind, HardwareProfile, LoRaConfig, Receiver, RssiReading};
use mobility::{Scenario, ScenarioKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Eavesdropper placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EveConfig {
    /// Eve's distance from Alice in metres (paper: "several meters").
    pub separation_m: f64,
    /// Gap at which the imitating Eve tails Alice, in metres.
    pub tail_gap_m: f64,
}

impl Default for EveConfig {
    fn default() -> Self {
        EveConfig {
            separation_m: 5.0,
            tail_gap_m: 10.0,
        }
    }
}

/// Testbed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Radio configuration (defaults to the paper's SF12/125 kHz/4-8).
    pub lora: LoRaConfig,
    /// Alice's transceiver.
    pub alice_device: DeviceKind,
    /// Bob's transceiver.
    pub bob_device: DeviceKind,
    /// Eve's transceiver.
    pub eve_device: DeviceKind,
    /// Probe payload length in bytes (paper analysis uses 16).
    pub payload_len: usize,
    /// Gap between the start of consecutive rounds in seconds.
    pub round_interval_s: f64,
    /// Eavesdropper placement; `None` disables Eve simulation.
    pub eve: Option<EveConfig>,
    /// Link-budget parameters.
    pub budget: LinkBudget,
    /// Probability that a probe round fails outright (CRC failure, missed
    /// preamble) and yields no data. Lost rounds still consume airtime —
    /// both parties notice the failure and move on, as real protocols do.
    pub packet_loss_prob: f64,
    /// Effective-Doppler factor κ applied to the Clarke maximum Doppler
    /// `f_d = |ΔV|·f₀/c`. Clarke's model assumes isotropic scattering — the
    /// worst case. Measured V2X channels at 434 MHz show coherence times
    /// 5–10× longer (dominant LOS/street-canyon paths with small angular
    /// spread), which is what makes the paper's boundary-arRSSI features
    /// usable at vehicular speeds. Default κ = 0.05.
    pub effective_doppler_factor: f64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            lora: LoRaConfig::paper_default(),
            // A realistic V2X pairing mixes hardware: the vehicle carries a
            // compact module while the peer (RSU or another vehicle) runs a
            // different front end. Table I's same-device runs override this
            // with `with_devices`.
            alice_device: DeviceKind::MultiTechXDot,
            bob_device: DeviceKind::DraginoShield,
            eve_device: DeviceKind::MultiTechXDot,
            payload_len: 16,
            round_interval_s: 3.5,
            eve: Some(EveConfig::default()),
            budget: LinkBudget::default(),
            packet_loss_prob: 0.0,
            effective_doppler_factor: 0.05,
        }
    }
}

impl TestbedConfig {
    /// Builder-style override of the radio configuration.
    pub fn with_lora(mut self, lora: LoRaConfig) -> Self {
        self.lora = lora;
        self
    }

    /// Builder-style override of all three devices at once (the paper's
    /// Table I uses identical devices per run).
    pub fn with_devices(mut self, device: DeviceKind) -> Self {
        self.alice_device = device;
        self.bob_device = device;
        self.eve_device = device;
        self
    }
}

/// The RSSI record of one probe/response round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRound {
    /// Round start time in seconds.
    pub t_start: f64,
    /// Bob's rRSSI readings while receiving Alice's probe.
    pub bob_rrssi: Vec<RssiReading>,
    /// Alice's rRSSI readings while receiving Bob's response.
    pub alice_rrssi: Vec<RssiReading>,
    /// Eve's rRSSI readings of Bob's response (if Eve is simulated).
    pub eve_rrssi: Option<Vec<RssiReading>>,
    /// Link distance at the round start in metres.
    pub distance_m: f64,
    /// Relative speed at the round start in m/s.
    pub relative_speed_ms: f64,
}

impl ProbeRound {
    /// Alice's packet RSSI (mean of her register readings).
    pub fn alice_prssi(&self) -> f64 {
        Receiver::packet_rssi(&self.alice_rrssi)
    }

    /// Bob's packet RSSI (mean of his register readings).
    pub fn bob_prssi(&self) -> f64 {
        Receiver::packet_rssi(&self.bob_rrssi)
    }
}

/// The simulated testbed: scenario + channel + radios.
#[derive(Debug, Clone)]
pub struct Testbed {
    scenario: Scenario,
    channel: ChannelModel,
    eve_channel: Option<EveChannel>,
    config: TestbedConfig,
    alice_rx: Receiver,
    bob_rx: Receiver,
    eve_rx: Receiver,
    /// Accumulated Doppler phase ∫f_d dt in cycles (advanced every round so
    /// the fading process honours the instantaneous relative speed).
    doppler_cycles: f64,
    /// Time up to which `doppler_cycles` has been integrated.
    doppler_t: f64,
}

impl Testbed {
    /// Generate a scenario and bind a testbed to it.
    pub fn generate<R: Rng + ?Sized>(
        kind: ScenarioKind,
        duration_s: f64,
        speed_kmh: f64,
        config: TestbedConfig,
        rng: &mut R,
    ) -> Self {
        let scenario = Scenario::generate(kind, duration_s, speed_kmh, rng);
        Testbed::new(scenario, config, rng)
    }

    /// Bind a testbed to an existing scenario.
    pub fn new<R: Rng + ?Sized>(scenario: Scenario, config: TestbedConfig, rng: &mut R) -> Self {
        let env = if scenario.kind.is_urban() {
            Environment::Urban
        } else {
            Environment::Rural
        };
        let channel = ChannelModel::new(env, config.budget, rng);
        let eve_channel = config
            .eve
            .map(|e| channel.eavesdropper(e.separation_m, rng));
        Testbed {
            scenario,
            channel,
            eve_channel,
            config,
            alice_rx: Receiver::new(HardwareProfile::of(config.alice_device), config.lora),
            bob_rx: Receiver::new(HardwareProfile::of(config.bob_device), config.lora),
            eve_rx: Receiver::new(HardwareProfile::of(config.eve_device), config.lora),
            doppler_cycles: 0.0,
            doppler_t: 0.0,
        }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The testbed configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// Airtime of one probe packet under the current configuration.
    pub fn probe_airtime(&self) -> f64 {
        self.config.lora.airtime(self.config.payload_len)
    }

    /// Advance the Doppler-phase integral up to time `t`.
    fn advance_doppler(&mut self, t: f64) {
        if t <= self.doppler_t {
            return;
        }
        // Integrate f_d over [doppler_t, t] with the scenario's relative
        // speed, in 100 ms steps.
        let carrier = self.config.lora.carrier_hz;
        let mut tau = self.doppler_t;
        while tau < t {
            let step = (t - tau).min(0.1);
            let rel = self
                .scenario
                .alice
                .relative_speed_to(&self.scenario.bob, tau);
            let fd = (channel::doppler_shift_hz(rel, carrier)
                * self.config.effective_doppler_factor)
                .max(0.05);
            self.doppler_cycles += fd * step;
            tau += step;
        }
        self.doppler_t = t;
    }

    /// Doppler-cycle coordinate for an absolute time within the current
    /// round (assumes `advance_doppler(t_round)` was called and `t` is close
    /// to `t_round`).
    fn cycles_at(&self, t_round_start: f64, t: f64, fd: f64) -> f64 {
        self.doppler_cycles + fd * (t - t_round_start)
    }

    /// Run one probe/response round starting at `t0`.
    pub fn round<R: Rng + ?Sized>(&mut self, t0: f64, rng: &mut R) -> ProbeRound {
        self.advance_doppler(t0);
        let g = self.scenario.geometry_at(t0);
        let carrier = self.config.lora.carrier_hz;
        let fd = (channel::doppler_shift_hz(g.relative_speed_ms, carrier)
            * self.config.effective_doppler_factor)
            .max(0.05);
        let airtime = self.probe_airtime();
        let payload = self.config.payload_len;

        // Alice → Bob probe: Bob samples rRSSI over [t0, t0+airtime].
        let bob_times = self.bob_rx.rssi_sample_times(t0, payload);
        let mut bob_rrssi = Vec::with_capacity(bob_times.len());
        for t in bob_times {
            let geo = self.scenario.geometry_at(t);
            let cycles = self.cycles_at(t0, t, fd);
            let ideal = self.channel.gain_dbm_cycles(
                t,
                cycles,
                geo.distance_m,
                geo.route_pos_m,
                Direction::AliceToBob,
            );
            bob_rrssi.push(RssiReading {
                t,
                rssi_dbm: self.bob_rx.measure(ideal, rng),
            });
        }

        // Bob → Alice response after Bob's operation delay.
        let t1 = t0 + airtime + self.bob_rx.profile.op_delay_s;
        let alice_times = self.alice_rx.rssi_sample_times(t1, payload);
        let mut alice_rrssi = Vec::with_capacity(alice_times.len());
        for t in &alice_times {
            let geo = self.scenario.geometry_at(*t);
            let cycles = self.cycles_at(t0, *t, fd);
            let ideal = self.channel.gain_dbm_cycles(
                *t,
                cycles,
                geo.distance_m,
                geo.route_pos_m,
                Direction::BobToAlice,
            );
            alice_rrssi.push(RssiReading {
                t: *t,
                rssi_dbm: self.alice_rx.measure(ideal, rng),
            });
        }

        // Eve overhears Bob's response through her decorrelated tap.
        let eve_rrssi = if let Some(eve_cfg) = self.config.eve {
            let mut eve_ch = self
                .eve_channel
                .take()
                .expect("eve channel exists when eve is configured");
            let mut readings = Vec::with_capacity(alice_times.len());
            for t in &alice_times {
                let geo = self.scenario.geometry_at(*t);
                let cycles = self.cycles_at(t0, *t, fd);
                // Eve is `separation_m` from Alice, so her distance to Bob
                // differs by at most that much.
                let d = (geo.distance_m + eve_cfg.separation_m).max(1.0);
                let ideal =
                    self.channel
                        .eve_gain_dbm_cycles(&mut eve_ch, cycles, d, geo.route_pos_m);
                readings.push(RssiReading {
                    t: *t,
                    rssi_dbm: self.eve_rx.measure(ideal, rng),
                });
            }
            self.eve_channel = Some(eve_ch);
            Some(readings)
        } else {
            None
        };

        // Account for the Doppler phase consumed by the exchange itself.
        self.advance_doppler(t1 + airtime);

        ProbeRound {
            t_start: t0,
            bob_rrssi,
            alice_rrssi,
            eve_rrssi,
            distance_m: g.distance_m,
            relative_speed_ms: g.relative_speed_ms,
        }
    }

    /// Run `n` round slots spaced by the configured round interval,
    /// returning the full campaign. Slots lost to packet errors
    /// (`packet_loss_prob`) consume time but contribute no data.
    pub fn run<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> crate::Campaign {
        use rand::RngExt;
        let _campaign_span = telemetry::span("testbed.campaign")
            .field("rounds_requested", n as u64)
            .field("scenario", format!("{:?}", self.scenario.kind))
            .enter();
        let mut rounds = Vec::with_capacity(n);
        let mut lost = 0u64;
        for k in 0..n {
            let t0 = k as f64 * self.config.round_interval_s;
            if self.config.packet_loss_prob > 0.0
                && rng.random::<f64>() < self.config.packet_loss_prob
            {
                // The exchange still occupied the channel: keep the fading
                // phase integral advancing.
                self.advance_doppler(t0 + 2.0 * self.probe_airtime());
                lost += 1;
                continue;
            }
            rounds.push(self.round(t0, rng));
        }
        if telemetry::enabled() {
            telemetry::counter("testbed.rounds", rounds.len() as u64);
            telemetry::counter("testbed.lost_rounds", lost);
        }
        crate::Campaign {
            scenario: self.scenario.kind,
            lora: self.config.lora,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_campaign(kind: ScenarioKind, n: usize, seed: u64) -> crate::Campaign {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TestbedConfig::default();
        let mut tb = Testbed::generate(
            kind,
            n as f64 * cfg.round_interval_s + 30.0,
            50.0,
            cfg,
            &mut rng,
        );
        tb.run(n, &mut rng)
    }

    #[test]
    fn round_timing_is_physical() {
        let mut rng = StdRng::seed_from_u64(51);
        let cfg = TestbedConfig::default();
        let mut tb = Testbed::generate(ScenarioKind::V2vRural, 120.0, 50.0, cfg, &mut rng);
        let round = tb.round(0.0, &mut rng);
        let airtime = tb.probe_airtime();
        // Bob's samples span [0, airtime); Alice's start after airtime+delay.
        assert!(round.bob_rrssi.first().unwrap().t >= 0.0);
        assert!(round.bob_rrssi.last().unwrap().t < airtime);
        let delay = tb.bob_rx.profile.op_delay_s;
        assert!((round.alice_rrssi.first().unwrap().t - (airtime + delay)).abs() < 1e-9);
    }

    #[test]
    fn boundary_samples_closer_than_packet_means() {
        // Tail of Bob's sequence vs head of Alice's: separated by only the
        // op delay. This drives the arRSSI design.
        let mut rng = StdRng::seed_from_u64(52);
        let cfg = TestbedConfig::default();
        let mut tb = Testbed::generate(ScenarioKind::V2vUrban, 120.0, 50.0, cfg, &mut rng);
        let round = tb.round(0.0, &mut rng);
        let gap = round.alice_rrssi.first().unwrap().t - round.bob_rrssi.last().unwrap().t;
        assert!(gap < 0.02, "boundary gap {gap}");
        let mean_gap =
            crate::stats::mean(&round.alice_rrssi.iter().map(|r| r.t).collect::<Vec<_>>())
                - crate::stats::mean(&round.bob_rrssi.iter().map(|r| r.t).collect::<Vec<_>>());
        assert!(mean_gap > 1.0, "packet-mean gap {mean_gap}");
    }

    #[test]
    fn prssi_correlation_is_imperfect_at_speed() {
        // At 50 km/h and 183 bps the paper finds pRSSI correlation < 0.6.
        let campaign = run_campaign(ScenarioKind::V2vUrban, 150, 53);
        let a: Vec<f64> = campaign.rounds.iter().map(|r| r.alice_prssi()).collect();
        let b: Vec<f64> = campaign.rounds.iter().map(|r| r.bob_prssi()).collect();
        let r = pearson(&a, &b);
        assert!(r < 0.85, "pRSSI correlation unexpectedly high: {r}");
    }

    #[test]
    fn boundary_window_beats_prssi_correlation() {
        // arRSSI (2.5% boundary windows) must correlate better than pRSSI —
        // the paper's central preliminary finding (Fig. 3).
        let campaign = run_campaign(ScenarioKind::V2vUrban, 150, 54);
        let frac = 0.025;
        let mut heads = Vec::new();
        let mut tails = Vec::new();
        for r in &campaign.rounds {
            let nb = r.bob_rrssi.len();
            let na = r.alice_rrssi.len();
            let wb = ((nb as f64 * frac) as usize).max(1);
            let wa = ((na as f64 * frac) as usize).max(1);
            tails.push(crate::stats::mean(
                &r.bob_rrssi[nb - wb..]
                    .iter()
                    .map(|x| x.rssi_dbm)
                    .collect::<Vec<_>>(),
            ));
            heads.push(crate::stats::mean(
                &r.alice_rrssi[..wa]
                    .iter()
                    .map(|x| x.rssi_dbm)
                    .collect::<Vec<_>>(),
            ));
        }
        let a: Vec<f64> = campaign.rounds.iter().map(|r| r.alice_prssi()).collect();
        let b: Vec<f64> = campaign.rounds.iter().map(|r| r.bob_prssi()).collect();
        let r_prssi = pearson(&a, &b);
        let r_ar = pearson(&heads, &tails);
        assert!(
            r_ar > r_prssi,
            "arRSSI corr {r_ar} should beat pRSSI corr {r_prssi}"
        );
        assert!(r_ar > 0.7, "arRSSI corr {r_ar}");
    }

    #[test]
    fn eve_records_when_configured() {
        let campaign = run_campaign(ScenarioKind::V2iUrban, 5, 55);
        assert!(campaign.rounds.iter().all(|r| r.eve_rrssi.is_some()));
        let mut cfg = TestbedConfig::default();
        cfg.eve = None;
        let mut rng = StdRng::seed_from_u64(56);
        let mut tb = Testbed::generate(ScenarioKind::V2iUrban, 60.0, 50.0, cfg, &mut rng);
        let round = tb.round(0.0, &mut rng);
        assert!(round.eve_rrssi.is_none());
    }

    #[test]
    fn eve_small_scale_differs_from_alice() {
        // The within-packet rRSSI residual (reading − packet mean) isolates
        // small-scale fading, the paper's randomness source. Alice's and
        // Eve's residuals must be near-uncorrelated even though their
        // large-scale trends coincide (Fig. 16).
        let campaign = run_campaign(ScenarioKind::V2vUrban, 40, 57);
        let mut alice_res = Vec::new();
        let mut eve_res = Vec::new();
        for r in &campaign.rounds {
            let eve = r.eve_rrssi.as_ref().unwrap();
            let ma = r.alice_prssi();
            let me = Receiver::packet_rssi(eve);
            let n = r.alice_rrssi.len().min(eve.len());
            for i in 0..n {
                alice_res.push(r.alice_rrssi[i].rssi_dbm - ma);
                eve_res.push(eve[i].rssi_dbm - me);
            }
        }
        let r = pearson(&alice_res, &eve_res);
        assert!(r.abs() < 0.3, "Eve small-scale correlation too high: {r}");
    }

    #[test]
    fn packet_loss_drops_rounds_but_not_the_pipeline_contract() {
        let mut rng = StdRng::seed_from_u64(59);
        let mut cfg = TestbedConfig::default();
        cfg.packet_loss_prob = 0.4;
        let mut tb = Testbed::generate(ScenarioKind::V2vUrban, 300.0, 50.0, cfg, &mut rng);
        let campaign = tb.run(60, &mut rng);
        assert!(campaign.rounds.len() < 55, "losses expected");
        assert!(campaign.rounds.len() > 15, "not everything lost");
        // Surviving rounds are complete.
        assert!(campaign
            .rounds
            .iter()
            .all(|r| !r.alice_rrssi.is_empty() && !r.bob_rrssi.is_empty()));
    }

    #[test]
    fn run_produces_requested_rounds() {
        let campaign = run_campaign(ScenarioKind::V2iRural, 7, 58);
        assert_eq!(campaign.rounds.len(), 7);
        assert_eq!(campaign.scenario, ScenarioKind::V2iRural);
        // Rounds are spaced by the configured interval.
        let dt = campaign.rounds[1].t_start - campaign.rounds[0].t_start;
        assert!((dt - TestbedConfig::default().round_interval_s).abs() < 1e-9);
    }
}
