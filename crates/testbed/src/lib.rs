//! Simulated LoRa IoV testbed.
//!
//! Replays the paper's data-collection process (Sec. V-A) in simulation:
//! a [`Testbed`] binds a mobility [`Scenario`](mobility::Scenario), a
//! [`ChannelModel`](channel::ChannelModel) and per-device LoRa
//! [`Receiver`](lora_phy::Receiver)s, then runs probe/response rounds with
//! physically-accurate timing — probe airtime, operation delay, register-RSSI
//! polling cadence — producing the synchronized Alice/Bob/Eve RSSI streams
//! every experiment in the paper consumes.
//!
//! * [`probe`] — a single probe/response exchange ([`ProbeRound`]),
//! * [`campaign`] — a full measurement campaign ([`Campaign`]) plus
//!   train/validation/test splitting,
//! * [`stats`] — Pearson correlation and the other small statistics the
//!   paper reports,
//! * [`io`] — CSV import/export so real LoRa traces can replace the
//!   simulator.
//!
//! # Example
//!
//! ```
//! use testbed::{Testbed, TestbedConfig};
//! use mobility::ScenarioKind;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let cfg = TestbedConfig::default();
//! let mut tb = Testbed::generate(ScenarioKind::V2vUrban, 60.0, 50.0, cfg, &mut rng);
//! let campaign = tb.run(10, &mut rng);
//! assert_eq!(campaign.rounds.len(), 10);
//! ```

pub mod campaign;
pub mod io;
pub mod probe;
pub mod stats;

pub use campaign::{generate_parallel, Campaign, Split};
pub use io::{read_csv, write_csv, CsvError};
pub use probe::{ProbeRound, Testbed, TestbedConfig};
pub use stats::{mean, pearson, std_dev};
