//! Small statistics used throughout the evaluation.

/// Arithmetic mean. Returns NaN for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Population standard deviation. Returns NaN for an empty slice.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns NaN if the series are shorter than 2 or either is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal-length series");
    if a.len() < 2 {
        return f64::NAN;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return f64::NAN;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(std_dev(&[]).is_nan());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn pearson_independent_series_near_zero() {
        // Deterministic pseudo-random pair with no linear relation.
        let a: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 104729) as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| ((i * 104729) % 7919) as f64).collect();
        assert!(pearson(&a, &b).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pearson_shift_invariant() {
        let a = [1.0, 5.0, 2.0, 8.0, 3.0];
        let b = [2.0, 6.0, 1.0, 9.0, 4.0];
        let r1 = pearson(&a, &b);
        let shifted: Vec<f64> = b.iter().map(|x| x + 100.0).collect();
        let r2 = pearson(&a, &shifted);
        assert!((r1 - r2).abs() < 1e-12);
    }
}
