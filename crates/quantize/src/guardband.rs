//! Guard-band two-threshold quantizer (LoRa-Key, the paper's reference \[8\]).
//!
//! Block-wise thresholds `mean ± α·σ`: samples above the upper threshold map
//! to 1, below the lower to 0, and samples inside the guard band are
//! dropped. `α` is the LoRa-Key tuning knob the paper sets to 0.8 in the
//! comparison (Sec. V-F).

use crate::bits::BitString;
use crate::multibit::QuantizeOutcome;
use serde::{Deserialize, Serialize};

/// The LoRa-Key quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardBandQuantizer {
    /// Guard-band ratio `α` (threshold offset in units of the block σ).
    pub alpha: f64,
    /// Samples per adaptive block.
    pub block_size: usize,
}

impl GuardBandQuantizer {
    /// Quantizer with the given `α` and 64-sample blocks.
    pub fn new(alpha: f64) -> Self {
        GuardBandQuantizer {
            alpha,
            block_size: 64,
        }
    }

    /// Builder-style override of the block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Quantize a series; samples in the guard band are dropped and the kept
    /// indices reported.
    pub fn quantize(&self, series: &[f64]) -> QuantizeOutcome {
        self.run(series, None)
    }

    /// Quantize on an agreed kept-index set (bit decided by the block mean).
    pub fn quantize_with_kept(&self, series: &[f64], kept: &[usize]) -> BitString {
        self.run(series, Some(kept)).bits
    }

    fn run(&self, series: &[f64], forced_kept: Option<&[usize]>) -> QuantizeOutcome {
        let mut bits = BitString::new();
        let mut kept = Vec::new();
        let block = self.block_size.max(2);
        for (block_idx, chunk) in series.chunks(block).enumerate() {
            let base = block_idx * block;
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let sigma =
                (chunk.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / chunk.len() as f64).sqrt();
            let upper = mean + self.alpha * sigma;
            let lower = mean - self.alpha * sigma;
            for (j, &x) in chunk.iter().enumerate() {
                let idx = base + j;
                match forced_kept {
                    Some(forced) => {
                        if forced.binary_search(&idx).is_ok() {
                            bits.push(x >= mean);
                            kept.push(idx);
                        }
                    }
                    None => {
                        if x > upper {
                            bits.push(true);
                            kept.push(idx);
                        } else if x < lower {
                            bits.push(false);
                            kept.push(idx);
                        }
                    }
                }
            }
        }
        QuantizeOutcome { bits, kept }
    }
}

impl Default for GuardBandQuantizer {
    /// The paper's comparison setting: `α = 0.8`.
    fn default() -> Self {
        GuardBandQuantizer::new(0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multibit::intersect_kept;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn noisy_pair(n: usize, noise: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut level: f64 = -80.0;
        for _ in 0..n {
            level += (rng.random::<f64>() - 0.5) * 4.0;
            a.push(level + (rng.random::<f64>() - 0.5) * noise);
            b.push(level + (rng.random::<f64>() - 0.5) * noise);
        }
        (a, b)
    }

    #[test]
    fn one_bit_per_kept_sample() {
        let (a, _) = noisy_pair(256, 0.5, 11);
        let out = GuardBandQuantizer::default().quantize(&a);
        assert_eq!(out.bits.len(), out.kept.len());
    }

    #[test]
    fn larger_alpha_keeps_fewer_samples() {
        let (a, _) = noisy_pair(512, 0.5, 12);
        let loose = GuardBandQuantizer::new(0.2).quantize(&a).kept.len();
        let strict = GuardBandQuantizer::new(1.2).quantize(&a).kept.len();
        assert!(strict < loose, "{strict} !< {loose}");
    }

    #[test]
    fn larger_alpha_improves_agreement() {
        let (a, b) = noisy_pair(4096, 2.0, 13);
        let agree = |alpha: f64| {
            let q = GuardBandQuantizer::new(alpha);
            let oa = q.quantize(&a);
            let ob = q.quantize(&b);
            let kept = intersect_kept(&oa.kept, &ob.kept);
            q.quantize_with_kept(&a, &kept)
                .agreement(&q.quantize_with_kept(&b, &kept))
        };
        assert!(agree(1.0) > agree(0.1), "{} !> {}", agree(1.0), agree(0.1));
    }

    #[test]
    fn extreme_samples_map_to_expected_bits() {
        // One block: values straddling the mean with wide spread.
        let series = vec![-100.0, -100.0, -100.0, -60.0, -60.0, -60.0];
        let q = GuardBandQuantizer::new(0.5).with_block_size(6);
        let out = q.quantize(&series);
        // Low values → 0, high values → 1.
        for (i, &idx) in out.kept.iter().enumerate() {
            assert_eq!(out.bits.get(i), series[idx] > -80.0);
        }
    }

    #[test]
    fn identical_series_agree() {
        let (a, _) = noisy_pair(512, 0.5, 14);
        let q = GuardBandQuantizer::default();
        let oa = q.quantize(&a);
        let ob = q.quantize(&a);
        assert_eq!(oa.bits, ob.bits);
    }
}
