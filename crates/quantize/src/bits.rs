//! Bit-packed bit strings with the operations key generation needs.

use serde::{Deserialize, Serialize};

/// A bit string, packed 8 bits per byte (MSB-first within each byte).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// Empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// All-zero bit string of the given length.
    pub fn zeros(len: usize) -> Self {
        BitString {
            bytes: vec![0; len.div_ceil(8)],
            len,
        }
    }

    /// Build from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = BitString::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i, true);
            }
        }
        s
    }

    /// Build from `0.0/1.0`-ish floats by thresholding at 0.5 (used to read
    /// the sigmoid quantization head's output).
    pub fn from_soft(values: &[f32]) -> Self {
        BitString::from_bools(&values.iter().map(|&v| v >= 0.5).collect::<Vec<_>>())
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bytes[i / 8] & (0x80 >> (i % 8)) != 0
    }

    /// Set bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if v {
            self.bytes[i / 8] |= 0x80 >> (i % 8);
        } else {
            self.bytes[i / 8] &= !(0x80 >> (i % 8));
        }
    }

    /// Append one bit.
    pub fn push(&mut self, v: bool) {
        if self.len % 8 == 0 {
            self.bytes.push(0);
        }
        self.len += 1;
        let i = self.len - 1;
        if v {
            self.bytes[i / 8] |= 0x80 >> (i % 8);
        }
    }

    /// Append all bits of another string.
    pub fn extend(&mut self, other: &BitString) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Iterate over bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Bits as a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Bits as `0.0/1.0` floats (neural-network input encoding).
    pub fn to_floats(&self) -> Vec<f32> {
        self.iter().map(|b| if b { 1.0 } else { 0.0 }).collect()
    }

    /// The packed bytes (the final byte's unused low bits are zero).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor(&self, other: &BitString) -> BitString {
        assert_eq!(self.len, other.len, "xor length mismatch");
        BitString {
            bytes: self
                .bytes
                .iter()
                .zip(&other.bytes)
                .map(|(a, b)| a ^ b)
                .collect(),
            len: self.len,
        }
    }

    /// Hamming distance to another string of equal length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn hamming(&self, other: &BitString) -> usize {
        self.xor(other)
            .bytes
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum()
    }

    /// Fraction of agreeing bits (the paper's *key agreement rate* at the
    /// bit level). Returns 1.0 for two empty strings.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn agreement(&self, other: &BitString) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        1.0 - self.hamming(other) as f64 / self.len as f64
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.bytes.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// A sub-string of bits `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the string.
    pub fn slice(&self, start: usize, len: usize) -> BitString {
        assert!(start + len <= self.len, "slice out of range");
        let mut out = BitString::zeros(len);
        for i in 0..len {
            out.set(i, self.get(start + i));
        }
        out
    }
}

impl std::fmt::Display for BitString {
    /// Binary rendering, e.g. `1011`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut s = BitString::new();
        for b in iter {
            s.push(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut s = BitString::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            s.push(b);
        }
        assert_eq!(s.len(), 9);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn from_bools_and_display() {
        let s = BitString::from_bools(&[true, false, true, true]);
        assert_eq!(s.to_string(), "1011");
    }

    #[test]
    fn xor_and_hamming() {
        let a = BitString::from_bools(&[true, false, true, false]);
        let b = BitString::from_bools(&[true, true, false, false]);
        assert_eq!(a.xor(&b).to_string(), "0110");
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.agreement(&b), 0.5);
        assert_eq!(a.agreement(&a), 1.0);
    }

    #[test]
    fn xor_self_inverse() {
        let a = BitString::from_bools(&[true, false, true, true, false]);
        let b = BitString::from_bools(&[false, false, true, false, true]);
        assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        BitString::zeros(3).xor(&BitString::zeros(4));
    }

    #[test]
    fn slice_and_extend() {
        let a = BitString::from_bools(&[true, false, true, true, false, true]);
        let s = a.slice(2, 3);
        assert_eq!(s.to_string(), "110");
        let mut b = a.slice(0, 2);
        b.extend(&s);
        assert_eq!(b.to_string(), "10110");
    }

    #[test]
    fn from_soft_thresholds() {
        let s = BitString::from_soft(&[0.9, 0.1, 0.5, 0.49]);
        assert_eq!(s.to_string(), "1010");
    }

    #[test]
    fn floats_round_trip() {
        let s = BitString::from_bools(&[true, false, true]);
        assert_eq!(s.to_floats(), vec![1.0, 0.0, 1.0]);
        assert_eq!(BitString::from_soft(&s.to_floats()), s);
    }

    #[test]
    fn count_ones_ignores_padding() {
        let mut s = BitString::zeros(9);
        s.set(8, true);
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let s: BitString = [true, true, false].into_iter().collect();
        assert_eq!(s.to_string(), "110");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitString::zeros(8).get(8);
    }
}
