//! Fixed-threshold multi-bit quantizer over standardized values.
//!
//! Block-local quantile thresholds (as in [`crate::MultiBitQuantizer`])
//! exist to track the large-scale RSSI trend. When the feature stream is
//! already detrended (Vehicle-Key subtracts the public per-round baseline),
//! the equivalent — and much simpler — quantizer z-scores the window once
//! and cuts at the **standard-normal quantiles**: each sample's bits become
//! a fixed function of its own standardized value, which is what lets the
//! model's quantization head (a smooth map per value) reproduce them
//! exactly. Gray coding keeps adjacent-bin errors to a single bit, and a
//! guard band in σ units drops samples near a threshold.

use crate::bits::BitString;
use crate::gray;
use crate::multibit::QuantizeOutcome;
use serde::{Deserialize, Serialize};

/// Standard-normal quantile function (Acklam's rational approximation,
/// |ε| < 1.15e-9).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// Fixed-threshold quantizer over z-scored windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedQuantizer {
    /// Bits per kept sample (`m`; bins = `2^m`).
    pub bits_per_sample: usize,
    /// Guard-band half-width around each threshold, in σ units (0 disables
    /// dropping).
    pub guard_z: f64,
}

impl FixedQuantizer {
    /// Quantizer with `m` bits/sample and a 0.1 σ guard band.
    pub fn new(bits_per_sample: usize) -> Self {
        FixedQuantizer {
            bits_per_sample,
            guard_z: 0.1,
        }
    }

    /// Builder-style override of the guard band.
    pub fn with_guard_z(mut self, g: f64) -> Self {
        self.guard_z = g;
        self
    }

    /// The bin thresholds in σ units (`2^m − 1` of them).
    pub fn thresholds(&self) -> Vec<f64> {
        let bins = 1usize << self.bits_per_sample;
        (1..bins).map(|k| probit(k as f64 / bins as f64)).collect()
    }

    /// Z-score a window (population std, floored for constant windows).
    pub fn zscores(window: &[f64]) -> Vec<f64> {
        let n = window.len() as f64;
        let mean = window.iter().sum::<f64>() / n;
        let var = window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        window.iter().map(|x| (x - mean) / std).collect()
    }

    /// Quantize a window, dropping guard-band samples.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sample` is 0 or > 8.
    pub fn quantize(&self, window: &[f64]) -> QuantizeOutcome {
        self.run(window, None)
    }

    /// Quantize on an agreed kept-index set (guard not re-applied).
    pub fn quantize_with_kept(&self, window: &[f64], kept: &[usize]) -> BitString {
        self.run(window, Some(kept)).bits
    }

    fn run(&self, window: &[f64], forced_kept: Option<&[usize]>) -> QuantizeOutcome {
        assert!(
            (1..=8).contains(&self.bits_per_sample),
            "bits_per_sample must be 1..=8"
        );
        let thresholds = self.thresholds();
        let z = Self::zscores(window);
        let mut bits = BitString::new();
        let mut kept = Vec::new();
        for (idx, &v) in z.iter().enumerate() {
            let keep = match forced_kept {
                Some(forced) => forced.binary_search(&idx).is_ok(),
                None => !thresholds.iter().any(|&t| (v - t).abs() < self.guard_z),
            };
            if !keep {
                continue;
            }
            let bin = thresholds.iter().filter(|&&t| v >= t).count() as u32;
            for b in gray::encode_bits(bin, self.bits_per_sample) {
                bits.push(b);
            }
            kept.push(idx);
        }
        if telemetry::enabled() {
            telemetry::counter("quantize.bits", bits.len() as u64);
            telemetry::counter(
                "quantize.dropped_samples",
                (window.len() - kept.len()) as u64,
            );
        }
        QuantizeOutcome { bits, kept }
    }
}

impl Default for FixedQuantizer {
    fn default() -> Self {
        FixedQuantizer::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_known_values() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.75) - 0.674_489_75).abs() < 1e-6);
        assert!((probit(0.25) + 0.674_489_75).abs() < 1e-6);
        assert!((probit(0.975) - 1.959_963_98).abs() < 1e-6);
        assert!((probit(0.001) + 3.090_232_3).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "probit domain")]
    fn probit_rejects_boundary() {
        probit(0.0);
    }

    #[test]
    fn quartile_thresholds_for_two_bits() {
        let q = FixedQuantizer::new(2);
        let t = q.thresholds();
        assert_eq!(t.len(), 3);
        assert!((t[0] + 0.6745).abs() < 1e-3);
        assert!(t[1].abs() < 1e-9);
        assert!((t[2] - 0.6745).abs() < 1e-3);
    }

    #[test]
    fn zscores_standardize() {
        let z = FixedQuantizer::zscores(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f64 = z.iter().sum::<f64>() / 4.0;
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_values_hit_extreme_bins() {
        let q = FixedQuantizer::new(2).with_guard_z(0.0);
        let window = [-10.0, -1.0, 1.0, 10.0];
        let out = q.quantize(&window);
        assert_eq!(out.kept.len(), 4);
        // Bin of the largest value is 3 → gray 10; smallest is 0 → 00.
        assert!(!out.bits.get(0) && !out.bits.get(1)); // -10 → bin 0
        assert!(out.bits.get(6) && !out.bits.get(7)); // +10 → bin 3 (gray 10)
    }

    #[test]
    fn guard_band_drops_near_threshold_values() {
        let q = FixedQuantizer::new(1).with_guard_z(0.3);
        // Values straddling the single threshold (0) closely and loosely.
        let window = [-2.0, -0.1, 0.1, 2.0, -1.5, 1.5, 0.05, -0.05];
        let out = q.quantize(&window);
        // After z-scoring the near-zero values stay near zero → dropped.
        assert!(out.kept.len() < 8);
        assert!(!out.kept.is_empty());
    }

    #[test]
    fn correlated_windows_agree() {
        // Same values + small noise → high agreement with guards.
        let base: Vec<f64> = (0..64)
            .map(|i| ((i * 37 % 64) as f64 - 32.0) / 8.0)
            .collect();
        let noisy: Vec<f64> = base.iter().map(|&v| v + 0.05 * ((v * 7.0).sin())).collect();
        let q = FixedQuantizer::new(2).with_guard_z(0.15);
        let ob = q.quantize(&base);
        let kb = q.quantize_with_kept(&noisy, &ob.kept);
        assert!(ob.bits.agreement(&kb) > 0.95);
    }

    #[test]
    fn bits_count_matches_kept() {
        let window: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        for m in 1..=3 {
            let q = FixedQuantizer::new(m).with_guard_z(0.1);
            let out = q.quantize(&window);
            assert_eq!(out.bits.len(), out.kept.len() * m);
        }
    }
}
