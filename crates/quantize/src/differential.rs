//! Differential quantizer: bits from the *sign of consecutive differences*.
//!
//! A classic alternative (e.g. Mathur et al.'s level-crossing relatives):
//! instead of comparing samples against thresholds, encode whether the
//! series went up or down between consecutive samples, dropping moves
//! smaller than a hysteresis margin. Differencing is inherently
//! trend-immune — a useful property on vehicular channels — at the cost of
//! correlating adjacent bits (each sample participates in two
//! differences).

use crate::bits::BitString;
use crate::multibit::QuantizeOutcome;
use serde::{Deserialize, Serialize};

/// Sign-of-difference quantizer with hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifferentialQuantizer {
    /// Minimum |Δ| (same unit as the series, e.g. dB) for a difference to
    /// produce a bit; smaller moves are dropped.
    pub hysteresis: f64,
}

impl DifferentialQuantizer {
    /// Quantizer with the given hysteresis margin.
    pub fn new(hysteresis: f64) -> Self {
        DifferentialQuantizer { hysteresis }
    }

    /// Quantize a series: bit `i` encodes `series[i+1] > series[i]`; the
    /// kept indices refer to the *difference* positions (0-based, so index
    /// `i` is the pair `(i, i+1)`).
    pub fn quantize(&self, series: &[f64]) -> QuantizeOutcome {
        let mut bits = BitString::new();
        let mut kept = Vec::new();
        for (i, w) in series.windows(2).enumerate() {
            let delta = w[1] - w[0];
            if delta.abs() >= self.hysteresis {
                bits.push(delta > 0.0);
                kept.push(i);
            }
        }
        QuantizeOutcome { bits, kept }
    }

    /// Quantize on an agreed kept set (no hysteresis re-applied; ties break
    /// to 0).
    pub fn quantize_with_kept(&self, series: &[f64], kept: &[usize]) -> BitString {
        let mut bits = BitString::new();
        for &i in kept {
            if i + 1 < series.len() {
                bits.push(series[i + 1] - series[i] > 0.0);
            }
        }
        bits
    }
}

impl Default for DifferentialQuantizer {
    fn default() -> Self {
        DifferentialQuantizer::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multibit::intersect_kept;

    #[test]
    fn encodes_direction() {
        let series = [0.0, 2.0, 1.0, 3.0, 3.1];
        let q = DifferentialQuantizer::new(0.5);
        let out = q.quantize(&series);
        // Differences: +2 (keep, 1), −1 (keep, 0), +2 (keep, 1), +0.1 (drop).
        assert_eq!(out.bits.to_string(), "101");
        assert_eq!(out.kept, vec![0, 1, 2]);
    }

    #[test]
    fn hysteresis_drops_small_moves() {
        let series = [0.0, 0.1, 0.2, 5.0];
        let loose = DifferentialQuantizer::new(0.05).quantize(&series);
        let strict = DifferentialQuantizer::new(1.0).quantize(&series);
        assert_eq!(loose.bits.len(), 3);
        assert_eq!(strict.bits.len(), 1);
    }

    #[test]
    fn trend_immune() {
        // A pure linear ramp: the differences are constant, so both parties
        // always agree regardless of the ramp's slope.
        let a: Vec<f64> = (0..50).map(|i| i as f64 * 2.0).collect();
        let b: Vec<f64> = (0..50).map(|i| i as f64 * 2.0 - 40.0).collect();
        let q = DifferentialQuantizer::new(0.5);
        let oa = q.quantize(&a);
        let ob = q.quantize(&b);
        let kept = intersect_kept(&oa.kept, &ob.kept);
        assert_eq!(
            q.quantize_with_kept(&a, &kept),
            q.quantize_with_kept(&b, &kept)
        );
    }

    #[test]
    fn correlated_series_agree() {
        let base: Vec<f64> = (0..200).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let noisy: Vec<f64> = base.iter().map(|v| v + 0.1 * (v * 3.0).sin()).collect();
        let q = DifferentialQuantizer::new(1.0);
        let oa = q.quantize(&base);
        let ob = q.quantize(&noisy);
        let kept = intersect_kept(&oa.kept, &ob.kept);
        let agreement = q
            .quantize_with_kept(&base, &kept)
            .agreement(&q.quantize_with_kept(&noisy, &kept));
        assert!(agreement > 0.97, "agreement {agreement}");
    }

    #[test]
    fn kept_indices_out_of_range_ignored() {
        let series = [1.0, 2.0];
        let q = DifferentialQuantizer::default();
        let bits = q.quantize_with_kept(&series, &[0, 5, 9]);
        assert_eq!(bits.len(), 1);
    }
}
