//! Single-threshold mean quantizer — the simplest baseline.

use crate::bits::BitString;
use serde::{Deserialize, Serialize};

/// Quantizes each sample to 1 if it exceeds its block mean, else 0. No
/// samples are dropped, so both parties always produce equal-length keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeanQuantizer {
    /// Samples per adaptive block.
    pub block_size: usize,
}

impl MeanQuantizer {
    /// Quantizer with the given block size.
    pub fn new(block_size: usize) -> Self {
        MeanQuantizer {
            block_size: block_size.max(2),
        }
    }

    /// Quantize a series: one bit per sample.
    pub fn quantize(&self, series: &[f64]) -> BitString {
        let mut bits = BitString::new();
        for chunk in series.chunks(self.block_size) {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            for &x in chunk {
                bits.push(x >= mean);
            }
        }
        bits
    }
}

impl Default for MeanQuantizer {
    fn default() -> Self {
        MeanQuantizer::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_per_sample() {
        let series: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        assert_eq!(MeanQuantizer::default().quantize(&series).len(), 100);
    }

    #[test]
    fn alternating_series() {
        let series = vec![-90.0, -70.0, -90.0, -70.0];
        let bits = MeanQuantizer::new(4).quantize(&series);
        assert_eq!(bits.to_string(), "0101");
    }

    #[test]
    fn block_local_threshold_removes_trend() {
        // A strong downward trend with small alternation on top: a global
        // threshold would output 111...000; block-local keeps alternation.
        let series: Vec<f64> = (0..64)
            .map(|i| -(i as f64) * 2.0 + if i % 2 == 0 { 0.6 } else { -0.6 })
            .collect();
        let bits = MeanQuantizer::new(4).quantize(&series);
        // Expect close to 50% ones (alternation), not a step function.
        let ones = bits.count_ones();
        assert!((24..=40).contains(&ones), "ones {ones}");
    }
}
