//! Multi-bit adaptive quantizer (Jana et al., the paper's reference \[2\]).
//!
//! The series is processed in blocks. Within each block the empirical
//! quantiles define `2^m` bins; each sample maps to its bin index, Gray-coded
//! into `m` bits. Samples falling within a guard band around a bin boundary
//! are *dropped* (their index is reported so the two parties can intersect
//! their kept sets over the public channel, exactly as the original
//! protocol does). Block-local thresholds make the quantizer adaptive to the
//! large-scale RSSI trend, so the extracted bits encode **small-scale**
//! variation — the part of the channel an eavesdropper cannot observe.

use crate::bits::BitString;
use crate::gray;
use serde::{Deserialize, Serialize};

/// Outcome of quantizing a series: the bits plus which sample indices
/// survived guard-band filtering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizeOutcome {
    /// Extracted bits (`bits_per_sample` bits per kept sample).
    pub bits: BitString,
    /// Indices (into the input series) of the kept samples.
    pub kept: Vec<usize>,
}

/// The Jana et al. adaptive multi-bit quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBitQuantizer {
    /// Bits extracted per kept sample (`m`; bins = `2^m`).
    pub bits_per_sample: usize,
    /// Samples per adaptive block.
    pub block_size: usize,
    /// Guard-band half-width as a fraction of the bin width (0 disables
    /// dropping).
    pub guard_fraction: f64,
}

impl MultiBitQuantizer {
    /// Quantizer with `m` bits per sample, 64-sample blocks and a 10% guard
    /// band.
    pub fn new(bits_per_sample: usize) -> Self {
        MultiBitQuantizer {
            bits_per_sample,
            block_size: 64,
            guard_fraction: 0.1,
        }
    }

    /// Builder-style override of the block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Builder-style override of the guard-band fraction.
    pub fn with_guard_fraction(mut self, f: f64) -> Self {
        self.guard_fraction = f;
        self
    }

    /// Quantize a series, dropping guard-band samples.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sample` is 0 or > 8.
    pub fn quantize(&self, series: &[f64]) -> QuantizeOutcome {
        self.run(series, None)
    }

    /// Quantize using an agreed kept-index set (the intersection exchanged
    /// between the two parties). Guard bands are not re-applied.
    pub fn quantize_with_kept(&self, series: &[f64], kept: &[usize]) -> BitString {
        self.run(series, Some(kept)).bits
    }

    fn run(&self, series: &[f64], forced_kept: Option<&[usize]>) -> QuantizeOutcome {
        assert!(
            (1..=8).contains(&self.bits_per_sample),
            "bits_per_sample must be 1..=8"
        );
        let m = self.bits_per_sample;
        let bins = 1usize << m;
        let mut bits = BitString::new();
        let mut kept = Vec::new();
        let block = self.block_size.max(2);
        for (block_idx, chunk) in series.chunks(block).enumerate() {
            let base = block_idx * block;
            // Quantile thresholds from the sorted block.
            let mut sorted: Vec<f64> = chunk.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let quantile = |q: f64| -> f64 {
                let pos = q * (sorted.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            };
            let thresholds: Vec<f64> = (1..bins)
                .map(|k| quantile(k as f64 / bins as f64))
                .collect();
            // Guard half-width relative to the typical bin width.
            let spread = sorted[sorted.len() - 1] - sorted[0];
            let guard = self.guard_fraction * spread / bins as f64;
            for (j, &x) in chunk.iter().enumerate() {
                let idx = base + j;
                let in_guard = thresholds.iter().any(|&t| (x - t).abs() < guard);
                let keep = match forced_kept {
                    Some(forced) => forced.binary_search(&idx).is_ok(),
                    None => !in_guard,
                };
                if !keep {
                    continue;
                }
                let bin = thresholds.iter().filter(|&&t| x >= t).count() as u32;
                for b in gray::encode_bits(bin, m) {
                    bits.push(b);
                }
                kept.push(idx);
            }
        }
        QuantizeOutcome { bits, kept }
    }
}

impl Default for MultiBitQuantizer {
    fn default() -> Self {
        MultiBitQuantizer::new(2)
    }
}

/// Intersection of two sorted kept-index lists (the public exchange both
/// protocols perform).
pub fn intersect_kept(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn noisy_pair(n: usize, noise: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut level: f64 = -80.0;
        for _ in 0..n {
            level += (rng.random::<f64>() - 0.5) * 4.0;
            a.push(level + (rng.random::<f64>() - 0.5) * noise);
            b.push(level + (rng.random::<f64>() - 0.5) * noise);
        }
        (a, b)
    }

    #[test]
    fn bits_per_kept_sample() {
        let (a, _) = noisy_pair(256, 0.0, 1);
        for m in 1..=3 {
            let q = MultiBitQuantizer::new(m);
            let out = q.quantize(&a);
            assert_eq!(out.bits.len(), out.kept.len() * m);
        }
    }

    #[test]
    fn identical_series_agree_perfectly() {
        let (a, _) = noisy_pair(256, 0.0, 2);
        let q = MultiBitQuantizer::new(2);
        let oa = q.quantize(&a);
        let ob = q.quantize(&a);
        assert_eq!(oa.bits, ob.bits);
        assert_eq!(oa.kept, ob.kept);
    }

    #[test]
    fn correlated_series_agree_well_after_intersection() {
        let (a, b) = noisy_pair(512, 0.5, 3);
        let q = MultiBitQuantizer::new(2);
        let oa = q.quantize(&a);
        let ob = q.quantize(&b);
        let kept = intersect_kept(&oa.kept, &ob.kept);
        let ka = q.quantize_with_kept(&a, &kept);
        let kb = q.quantize_with_kept(&b, &kept);
        let agreement = ka.agreement(&kb);
        assert!(agreement > 0.85, "agreement {agreement}");
    }

    #[test]
    fn independent_series_agree_near_half() {
        let (a, _) = noisy_pair(2048, 0.5, 4);
        let (c, _) = noisy_pair(2048, 0.5, 5);
        let q = MultiBitQuantizer::new(1);
        let oa = q.quantize(&a);
        let oc = q.quantize(&c);
        let kept = intersect_kept(&oa.kept, &oc.kept);
        let ka = q.quantize_with_kept(&a, &kept);
        let kc = q.quantize_with_kept(&c, &kept);
        let agreement = ka.agreement(&kc);
        assert!((agreement - 0.5).abs() < 0.1, "agreement {agreement}");
    }

    #[test]
    fn guard_band_drops_samples() {
        let (a, _) = noisy_pair(512, 0.5, 6);
        let loose = MultiBitQuantizer::new(2).with_guard_fraction(0.0);
        let strict = MultiBitQuantizer::new(2).with_guard_fraction(0.5);
        assert_eq!(loose.quantize(&a).kept.len(), 512);
        assert!(strict.quantize(&a).kept.len() < 512);
    }

    #[test]
    fn guard_band_improves_agreement() {
        let (a, b) = noisy_pair(2048, 1.5, 7);
        let agree = |g: f64| {
            let q = MultiBitQuantizer::new(2).with_guard_fraction(g);
            let oa = q.quantize(&a);
            let ob = q.quantize(&b);
            let kept = intersect_kept(&oa.kept, &ob.kept);
            q.quantize_with_kept(&a, &kept)
                .agreement(&q.quantize_with_kept(&b, &kept))
        };
        assert!(
            agree(0.6) > agree(0.0),
            "guard {} vs none {}",
            agree(0.6),
            agree(0.0)
        );
    }

    #[test]
    fn more_bits_per_sample_yield_more_bits_but_more_errors() {
        let (a, b) = noisy_pair(1024, 1.0, 8);
        let run = |m: usize| {
            let q = MultiBitQuantizer::new(m).with_guard_fraction(0.1);
            let oa = q.quantize(&a);
            let ob = q.quantize(&b);
            let kept = intersect_kept(&oa.kept, &ob.kept);
            let ka = q.quantize_with_kept(&a, &kept);
            let kb = q.quantize_with_kept(&b, &kept);
            (ka.len(), ka.agreement(&kb))
        };
        let (n1, a1) = run(1);
        let (n3, a3) = run(3);
        assert!(n3 > n1, "bit counts {n3} vs {n1}");
        assert!(a1 > a3, "agreements {a1} vs {a3}");
    }

    #[test]
    fn intersect_kept_basic() {
        assert_eq!(intersect_kept(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect_kept(&[], &[1]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "bits_per_sample")]
    fn rejects_zero_bits() {
        MultiBitQuantizer::new(0).quantize(&[1.0, 2.0]);
    }
}
