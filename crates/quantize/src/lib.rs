//! Quantization algorithms for physical-layer key generation.
//!
//! Converts channel-measurement series (arRSSI values) into bit strings.
//! Three quantizers are provided, matching the schemes compared in the
//! paper's evaluation:
//!
//! * [`MultiBitQuantizer`] — the adaptive-secret-bit-generation quantizer of
//!   Jana et al. (paper reference \[2\]); block-local quantile thresholds,
//!   multiple bits per sample with **Gray coding**, and guard-band dropping.
//!   This is what Bob runs in Vehicle-Key (Sec. IV-B).
//! * [`GuardBandQuantizer`] — the `mean ± α·σ` two-threshold quantizer used
//!   by LoRa-Key (Xu et al., reference \[8\]); 1 bit/sample with a tunable
//!   guard-band ratio `α`.
//! * [`MeanQuantizer`] — the single-threshold baseline.
//! * [`FixedQuantizer`] — fixed normal-quantile thresholds over z-scored
//!   windows; equivalent to block-local quantiles once the stream is
//!   detrended, and the form Vehicle-Key's Bob runs (see the crate's
//!   `fixed` module docs).
//!
//! Quantizers that drop samples report the kept indices so the two parties
//! can intersect them (as the original protocols do over the public
//! channel); [`quantize_with_kept`](MultiBitQuantizer::quantize_with_kept)
//! re-runs quantization on an agreed index set.
//!
//! The [`bits::BitString`] type is the common currency: bit-packed, with
//! XOR/Hamming utilities used throughout reconciliation and evaluation.

pub mod bits;
pub mod differential;
pub mod fixed;
pub mod gray;
pub mod guardband;
pub mod mean;
pub mod multibit;

pub use bits::BitString;
pub use differential::DifferentialQuantizer;
pub use fixed::FixedQuantizer;
pub use guardband::GuardBandQuantizer;
pub use mean::MeanQuantizer;
pub use multibit::{MultiBitQuantizer, QuantizeOutcome};
