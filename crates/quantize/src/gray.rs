//! Gray-code helpers.
//!
//! Multi-bit quantizers map each sample to the index of its quantile bin;
//! encoding the index in Gray code guarantees that a sample landing one bin
//! off at the other party costs exactly **one** bit error instead of up to
//! `m` — the property that makes multi-bit quantization reconcilable.

/// Gray code of `n`.
pub fn encode(n: u32) -> u32 {
    n ^ (n >> 1)
}

/// Inverse of [`encode`] (prefix-XOR from the most significant bit down).
pub fn decode(g: u32) -> u32 {
    let mut value = 0;
    let mut acc = 0;
    for bit in (0..32).rev() {
        acc ^= (g >> bit) & 1;
        value |= acc << bit;
    }
    value
}

/// The `m` low bits of the Gray code of `n`, MSB first.
pub fn encode_bits(n: u32, m: usize) -> Vec<bool> {
    let g = encode(n);
    (0..m).rev().map(|i| (g >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sequence() {
        let expected = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
        for (n, &g) in expected.iter().enumerate() {
            assert_eq!(encode(n as u32), g, "gray({n})");
        }
    }

    #[test]
    fn round_trip() {
        for n in 0..1000 {
            assert_eq!(decode(encode(n)), n, "n = {n}");
        }
    }

    #[test]
    fn adjacent_codes_differ_by_one_bit() {
        for n in 0..255u32 {
            let d = (encode(n) ^ encode(n + 1)).count_ones();
            assert_eq!(d, 1, "gray({n}) vs gray({})", n + 1);
        }
    }

    #[test]
    fn encode_bits_msb_first() {
        // gray(3) = 0b010 over 3 bits.
        assert_eq!(encode_bits(3, 3), vec![false, true, false]);
        // gray(1) = 0b01 over 2 bits.
        assert_eq!(encode_bits(1, 2), vec![false, true]);
    }
}
