//! Radio channel substrate for the Vehicle-Key reproduction.
//!
//! Physical-layer key generation rests on **channel reciprocity**: the radio
//! channel between Alice and Bob has the same state in both directions when
//! measured at the same instant. What breaks the *measurements'* reciprocity
//! is the probe time offset `ΔT` relative to the channel **coherence time**
//! `T_c` (paper Sec. II). This crate provides a channel model in which those
//! effects arise from first principles rather than being painted on:
//!
//! * [`pathloss`] — deterministic log-distance path loss,
//! * [`shadowing`] — spatially-correlated log-normal shadowing
//!   (Gudmundson model), shared by nearby trajectories — this is why the
//!   imitating attacker sees the same *large-scale* trend (Fig. 16),
//! * [`fading`] — time-correlated small-scale fading via a sum-of-sinusoids
//!   (Clarke/Jakes) process parameterized by the Doppler frequency; Rician
//!   for rural LOS, Rayleigh for urban NLOS — this is the entropy source the
//!   attacker cannot copy,
//! * [`theory`] — the paper's closed-form expressions: Doppler shift,
//!   coherence time for fast/slow fading, the Rayleigh and log-normal PDFs of
//!   Eqs. (1)–(2),
//! * [`model`] — the composite [`ChannelModel`]: a single stochastic link
//!   process sampled by both endpoints (reciprocal by construction) plus
//!   direction-asymmetric interference, and a spatially decorrelated
//!   eavesdropper tap following the `J₀(2πd/λ)` law.
//!
//! # Example
//!
//! ```
//! use channel::{ChannelModel, Environment, LinkBudget, Direction};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut ch = ChannelModel::new(Environment::Urban, LinkBudget::default(), &mut rng)
//!     .with_doppler_hz(16.0);
//! // The same instant yields the same gain in both directions (reciprocity)
//! // up to the direction-asymmetric interference term.
//! let ab = ch.gain_dbm(1.0, 500.0, Direction::AliceToBob);
//! let ba = ch.gain_dbm(1.0, 500.0, Direction::BobToAlice);
//! assert!((ab - ba).abs() < 5.0);
//! ```

pub mod fading;
pub mod model;
pub mod pathloss;
pub mod process;
pub mod shadowing;
pub mod theory;

pub use fading::{FadingKind, FadingProcess};
pub use model::{ChannelModel, Direction, EveChannel, LinkBudget};
pub use pathloss::PathLoss;
pub use shadowing::Shadowing;
pub use theory::{
    bessel_j0, coherence_bandwidth_hz, coherence_time_fast, coherence_time_slow, doppler_shift_hz,
    estimate_rice_k, lognormal_pdf, rayleigh_pdf, sign_agreement_probability,
};

/// Propagation environment, controlling multipath richness.
///
/// * `Urban`: no line of sight, Rayleigh small-scale fading, strong and
///   rapidly decorrelating shadowing — the richer multipath yields more key
///   entropy (the paper's Fig. 13 discussion).
/// * `Rural`: line of sight, Rician fading with a dominant component, gentle
///   shadowing with long decorrelation distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Environment {
    /// Dense NLOS urban canyon.
    Urban,
    /// Open LOS rural road.
    Rural,
}

impl Environment {
    /// Both environments, urban first (matching the paper's figure order).
    pub const ALL: [Environment; 2] = [Environment::Urban, Environment::Rural];
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Environment::Urban => f.write_str("Urban"),
            Environment::Rural => f.write_str("Rural"),
        }
    }
}
