//! First-order Gauss–Markov process on a uniform grid.
//!
//! Shared machinery for the spatially-correlated shadowing process (grid over
//! travelled distance) and the temporally-correlated interference process
//! (grid over time). The realization extends lazily and deterministically
//! from a stored seed, so clones replay identically and queries at the same
//! coordinate always agree.

use serde::{Deserialize, Serialize};

/// Lazily-extended Gauss–Markov realization with exponential autocorrelation
/// `ρ(Δ) = exp(−Δ/ℓ)` and marginal standard deviation `σ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussMarkovGrid {
    /// Marginal standard deviation σ.
    pub sigma: f64,
    /// Correlation length ℓ (same unit as the query coordinate).
    pub correlation_length: f64,
    grid_step: f64,
    realization: Vec<f64>,
    state: u64,
}

impl GaussMarkovGrid {
    /// Create a process with `grid_step` resolution (usually ℓ/10).
    pub fn new(sigma: f64, correlation_length: f64, grid_step: f64, seed: u64) -> Self {
        GaussMarkovGrid {
            sigma,
            correlation_length,
            grid_step: grid_step.max(1e-9),
            realization: Vec::new(),
            state: seed,
        }
    }

    /// Theoretical correlation between two points `delta` apart.
    pub fn correlation(&self, delta: f64) -> f64 {
        (-delta.abs() / self.correlation_length).exp()
    }

    /// Value at coordinate `x ≥ 0` (clamped), linearly interpolated.
    pub fn at(&mut self, x: f64) -> f64 {
        let x = x.max(0.0);
        let idx = (x / self.grid_step) as usize;
        self.extend_to(idx + 1);
        let frac = x / self.grid_step - idx as f64;
        self.realization[idx] * (1.0 - frac) + self.realization[idx + 1] * frac
    }

    fn extend_to(&mut self, idx: usize) {
        let rho = (-self.grid_step / self.correlation_length).exp();
        let innovation_sigma = self.sigma * (1.0 - rho * rho).sqrt();
        while self.realization.len() <= idx {
            let z = self.next_gaussian();
            let v = match self.realization.last() {
                None => self.sigma * z,
                Some(&prev) => rho * prev + innovation_sigma * z,
            };
            self.realization.push(v);
        }
    }

    fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_uniform().max(f64::MIN_POSITIVE);
        let u2 = self.next_uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn next_uniform(&mut self) -> f64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_clone_consistent() {
        let mut g = GaussMarkovGrid::new(2.0, 10.0, 1.0, 42);
        let a = g.at(55.5);
        assert_eq!(g.at(55.5), a);
        let mut c = g.clone();
        assert_eq!(c.at(200.0), g.at(200.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussMarkovGrid::new(2.0, 10.0, 1.0, 1);
        let mut b = GaussMarkovGrid::new(2.0, 10.0, 1.0, 2);
        assert_ne!(a.at(5.0), b.at(5.0));
    }

    #[test]
    fn marginal_std() {
        let mut g = GaussMarkovGrid::new(3.0, 5.0, 0.5, 77);
        let samples: Vec<f64> = (0..5000).map(|i| g.at(i as f64 * 60.0)).collect();
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd =
            (samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!((sd - 3.0).abs() < 0.25, "sd {sd}");
    }

    #[test]
    fn negative_coordinates_clamp_to_zero() {
        let mut g = GaussMarkovGrid::new(1.0, 10.0, 1.0, 3);
        assert_eq!(g.at(-5.0), g.at(0.0));
    }
}
