//! Small-scale multipath fading via a sum-of-sinusoids (Clarke) process.
//!
//! The scattered field at a moving receiver is the superposition of many
//! plane waves arriving from random angles `α_n`; motion at Doppler frequency
//! `f_d` rotates each component at `f_d·cos(α_n)`. With enough sinusoids the
//! complex gain is Gaussian, its envelope Rayleigh, and its autocorrelation
//! is `J₀(2π f_d Δt)` — exactly the coherence behaviour the paper's analysis
//! relies on. A Rician variant adds a line-of-sight component with factor
//! `K` for the rural scenarios.
//!
//! The process is **analytic in time**: it can be evaluated at any instant,
//! which is what lets the testbed sample Alice's and Bob's measurements at
//! their true (airtime-separated) timestamps from the *same* realization —
//! reciprocity by construction.

use crate::Environment;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Kind of small-scale fading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FadingKind {
    /// Pure scattered field (urban NLOS).
    Rayleigh,
    /// Scattered field plus a dominant line-of-sight path with Rice factor
    /// `k` (linear power ratio; rural LOS uses `k ≈ 6`).
    Rician {
        /// Rice factor `K` (LOS power / scattered power), linear.
        k: f64,
    },
}

impl FadingKind {
    /// Fading kind for an environment, as motivated in the paper's
    /// preliminary study: Rayleigh in urban NLOS, Rician in rural LOS.
    pub fn for_environment(env: Environment) -> Self {
        match env {
            Environment::Urban => FadingKind::Rayleigh,
            Environment::Rural => FadingKind::Rician { k: 3.0 },
        }
    }
}

/// A frozen sum-of-sinusoids fading realization.
///
/// Time enters in **Doppler cycles** `x = f_d · t`, so one realization can be
/// reused at different speeds by scaling the argument; correlation between
/// samples `Δx` cycles apart is `≈ J₀(2πΔx)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FadingProcess {
    kind: FadingKind,
    /// Arrival-angle cosines of the scattered components.
    cos_alpha: Vec<f64>,
    /// Initial phases of the scattered components (radians).
    phases: Vec<f64>,
    /// LOS arrival-angle cosine (Rician only).
    los_cos: f64,
    /// LOS initial phase.
    los_phase: f64,
}

impl FadingProcess {
    /// Number of sinusoids: enough for Gaussian statistics, cheap to sample.
    pub const DEFAULT_SINUSOIDS: usize = 48;

    /// Draw a new realization.
    pub fn new<R: Rng + ?Sized>(kind: FadingKind, rng: &mut R) -> Self {
        FadingProcess::with_sinusoids(kind, Self::DEFAULT_SINUSOIDS, rng)
    }

    /// Draw a new realization with an explicit number of sinusoids.
    pub fn with_sinusoids<R: Rng + ?Sized>(kind: FadingKind, n: usize, rng: &mut R) -> Self {
        let tau = std::f64::consts::TAU;
        let cos_alpha = (0..n)
            .map(|i| {
                // Stratified angles + random jitter: better J0 convergence
                // than i.i.d. angles at the same N.
                let base = tau * (i as f64 + rng.random::<f64>()) / n as f64;
                base.cos()
            })
            .collect();
        let phases = (0..n).map(|_| rng.random::<f64>() * tau).collect();
        FadingProcess {
            kind,
            cos_alpha,
            phases,
            los_cos: (rng.random::<f64>() * tau).cos(),
            los_phase: rng.random::<f64>() * tau,
        }
    }

    /// Kind of this process.
    pub fn kind(&self) -> FadingKind {
        self.kind
    }

    /// Complex gain `(re, im)` after `x` Doppler cycles. `E[|g|²] = 1`.
    pub fn gain_at_cycles(&self, x: f64) -> (f64, f64) {
        let tau = std::f64::consts::TAU;
        let n = self.cos_alpha.len() as f64;
        let mut re = 0.0;
        let mut im = 0.0;
        for (c, p) in self.cos_alpha.iter().zip(&self.phases) {
            let phi = tau * c * x + p;
            re += phi.cos();
            im += phi.sin();
        }
        let scale = (1.0 / n).sqrt();
        let (mut re, mut im) = (re * scale, im * scale);
        if let FadingKind::Rician { k } = self.kind {
            let los_amp = (k / (k + 1.0)).sqrt();
            let scatter_amp = (1.0 / (k + 1.0)).sqrt();
            let phi = tau * self.los_cos * x + self.los_phase;
            re = re * scatter_amp + los_amp * phi.cos();
            im = im * scatter_amp + los_amp * phi.sin();
        }
        (re, im)
    }

    /// Envelope `|g|` after `x` Doppler cycles.
    pub fn envelope_at_cycles(&self, x: f64) -> f64 {
        let (re, im) = self.gain_at_cycles(x);
        (re * re + im * im).sqrt()
    }

    /// Fading contribution in dB: `20·log₁₀|g|`, floored at −60 dB to keep
    /// deep fades finite.
    pub fn db_at_cycles(&self, x: f64) -> f64 {
        (20.0 * self.envelope_at_cycles(x).log10()).max(-60.0)
    }

    /// A process correlated with `self` at coefficient `rho ∈ [0, 1]`:
    /// `g' = ρ·g + √(1−ρ²)·g_indep`. Used for eavesdroppers a finite number
    /// of wavelengths away (`ρ = J₀(2πd/λ)` clamped to `[0, 1]`).
    pub fn correlated_with<R: Rng + ?Sized>(&self, rho: f64, rng: &mut R) -> CorrelatedFading {
        let rho = rho.clamp(0.0, 1.0);
        CorrelatedFading {
            base: self.clone(),
            independent: FadingProcess::with_sinusoids(self.kind, self.cos_alpha.len(), rng),
            rho,
        }
    }
}

/// A fading process partially correlated with a base process (eavesdropper
/// channel tap). See [`FadingProcess::correlated_with`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelatedFading {
    base: FadingProcess,
    independent: FadingProcess,
    rho: f64,
}

impl CorrelatedFading {
    /// Correlation coefficient with the base process.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Complex gain after `x` Doppler cycles.
    pub fn gain_at_cycles(&self, x: f64) -> (f64, f64) {
        let (br, bi) = self.base.gain_at_cycles(x);
        let (ir, ii) = self.independent.gain_at_cycles(x);
        let w = (1.0 - self.rho * self.rho).sqrt();
        (self.rho * br + w * ir, self.rho * bi + w * ii)
    }

    /// Fading contribution in dB, floored at −60 dB.
    pub fn db_at_cycles(&self, x: f64) -> f64 {
        let (re, im) = self.gain_at_cycles(x);
        (20.0 * (re * re + im * im).sqrt().log10()).max(-60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::bessel_j0;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let (ma, mb) = (mean(a), mean(b));
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|x| (x - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn unit_mean_power() {
        let mut rng = StdRng::seed_from_u64(21);
        for kind in [FadingKind::Rayleigh, FadingKind::Rician { k: 6.0 }] {
            let p = FadingProcess::new(kind, &mut rng);
            let pow: f64 = (0..20_000)
                .map(|i| {
                    let (re, im) = p.gain_at_cycles(i as f64 * 0.37);
                    re * re + im * im
                })
                .sum::<f64>()
                / 20_000.0;
            assert!((pow - 1.0).abs() < 0.1, "{kind:?} power {pow}");
        }
    }

    #[test]
    fn autocorrelation_follows_j0() {
        // Average the empirical autocorrelation of the real part over many
        // realizations and compare against J0(2πΔx).
        let mut rng = StdRng::seed_from_u64(22);
        for delta in [0.05, 0.15, 0.3] {
            let mut emp = 0.0;
            let runs = 60;
            for _ in 0..runs {
                let p = FadingProcess::new(FadingKind::Rayleigh, &mut rng);
                let xs: Vec<f64> = (0..600).map(|i| i as f64 * 0.9).collect();
                let a: Vec<f64> = xs.iter().map(|&x| p.gain_at_cycles(x).0).collect();
                let b: Vec<f64> = xs.iter().map(|&x| p.gain_at_cycles(x + delta).0).collect();
                emp += pearson(&a, &b);
            }
            emp /= runs as f64;
            let theory = bessel_j0(std::f64::consts::TAU * delta);
            assert!(
                (emp - theory).abs() < 0.12,
                "Δx {delta}: empirical {emp}, J0 {theory}"
            );
        }
    }

    #[test]
    fn rician_envelope_has_smaller_variance_than_rayleigh() {
        let mut rng = StdRng::seed_from_u64(23);
        let ray = FadingProcess::new(FadingKind::Rayleigh, &mut rng);
        let ric = FadingProcess::new(FadingKind::Rician { k: 6.0 }, &mut rng);
        let env_var = |p: &FadingProcess| {
            let e: Vec<f64> = (0..8000)
                .map(|i| p.envelope_at_cycles(i as f64 * 0.41))
                .collect();
            let m = mean(&e);
            e.iter().map(|x| (x - m).powi(2)).sum::<f64>() / e.len() as f64
        };
        assert!(env_var(&ric) < env_var(&ray) * 0.6);
    }

    #[test]
    fn db_floor_applied() {
        let mut rng = StdRng::seed_from_u64(24);
        let p = FadingProcess::new(FadingKind::Rayleigh, &mut rng);
        for i in 0..50_000 {
            assert!(p.db_at_cycles(i as f64 * 0.13) >= -60.0);
        }
    }

    #[test]
    fn correlated_process_obeys_rho() {
        let mut rng = StdRng::seed_from_u64(25);
        for rho in [0.0, 0.5, 0.95] {
            let mut emp = 0.0;
            let runs = 40;
            for _ in 0..runs {
                let base = FadingProcess::new(FadingKind::Rayleigh, &mut rng);
                let eve = base.correlated_with(rho, &mut rng);
                let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.8).collect();
                let a: Vec<f64> = xs.iter().map(|&x| base.gain_at_cycles(x).0).collect();
                let b: Vec<f64> = xs.iter().map(|&x| eve.gain_at_cycles(x).0).collect();
                emp += pearson(&a, &b);
            }
            emp /= runs as f64;
            assert!((emp - rho).abs() < 0.12, "rho {rho}: empirical {emp}");
        }
    }

    #[test]
    fn environment_mapping() {
        assert_eq!(
            FadingKind::for_environment(Environment::Urban),
            FadingKind::Rayleigh
        );
        assert!(matches!(
            FadingKind::for_environment(Environment::Rural),
            FadingKind::Rician { .. }
        ));
    }
}
