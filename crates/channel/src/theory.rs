//! Closed-form channel theory used by the paper's preliminary study
//! (Sec. II-A): Doppler shift, coherence time, and the fading PDFs of
//! Eqs. (1) and (2), plus the Bessel function `J₀` that governs both the
//! temporal autocorrelation of Clarke fading and the spatial decorrelation
//! that protects against eavesdroppers.

/// Speed of light in m/s.
const C: f64 = 2.997_924_58e8;

/// Doppler frequency shift in Hz for a relative speed (m/s) at carrier `f0`:
/// `f_d = |ΔV| / c · f₀`.
///
/// ```
/// // 40 km/h relative speed at 434 MHz → ≈16 Hz.
/// let fd = channel::doppler_shift_hz(40.0 / 3.6, 434.0e6);
/// assert!((fd - 16.08).abs() < 0.1);
/// ```
pub fn doppler_shift_hz(relative_speed_ms: f64, carrier_hz: f64) -> f64 {
    relative_speed_ms.abs() / C * carrier_hz
}

/// Coherence time of a fast-fading channel: `T_c ≈ 0.423 / f_d`.
///
/// Returns `f64::INFINITY` for zero Doppler (static link).
///
/// ```
/// // The paper's example: 40 km/h speed difference at 434 MHz → ≈27 ms.
/// let fd = channel::doppler_shift_hz(40.0 / 3.6, 434.0e6);
/// let tc = channel::coherence_time_fast(fd);
/// assert!((tc - 0.0263).abs() < 0.002);
/// ```
pub fn coherence_time_fast(doppler_hz: f64) -> f64 {
    if doppler_hz <= 0.0 {
        f64::INFINITY
    } else {
        0.423 / doppler_hz
    }
}

/// Coherence time of a slow-fading channel: `T_c ≈ L_c / V` where `L_c` is
/// the coherence length in metres and `V` the vehicle speed in m/s.
///
/// Returns `f64::INFINITY` for a stationary vehicle.
pub fn coherence_time_slow(coherence_length_m: f64, speed_ms: f64) -> f64 {
    if speed_ms <= 0.0 {
        f64::INFINITY
    } else {
        coherence_length_m / speed_ms
    }
}

/// Rayleigh PDF of the channel gain envelope `H` (paper Eq. (1)):
/// `p(H) = H/σ² · exp(−H²/(2σ²))` for `H ≥ 0`, else 0.
pub fn rayleigh_pdf(h: f64, sigma: f64) -> f64 {
    if h < 0.0 {
        0.0
    } else {
        h / (sigma * sigma) * (-h * h / (2.0 * sigma * sigma)).exp()
    }
}

/// Log-normal PDF of the channel gain `H` (paper Eq. (2), with the standard
/// squared-log form): `p(H) = 1/(Hσ√(2π)) · exp(−ln²(H)/(2σ²))` for `H > 0`.
pub fn lognormal_pdf(h: f64, sigma: f64) -> f64 {
    if h <= 0.0 {
        0.0
    } else {
        let ln_h = h.ln();
        1.0 / (h * sigma * (2.0 * std::f64::consts::PI).sqrt())
            * (-(ln_h * ln_h) / (2.0 * sigma * sigma)).exp()
    }
}

/// Coherence bandwidth in Hz for an RMS delay spread `tau_rms` seconds
/// (50%-correlation definition, `B_c ≈ 1/(5·τ_rms)`).
///
/// Returns `f64::INFINITY` for zero delay spread (flat channel — LoRa's
/// 125 kHz signal at sub-µs urban delay spreads is effectively flat, which
/// is why this reproduction models flat fading).
pub fn coherence_bandwidth_hz(tau_rms_s: f64) -> f64 {
    if tau_rms_s <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / (5.0 * tau_rms_s)
    }
}

/// Moment-based Rice-factor estimator from envelope samples (Greenstein et
/// al.): with `μ₂ = E[r²]` and `μ₄ = E[r⁴]`, the LOS power fraction follows
/// from `√(2μ₂² − μ₄)`. Returns `K ≥ 0` (0 = Rayleigh); returns 0 when the
/// moments are inconsistent with a Rician fit (heavier-than-Rayleigh
/// spread).
///
/// Useful for calibrating [`crate::FadingKind::Rician`] from measured
/// envelope traces (e.g. imported via `testbed::read_csv`).
///
/// # Panics
///
/// Panics on an empty sample slice.
pub fn estimate_rice_k(envelope: &[f64]) -> f64 {
    assert!(!envelope.is_empty(), "need at least one envelope sample");
    let n = envelope.len() as f64;
    let m2 = envelope.iter().map(|r| r * r).sum::<f64>() / n;
    let m4 = envelope.iter().map(|r| r.powi(4)).sum::<f64>() / n;
    let inner = 2.0 * m2 * m2 - m4;
    if inner <= 0.0 {
        return 0.0;
    }
    let a2 = inner.sqrt(); // LOS power
    let sigma2 = m2 - a2; // scattered power
    if sigma2 <= 0.0 {
        return f64::INFINITY;
    }
    (a2 / sigma2).max(0.0)
}

/// Bessel function of the first kind, order zero, `J₀(x)`.
///
/// Abramowitz & Stegun 9.4.1/9.4.3 polynomial approximations (|error| <
/// 5·10⁻⁸ over the real line). `J₀` appears twice in this reproduction:
///
/// * **temporal**: Clarke fading autocorrelation `ρ(Δt) = J₀(2π f_d Δt)` —
///   the quantitative version of "probes must fall within coherence time";
/// * **spatial**: eavesdropper channel correlation `ρ(d) = J₀(2π d/λ)` —
///   the quantitative version of the paper's λ/2 security argument.
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 8.0 {
        let y = x * x;
        let p1 = 57_568_490_574.0
            + y * (-13_362_590_354.0
                + y * (651_619_640.7
                    + y * (-11_214_424.18 + y * (77_392.330_17 + y * (-184.905_245_6)))));
        let p2 = 57_568_490_411.0
            + y * (1_029_532_985.0
                + y * (9_494_680.718 + y * (59_272.648_53 + y * (267.853_271_2 + y))));
        p1 / p2
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 0.785_398_163_4;
        let p1 = 1.0
            + y * (-0.109_862_862_7e-2
                + y * (0.273_451_040_7e-4 + y * (-0.207_337_063_9e-5 + y * 0.209_388_721_1e-6)));
        let p2 = -0.156_249_999_5e-1
            + y * (0.143_048_876_5e-3
                + y * (-0.691_114_765_1e-5 + y * (0.762_109_516_1e-6 + y * (-0.934_935_152e-7))));
        (0.636_619_772 / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2)
    }
}

/// Probability that a sign (zero-threshold) quantizer agrees on two
/// jointly Gaussian observations with correlation `rho`:
/// `p = 1 − arccos(ρ)/π` (the orthant probability).
///
/// This is Eve's per-bit agreement with Bob before reconciliation: her
/// observation correlates with the legitimate channel by
/// `ρ(d) = J₀(2πd/λ)` ([`bessel_j0`], clamped to `[0, 1]` by
/// [`ChannelModel::spatial_correlation`](crate::ChannelModel::spatial_correlation)),
/// so at λ/2 separation (`ρ ≈ 0.3`) she agrees on ≈60% of raw bits —
/// ≈26 disagreements per 64-bit block, an order of magnitude past what
/// the reconciler corrects, which is why her post-reconciliation key
/// agreement collapses to coin-flipping. The adversary suite's passive
/// arm measures exactly this curve against live traffic.
pub fn sign_agreement_probability(rho: f64) -> f64 {
    1.0 - rho.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_doppler_and_coherence() {
        // 40 km/h at 434 MHz → fd ≈ 16.1 Hz → Tc ≈ 26–27 ms (paper: "27 ms").
        let fd = doppler_shift_hz(40.0 / 3.6, 434.0e6);
        assert!((fd - 16.08).abs() < 0.1, "fd {fd}");
        let tc = coherence_time_fast(fd);
        assert!(tc > 0.024 && tc < 0.028, "tc {tc}");
    }

    #[test]
    fn static_link_has_infinite_coherence() {
        assert!(coherence_time_fast(0.0).is_infinite());
        assert!(coherence_time_slow(50.0, 0.0).is_infinite());
    }

    #[test]
    fn slow_fading_coherence_scales_inverse_speed() {
        let t30 = coherence_time_slow(50.0, 30.0 / 3.6);
        let t60 = coherence_time_slow(50.0, 60.0 / 3.6);
        assert!((t30 / t60 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_pdf_integrates_to_one() {
        let sigma = 1.3;
        let dx = 1e-3;
        let integral: f64 = (0..20_000)
            .map(|i| rayleigh_pdf(i as f64 * dx, sigma) * dx)
            .sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn rayleigh_pdf_zero_for_negative() {
        assert_eq!(rayleigh_pdf(-1.0, 1.0), 0.0);
    }

    #[test]
    fn rayleigh_mode_at_sigma() {
        let sigma = 2.0;
        let at_mode = rayleigh_pdf(sigma, sigma);
        assert!(at_mode > rayleigh_pdf(sigma * 0.8, sigma));
        assert!(at_mode > rayleigh_pdf(sigma * 1.2, sigma));
    }

    #[test]
    fn lognormal_pdf_integrates_to_one() {
        let sigma = 0.7;
        let dx = 1e-3;
        let integral: f64 = (1..60_000)
            .map(|i| lognormal_pdf(i as f64 * dx, sigma) * dx)
            .sum();
        assert!((integral - 1.0).abs() < 2e-3, "integral {integral}");
    }

    #[test]
    fn lognormal_pdf_zero_for_nonpositive() {
        assert_eq!(lognormal_pdf(0.0, 1.0), 0.0);
        assert_eq!(lognormal_pdf(-3.0, 1.0), 0.0);
    }

    #[test]
    fn coherence_bandwidth_values() {
        assert!(coherence_bandwidth_hz(0.0).is_infinite());
        // 1 µs RMS delay spread → 200 kHz.
        assert!((coherence_bandwidth_hz(1.0e-6) - 200_000.0).abs() < 1.0);
    }

    #[test]
    fn rice_k_estimator_recovers_known_factors() {
        use crate::fading::{FadingKind, FadingProcess};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        for k_true in [0.0, 3.0, 8.0] {
            let kind = if k_true == 0.0 {
                FadingKind::Rayleigh
            } else {
                FadingKind::Rician { k: k_true }
            };
            let p = FadingProcess::new(kind, &mut rng);
            let samples: Vec<f64> = (0..40_000)
                .map(|i| p.envelope_at_cycles(i as f64 * 0.73))
                .collect();
            let k_hat = estimate_rice_k(&samples);
            assert!(
                (k_hat - k_true).abs() < 0.2 + 0.25 * k_true,
                "K true {k_true}, estimated {k_hat}"
            );
        }
    }

    #[test]
    fn bessel_j0_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 1.0),
            (1.0, 0.765_197_686_6),
            (2.404_825_557_7, 0.0), // first zero
            (5.0, -0.177_596_771_3),
            (10.0, -0.245_935_764_5),
        ];
        for (x, expect) in cases {
            let got = bessel_j0(x);
            assert!(
                (got - expect).abs() < 1e-6,
                "J0({x}) = {got}, want {expect}"
            );
        }
    }

    #[test]
    fn bessel_j0_even_function() {
        for x in [0.5, 1.5, 3.7, 9.2] {
            assert!((bessel_j0(x) - bessel_j0(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn sign_agreement_probability_endpoints_and_monotonicity() {
        assert!((sign_agreement_probability(1.0) - 1.0).abs() < 1e-12);
        assert!((sign_agreement_probability(0.0) - 0.5).abs() < 1e-12);
        assert!((sign_agreement_probability(-1.0)).abs() < 1e-12);
        // Out-of-range correlations clamp instead of returning NaN.
        assert!((sign_agreement_probability(1.5) - 1.0).abs() < 1e-12);
        let mut last = 0.0;
        for i in 0..=10 {
            let p = sign_agreement_probability(f64::from(i) / 10.0);
            assert!(p >= last, "must be monotone in rho");
            last = p;
        }
    }

    #[test]
    fn eve_at_half_wavelength_agrees_on_barely_more_than_half() {
        // ρ(λ/2) = J0(π) ≈ −0.304, clamped to 0 by the channel model: Eve's
        // raw agreement is 50%. Even granting her the unclamped |ρ| ≈ 0.3,
        // agreement is ≈0.60 — ~26 errors per 64-bit block, far past the
        // reconciler's correction capacity.
        let rho = bessel_j0(std::f64::consts::PI);
        let p_clamped = sign_agreement_probability(rho.max(0.0));
        assert!((p_clamped - 0.5).abs() < 1e-12, "p {p_clamped}");
        let p_generous = sign_agreement_probability(rho.abs());
        assert!(p_generous < 0.62, "p {p_generous}");
        let expected_block_errors = (1.0 - p_generous) * 64.0;
        assert!(expected_block_errors > 20.0, "{expected_block_errors}");
    }

    #[test]
    fn half_wavelength_decorrelation() {
        // At d = λ/2, 2πd/λ = π, and J0(π) ≈ −0.304: magnitude well below the
        // ~0.3 "decorrelated" threshold used in the literature, supporting
        // the paper's λ/2 security claim.
        let rho = bessel_j0(std::f64::consts::PI);
        assert!(rho.abs() < 0.31, "rho {rho}");
    }
}
