//! Composite channel model: one reciprocal stochastic link plus
//! direction-asymmetric interference and spatially-decorrelated
//! eavesdropper taps.
//!
//! The model composes (paper Sec. II-A's four non-reciprocity sources map as
//! noted):
//!
//! 1. log-distance path loss ([`crate::PathLoss`]) — deterministic,
//! 2. spatially-correlated shadowing ([`crate::Shadowing`]) — identical in
//!    both directions,
//! 3. small-scale fading ([`crate::FadingProcess`]) — identical in both
//!    directions *at the same instant*; probes separated by `ΔT` decorrelate
//!    per `J₀(2π f_d ΔT)` (non-reciprocity source #1: time delay),
//! 4. direction-asymmetric interference (source #4) — an independent
//!    Gauss–Markov process per direction.
//!
//! Sources #2 (hardware imperfection) and #3 (additive receiver noise) live
//! in `lora-phy`'s [`Receiver`](../lora_phy/receiver/struct.Receiver.html)
//! model, which is where they occur physically.

use crate::fading::{CorrelatedFading, FadingKind, FadingProcess};
use crate::pathloss::PathLoss;
use crate::process::GaussMarkovGrid;
use crate::shadowing::Shadowing;
use crate::theory::bessel_j0;
use crate::Environment;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Direction of a transmission over the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Alice transmits, Bob receives.
    AliceToBob,
    /// Bob transmits, Alice receives.
    BobToAlice,
}

/// Static link-budget terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Combined antenna gains (tx + rx) in dB.
    pub antenna_gain_db: f64,
    /// Standard deviation of the per-direction interference process in dB.
    pub interference_sigma_db: f64,
    /// Correlation time of the interference process in seconds.
    pub interference_corr_s: f64,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            tx_power_dbm: 14.0,
            antenna_gain_db: 2.0,
            interference_sigma_db: 0.8,
            interference_corr_s: 2.0,
            carrier_hz: 434.0e6,
        }
    }
}

/// The composite Alice↔Bob channel.
///
/// All stochastic components are frozen at construction, so the model can be
/// queried at arbitrary times/positions and will answer consistently — this
/// is what makes the *channel* reciprocal while the *measurements* (taken at
/// different instants by the two ends) are not.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelModel {
    env: Environment,
    budget: LinkBudget,
    pathloss: PathLoss,
    shadowing: Shadowing,
    fading: FadingProcess,
    doppler_hz: f64,
    interference_ab: GaussMarkovGrid,
    interference_ba: GaussMarkovGrid,
}

impl ChannelModel {
    /// Create a channel for an environment with a fresh stochastic
    /// realization.
    pub fn new<R: Rng + ?Sized>(env: Environment, budget: LinkBudget, rng: &mut R) -> Self {
        let step = budget.interference_corr_s / 10.0;
        ChannelModel {
            env,
            budget,
            pathloss: PathLoss::for_environment(env),
            shadowing: Shadowing::for_environment(env, rng),
            fading: FadingProcess::new(FadingKind::for_environment(env), rng),
            doppler_hz: 1.0,
            interference_ab: GaussMarkovGrid::new(
                budget.interference_sigma_db,
                budget.interference_corr_s,
                step,
                rng.random(),
            ),
            interference_ba: GaussMarkovGrid::new(
                budget.interference_sigma_db,
                budget.interference_corr_s,
                step,
                rng.random(),
            ),
        }
    }

    /// Set the maximum Doppler frequency (Hz) from the relative speed of the
    /// endpoints. Determines how fast the small-scale fading decorrelates.
    pub fn with_doppler_hz(mut self, doppler_hz: f64) -> Self {
        self.doppler_hz = doppler_hz.max(0.0);
        self
    }

    /// Environment this channel models.
    pub fn environment(&self) -> Environment {
        self.env
    }

    /// Link-budget parameters.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// Current maximum Doppler frequency in Hz.
    pub fn doppler_hz(&self) -> f64 {
        self.doppler_hz
    }

    /// Coherence time `0.423/f_d` of the current configuration.
    pub fn coherence_time(&self) -> f64 {
        crate::theory::coherence_time_fast(self.doppler_hz)
    }

    /// Received power in dBm with the small-scale fading evaluated at an
    /// explicit Doppler-cycle coordinate.
    ///
    /// When the relative speed (and hence the Doppler frequency) varies over
    /// a drive, the fading process must be advanced by the *accumulated*
    /// Doppler phase `x(t) = ∫ f_d(t′) dt′` rather than `f_d · t`; the
    /// testbed tracks that integral and passes it here.
    pub fn gain_dbm_cycles(
        &mut self,
        t: f64,
        cycles: f64,
        distance_m: f64,
        route_pos_m: f64,
        dir: Direction,
    ) -> f64 {
        let fading_db = self.fading.db_at_cycles(cycles);
        let shadow_db = self.shadowing.at(route_pos_m);
        let interference = match dir {
            Direction::AliceToBob => self.interference_ab.at(t),
            Direction::BobToAlice => self.interference_ba.at(t),
        };
        self.budget.tx_power_dbm + self.budget.antenna_gain_db - self.pathloss.loss_db(distance_m)
            + shadow_db
            + fading_db
            + interference
    }

    /// Eavesdropper received power with an explicit Doppler-cycle
    /// coordinate (see [`ChannelModel::gain_dbm_cycles`]).
    pub fn eve_gain_dbm_cycles(
        &mut self,
        eve: &mut EveChannel,
        cycles: f64,
        distance_m: f64,
        route_pos_m: f64,
    ) -> f64 {
        let fading_db = eve.fading.db_at_cycles(cycles);
        let shadow_db = self.shadowing.at(route_pos_m) + eve.shadow_residual.at(route_pos_m);
        self.budget.tx_power_dbm + self.budget.antenna_gain_db - self.pathloss.loss_db(distance_m)
            + shadow_db
            + fading_db
    }

    /// Received power in dBm at time `t`, link distance `distance_m`, with
    /// the mobile endpoint at route position `route_pos_m` (controls the
    /// shadowing sample). Reciprocal up to the per-direction interference.
    pub fn gain_dbm_at(
        &mut self,
        t: f64,
        distance_m: f64,
        route_pos_m: f64,
        dir: Direction,
    ) -> f64 {
        let fading_db = self.fading.db_at_cycles(self.doppler_hz * t);
        let shadow_db = self.shadowing.at(route_pos_m);
        let interference = match dir {
            Direction::AliceToBob => self.interference_ab.at(t),
            Direction::BobToAlice => self.interference_ba.at(t),
        };
        self.budget.tx_power_dbm + self.budget.antenna_gain_db - self.pathloss.loss_db(distance_m)
            + shadow_db
            + fading_db
            + interference
    }

    /// Convenience wrapper using `distance_m` as the route position (valid
    /// when the mobile drives straight away from the other endpoint).
    pub fn gain_dbm(&mut self, t: f64, distance_m: f64, dir: Direction) -> f64 {
        self.gain_dbm_at(t, distance_m, distance_m, dir)
    }

    /// Spatial correlation of the small-scale fading at a separation of
    /// `separation_m` metres: `J₀(2πd/λ)`, clamped to `[0, 1]`.
    pub fn spatial_correlation(&self, separation_m: f64) -> f64 {
        let lambda = 2.997_924_58e8 / self.budget.carrier_hz;
        bessel_j0(std::f64::consts::TAU * separation_m / lambda).clamp(0.0, 1.0)
    }

    /// Create an eavesdropper tap `separation_m` metres from the nearest
    /// legitimate endpoint. The eavesdropper shares the environment's
    /// large-scale behaviour (path loss and, approximately, shadowing) but
    /// her small-scale fading correlates with the legitimate link only by
    /// `J₀(2πd/λ)` — negligible beyond λ/2 (the paper's security argument).
    pub fn eavesdropper<R: Rng + ?Sized>(&self, separation_m: f64, rng: &mut R) -> EveChannel {
        let rho = self.spatial_correlation(separation_m);
        EveChannel {
            separation_m,
            fading: self.fading.correlated_with(rho, rng),
            // Residual shadowing difference between Eve's position and the
            // followed vehicle: small because she is close, grows with
            // separation relative to the decorrelation distance.
            shadow_residual: GaussMarkovGrid::new(
                self.shadowing.sigma_db
                    * (1.0 - self.shadowing.correlation(separation_m).powi(2)).sqrt(),
                self.shadowing.decorrelation_m,
                (self.shadowing.decorrelation_m / 10.0).max(0.5),
                rng.random(),
            ),
        }
    }

    /// Received power in dBm observed by an eavesdropper for a transmission
    /// at time `t`, with Eve `distance_m` from the transmitter and the
    /// followed mobile at `route_pos_m`.
    pub fn eve_gain_dbm(
        &mut self,
        eve: &mut EveChannel,
        t: f64,
        distance_m: f64,
        route_pos_m: f64,
    ) -> f64 {
        let fading_db = eve.fading.db_at_cycles(self.doppler_hz * t);
        let shadow_db = self.shadowing.at(route_pos_m) + eve.shadow_residual.at(route_pos_m);
        self.budget.tx_power_dbm + self.budget.antenna_gain_db - self.pathloss.loss_db(distance_m)
            + shadow_db
            + fading_db
    }
}

/// An eavesdropper's channel tap. Created by [`ChannelModel::eavesdropper`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EveChannel {
    separation_m: f64,
    fading: CorrelatedFading,
    shadow_residual: GaussMarkovGrid,
}

impl EveChannel {
    /// Eve's distance from the nearest legitimate endpoint in metres.
    pub fn separation_m(&self) -> f64 {
        self.separation_m
    }

    /// Small-scale correlation with the legitimate link.
    pub fn fading_rho(&self) -> f64 {
        self.fading.rho()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(env: Environment, seed: u64) -> ChannelModel {
        let mut rng = StdRng::seed_from_u64(seed);
        ChannelModel::new(env, LinkBudget::default(), &mut rng).with_doppler_hz(16.0)
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|x| (x - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn reciprocal_at_same_instant() {
        let mut ch = model(Environment::Urban, 31);
        for i in 0..100 {
            let t = i as f64 * 0.5;
            let ab = ch.gain_dbm(t, 800.0, Direction::AliceToBob);
            let ba = ch.gain_dbm(t, 800.0, Direction::BobToAlice);
            // Only interference differs: bounded by a few sigma.
            assert!(
                (ab - ba).abs() < 6.0 * ch.budget().interference_sigma_db,
                "t {t}: ab {ab} ba {ba}"
            );
        }
    }

    #[test]
    fn probe_delay_decorrelates_measurements() {
        // Samples ΔT apart correlate strongly when ΔT << Tc and weakly when
        // ΔT >> Tc — the core of the paper's problem statement.
        let mut ch = model(Environment::Urban, 32);
        let tc = ch.coherence_time(); // 0.423/16 ≈ 26 ms
        let collect = |ch: &mut ChannelModel, dt: f64| {
            let a: Vec<f64> = (0..800)
                .map(|i| ch.gain_dbm(i as f64 * 0.35, 700.0, Direction::AliceToBob))
                .collect();
            let b: Vec<f64> = (0..800)
                .map(|i| ch.gain_dbm(i as f64 * 0.35 + dt, 700.0, Direction::BobToAlice))
                .collect();
            pearson(&a, &b)
        };
        let close = collect(&mut ch, tc * 0.05);
        let far = collect(&mut ch, tc * 40.0);
        assert!(close > 0.8, "close corr {close}");
        assert!(far < 0.6, "far corr {far}");
        assert!(close > far + 0.2);
    }

    #[test]
    fn mean_power_tracks_path_loss() {
        let mut ch = model(Environment::Rural, 33);
        let mean_at = |ch: &mut ChannelModel, d: f64| {
            (0..2000)
                .map(|i| ch.gain_dbm_at(i as f64 * 0.2, d, i as f64 * 3.0, Direction::AliceToBob))
                .sum::<f64>()
                / 2000.0
        };
        let near = mean_at(&mut ch, 100.0);
        let far = mean_at(&mut ch, 2000.0);
        assert!(near > far + 15.0, "near {near} far {far}");
    }

    #[test]
    fn spatial_correlation_decays_past_half_wavelength() {
        let ch = model(Environment::Urban, 34);
        let lambda = 0.6912;
        assert!(ch.spatial_correlation(0.0) > 0.999);
        assert!(ch.spatial_correlation(lambda / 8.0) > 0.5);
        assert!(ch.spatial_correlation(lambda / 2.0) < 0.31);
        assert!(ch.spatial_correlation(3.0) < 0.31);
    }

    #[test]
    fn eavesdropper_far_away_sees_uncorrelated_fading() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut ch = model(Environment::Urban, 36);
        let mut eve = ch.eavesdropper(5.0, &mut rng); // 5 m >> λ/2
        assert!(eve.fading_rho() < 0.31);
        let legit: Vec<f64> = (0..1000)
            .map(|i| ch.gain_dbm_at(i as f64 * 0.3, 700.0, i as f64 * 4.0, Direction::AliceToBob))
            .collect();
        let evev: Vec<f64> = (0..1000)
            .map(|i| ch.eve_gain_dbm(&mut eve, i as f64 * 0.3, 700.0, i as f64 * 4.0))
            .collect();
        // Large-scale trend shared, so raw correlation is nonzero; but after
        // removing the shared shadowing trend (first difference), the
        // small-scale residue should be near-uncorrelated.
        let diff = |v: &[f64]| -> Vec<f64> { v.windows(2).map(|w| w[1] - w[0]).collect() };
        let r = pearson(&diff(&legit), &diff(&evev));
        assert!(r.abs() < 0.3, "small-scale corr {r}");
    }

    #[test]
    fn eavesdropper_shares_large_scale_trend() {
        // Fig. 16: Eve's *overall pattern* matches Alice/Bob.
        let mut rng = StdRng::seed_from_u64(37);
        let mut ch = model(Environment::Rural, 38);
        let mut eve = ch.eavesdropper(5.0, &mut rng);
        // Drive away: 3 m per step; distances grow, both should trend down.
        let legit: Vec<f64> = (0..600)
            .map(|i| {
                let d = 100.0 + i as f64 * 3.0;
                ch.gain_dbm_at(i as f64 * 0.3, d, i as f64 * 3.0, Direction::AliceToBob)
            })
            .collect();
        let evev: Vec<f64> = (0..600)
            .map(|i| {
                let d = 100.0 + i as f64 * 3.0;
                ch.eve_gain_dbm(&mut eve, i as f64 * 0.3, d, i as f64 * 3.0)
            })
            .collect();
        let r = pearson(&legit, &evev);
        assert!(r > 0.5, "large-scale corr {r}");
    }

    #[test]
    fn doppler_zero_freezes_fading() {
        let mut ch = model(Environment::Urban, 39).with_doppler_hz(0.0);
        let a = ch.gain_dbm_at(0.0, 500.0, 50.0, Direction::AliceToBob);
        let b = ch.gain_dbm_at(1000.0, 500.0, 50.0, Direction::AliceToBob);
        // Same fading/shadowing; only interference differs.
        assert!((a - b).abs() < 6.0 * ch.budget().interference_sigma_db);
    }
}
