//! Log-distance path-loss model.
//!
//! `PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀)` with the free-space loss at the
//! reference distance `d₀`. The exponent `n` captures the environment
//! (≈2 in open rural LOS, 2.7–3.5 in urban NLOS).

use crate::Environment;
use serde::{Deserialize, Serialize};

/// Log-distance path-loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLoss {
    /// Path-loss exponent `n`.
    pub exponent: f64,
    /// Reference distance `d₀` in metres.
    pub reference_m: f64,
    /// Carrier frequency in Hz (for the free-space term at `d₀`).
    pub carrier_hz: f64,
}

impl PathLoss {
    /// Model for an environment at the paper's 434 MHz carrier.
    pub fn for_environment(env: Environment) -> Self {
        let exponent = match env {
            Environment::Urban => 3.2,
            Environment::Rural => 2.1,
        };
        PathLoss {
            exponent,
            reference_m: 10.0,
            carrier_hz: 434.0e6,
        }
    }

    /// Free-space path loss at distance `d` metres (Friis, isotropic):
    /// `20·log₁₀(4πd f / c)` dB.
    pub fn free_space_db(&self, d_m: f64) -> f64 {
        let lambda = lora_wavelength(self.carrier_hz);
        20.0 * (4.0 * std::f64::consts::PI * d_m / lambda).log10()
    }

    /// Path loss in dB at distance `d_m` metres.
    ///
    /// Distances below the reference distance are clamped to it (the model is
    /// not valid in the near field).
    pub fn loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(self.reference_m);
        self.free_space_db(self.reference_m) + 10.0 * self.exponent * (d / self.reference_m).log10()
    }
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::for_environment(Environment::Urban)
    }
}

fn lora_wavelength(carrier_hz: f64) -> f64 {
    2.997_924_58e8 / carrier_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonically_increasing_with_distance() {
        let pl = PathLoss::for_environment(Environment::Urban);
        let mut last = 0.0;
        for d in [10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0] {
            let l = pl.loss_db(d);
            assert!(l > last, "loss {l} at {d} m not > {last}");
            last = l;
        }
    }

    #[test]
    fn urban_loses_more_than_rural() {
        let urban = PathLoss::for_environment(Environment::Urban);
        let rural = PathLoss::for_environment(Environment::Rural);
        assert!(urban.loss_db(1000.0) > rural.loss_db(1000.0) + 10.0);
    }

    #[test]
    fn near_field_clamped() {
        let pl = PathLoss::default();
        assert_eq!(pl.loss_db(0.0), pl.loss_db(pl.reference_m));
        assert_eq!(pl.loss_db(5.0), pl.loss_db(10.0));
    }

    #[test]
    fn free_space_matches_friis_at_434mhz() {
        // FSPL(1 km, 434 MHz) = 20log10(d) + 20log10(f) - 147.55 ≈ 85.2 dB.
        let pl = PathLoss {
            exponent: 2.0,
            reference_m: 1.0,
            carrier_hz: 434.0e6,
        };
        let fspl = pl.free_space_db(1000.0);
        assert!((fspl - 85.19).abs() < 0.1, "fspl {fspl}");
    }

    #[test]
    fn exponent_two_equals_free_space_slope() {
        let pl = PathLoss {
            exponent: 2.0,
            reference_m: 10.0,
            carrier_hz: 434.0e6,
        };
        // Doubling distance adds ~6.02 dB for n = 2.
        let delta = pl.loss_db(2000.0) - pl.loss_db(1000.0);
        assert!((delta - 6.02).abs() < 0.05, "delta {delta}");
    }
}
