//! Spatially-correlated log-normal shadowing (Gudmundson model).
//!
//! Shadow fading is caused by large obstacles (buildings, terrain) and is
//! therefore correlated over *space*: two measurements taken `Δd` metres
//! apart have correlation `exp(−Δd / d_corr)`. We realize the process as a
//! first-order Gauss–Markov chain over travelled distance
//! (see [`crate::process::GaussMarkovGrid`]).
//!
//! Shadowing is a **large-scale** effect: an eavesdropper retracing Alice's
//! route experiences nearly the same shadowing (same obstacles), which is why
//! the paper's imitating attacker reproduces the overall RSSI trend but not
//! the small-scale variations (Fig. 16).

use crate::process::GaussMarkovGrid;
use crate::Environment;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A spatially-correlated log-normal shadowing process, indexed by travelled
/// distance in metres.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Shadowing {
    /// Standard deviation σ of the shadowing in dB.
    pub sigma_db: f64,
    /// Decorrelation distance in metres.
    pub decorrelation_m: f64,
    grid: GaussMarkovGrid,
}

impl Shadowing {
    /// Parameters for an environment: urban shadowing is strong and
    /// short-range; rural shadowing is gentle and long-range.
    pub fn for_environment<R: Rng + ?Sized>(env: Environment, rng: &mut R) -> Self {
        let (sigma_db, decorrelation_m) = match env {
            Environment::Urban => (2.5, 12.0),
            Environment::Rural => (2.0, 60.0),
        };
        Shadowing::new(sigma_db, decorrelation_m, rng)
    }

    /// Create a process with explicit parameters.
    pub fn new<R: Rng + ?Sized>(sigma_db: f64, decorrelation_m: f64, rng: &mut R) -> Self {
        Shadowing {
            sigma_db,
            decorrelation_m,
            grid: GaussMarkovGrid::new(
                sigma_db,
                decorrelation_m,
                (decorrelation_m / 10.0).max(0.5),
                rng.random(),
            ),
        }
    }

    /// Correlation between two points `delta_m` metres apart
    /// (Gudmundson: `exp(−Δd/d_corr)`).
    pub fn correlation(&self, delta_m: f64) -> f64 {
        self.grid.correlation(delta_m)
    }

    /// Shadowing value in dB at travelled distance `d_m ≥ 0` (clamped).
    /// Deterministic per instance: the same distance always returns the same
    /// value, and clones replay identically.
    pub fn at(&mut self, d_m: f64) -> f64 {
        self.grid.at(d_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_replay() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = Shadowing::new(6.0, 25.0, &mut rng);
        let a = s.at(137.2);
        let b = s.at(137.2);
        assert_eq!(a, b);
        let mut clone = s.clone();
        assert_eq!(clone.at(999.0), s.at(999.0));
    }

    #[test]
    fn marginal_std_matches_sigma() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = Shadowing::new(6.0, 25.0, &mut rng);
        // Sample far apart (≫ d_corr) for near-independent draws.
        let samples: Vec<f64> = (0..4000).map(|i| s.at(i as f64 * 300.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn nearby_points_are_correlated_far_points_are_not() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut s = Shadowing::new(6.0, 25.0, &mut rng);
        let pearson = |pairs: &[(f64, f64)]| {
            let n = pairs.len() as f64;
            let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
            let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
            let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
            let vx = pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>();
            let vy = pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let near: Vec<(f64, f64)> = (0..2000)
            .map(|i| {
                let d = i as f64 * 200.0;
                (s.at(d), s.at(d + 2.0))
            })
            .collect();
        let far: Vec<(f64, f64)> = (0..2000)
            .map(|i| {
                let d = i as f64 * 200.0;
                (s.at(d), s.at(d + 150.0))
            })
            .collect();
        assert!(pearson(&near) > 0.85, "near corr {}", pearson(&near));
        assert!(pearson(&far) < 0.3, "far corr {}", pearson(&far));
    }

    #[test]
    fn correlation_formula() {
        let mut rng = StdRng::seed_from_u64(14);
        let s = Shadowing::new(6.0, 25.0, &mut rng);
        assert!((s.correlation(0.0) - 1.0).abs() < 1e-12);
        assert!((s.correlation(25.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(s.correlation(50.0), s.correlation(-50.0));
    }

    #[test]
    fn environments_have_expected_scales() {
        let mut rng = StdRng::seed_from_u64(15);
        let urban = Shadowing::for_environment(Environment::Urban, &mut rng);
        let rural = Shadowing::for_environment(Environment::Rural, &mut rng);
        assert!(urban.sigma_db > rural.sigma_db);
        assert!(urban.decorrelation_m < rural.decorrelation_m);
    }
}
