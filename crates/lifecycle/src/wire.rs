//! Wire formats for the lifecycle plane.
//!
//! Lifecycle frames ride the same length-prefixed transport as the core
//! exchange, after the key-confirmation handoff. Tags start at 16 —
//! disjoint from the core exchange's 1..=9 — so a receiver can classify a
//! frame by trying this codec first and falling back to
//! [`vehicle_key::Message::decode`] on [`LifecycleError::UnknownTag`]
//! (the handoff window still carries duplicate `Confirm` frames).
//! Decoding ignores trailing bytes: the frame-extension interop window
//! (e.g. the observability trace context) applies here too.

use crate::error::LifecycleError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// How a scheduled rekey refreshes the session root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyMode {
    /// Hash-ratchet refresh: the next root is derived from the current
    /// one. Cheap, but cannot recover entropy lost to reconciliation
    /// leakage — it only limits how much traffic one root authenticates.
    Ratchet,
    /// Full re-probe: fresh nonces from both peers feed a new root,
    /// modelling a fresh channel-probing round. Resets the leakage debt.
    Reprobe,
}

impl RekeyMode {
    fn to_u8(self) -> u8 {
        match self {
            RekeyMode::Ratchet => 0,
            RekeyMode::Reprobe => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, LifecycleError> {
        match v {
            0 => Ok(RekeyMode::Ratchet),
            1 => Ok(RekeyMode::Reprobe),
            _ => Err(LifecycleError::Malformed("unknown rekey mode")),
        }
    }
}

/// Why a rekey was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyTrigger {
    /// The per-epoch entropy spend budget ran out.
    Budget,
    /// Reconciliation leakage left the root below the entropy floor.
    Leakage,
    /// Operator- or test-requested rotation.
    Manual,
}

impl RekeyTrigger {
    fn to_u8(self) -> u8 {
        match self {
            RekeyTrigger::Budget => 0,
            RekeyTrigger::Leakage => 1,
            RekeyTrigger::Manual => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, LifecycleError> {
        match v {
            0 => Ok(RekeyTrigger::Budget),
            1 => Ok(RekeyTrigger::Leakage),
            2 => Ok(RekeyTrigger::Manual),
            _ => Err(LifecycleError::Malformed("unknown rekey trigger")),
        }
    }
}

/// Lifecycle frames exchanged after the key-confirmation handoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleMessage {
    /// An authenticated application frame on the session channel.
    AppData {
        /// Session identifier.
        session_id: u32,
        /// Channel epoch the frame was sealed under.
        epoch: u32,
        /// Per-direction, per-epoch sequence number (also the CTR nonce).
        seq: u64,
        /// AES-128-CTR ciphertext.
        ciphertext: Vec<u8>,
        /// `HMAC(k_mac, "VK-APP" ‖ session_id ‖ epoch ‖ seq ‖ ciphertext)`.
        mac: [u8; 32],
    },
    /// Receiver's acknowledgement of an application frame.
    AppAck {
        /// Session identifier.
        session_id: u32,
        /// Epoch of the acknowledged frame.
        epoch: u32,
        /// Sequence number of the acknowledged frame.
        seq: u64,
        /// Control MAC under the sender's direction control key.
        mac: [u8; 32],
    },
    /// Initiator schedules a rotation to `epoch`.
    RekeyRequest {
        /// Session identifier.
        session_id: u32,
        /// The epoch being proposed (current + 1).
        epoch: u32,
        /// How the next root is derived.
        mode: RekeyMode,
        /// Why the rotation was scheduled.
        trigger: RekeyTrigger,
        /// Initiator's fresh nonce (feeds the re-probe derivation).
        fresh: u64,
        /// Control MAC under the sender's direction control key; covers
        /// mode, trigger, and the fresh nonce, so none can be flipped or
        /// injected in flight.
        mac: [u8; 32],
    },
    /// Responder proves it derived the same candidate root.
    RekeyConfirm {
        /// Session identifier.
        session_id: u32,
        /// Echoed proposed epoch.
        epoch: u32,
        /// Responder's fresh nonce (feeds the re-probe derivation).
        fresh: u64,
        /// `HMAC(candidate_root, "VK-REKEY-OK" ‖ session_id ‖ epoch)`.
        check: [u8; 32],
    },
    /// Initiator's final proof; both sides switch to the new root.
    RekeyAck {
        /// Session identifier.
        session_id: u32,
        /// Echoed installed epoch.
        epoch: u32,
        /// `HMAC(candidate_root, "VK-REKEY-ACK" ‖ session_id ‖ epoch)`.
        check: [u8; 32],
    },
    /// A [`vehicle_key::group::WrappedGroupKey`] on the wire: the
    /// coordinator's group key for `group_epoch`, wrapped for one member.
    GroupKey {
        /// Session identifier.
        session_id: u32,
        /// Group epoch this wrap distributes.
        group_epoch: u32,
        /// The member the wrap is addressed to.
        member_id: u32,
        /// CTR nonce from the coordinator's monotonic allocator.
        nonce: u64,
        /// Encrypted group key (16 bytes).
        ciphertext: Vec<u8>,
        /// Wrap MAC under the member's pairwise key.
        mac: [u8; 32],
    },
    /// Member confirms it unwrapped the group key for an epoch.
    GroupKeyAck {
        /// Session identifier.
        session_id: u32,
        /// Acknowledged group epoch.
        group_epoch: u32,
        /// The acknowledging member.
        member_id: u32,
        /// `HMAC(group_material, "VK-GROUP-ACK" ‖ group_epoch ‖
        /// member_id)`: proves the member actually installed the epoch's
        /// key, so a forged ack cannot mark a member agreed.
        mac: [u8; 32],
    },
    /// Member announces departure (graceful churn).
    Leave {
        /// Session identifier.
        session_id: u32,
        /// Control MAC under the sender's direction control key.
        mac: [u8; 32],
    },
    /// Coordinator confirms the departure; the member may disconnect.
    LeaveAck {
        /// Session identifier.
        session_id: u32,
        /// Control MAC under the sender's direction control key.
        mac: [u8; 32],
    },
}

impl LifecycleMessage {
    // vk-lint: allow(leakage-accounting, "pure codec: no Cascade parity crosses this layer; the leakage debit is consumed by the RekeyLedger in rekey.rs")
    const TAG_APP_DATA: u8 = 16;
    const TAG_APP_ACK: u8 = 17;
    const TAG_REKEY_REQUEST: u8 = 18;
    const TAG_REKEY_CONFIRM: u8 = 19;
    const TAG_REKEY_ACK: u8 = 20;
    const TAG_GROUP_KEY: u8 = 21;
    const TAG_GROUP_KEY_ACK: u8 = 22;
    const TAG_LEAVE: u8 = 23;
    const TAG_LEAVE_ACK: u8 = 24;

    /// Cap on one application frame's ciphertext, so a hostile length
    /// field cannot balloon allocations.
    pub const MAX_APP_CIPHERTEXT: usize = 4096;
    /// Cap on a wrapped group key's ciphertext (wraps are 16 bytes; the
    /// slack tolerates future wrap formats without unbounded growth).
    pub const MAX_GROUP_CIPHERTEXT: usize = 64;

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            LifecycleMessage::AppData {
                session_id,
                epoch,
                seq,
                ciphertext,
                mac,
            } => {
                b.put_u8(Self::TAG_APP_DATA);
                b.put_u32(*session_id);
                b.put_u32(*epoch);
                b.put_u64(*seq);
                b.put_u16(ciphertext.len() as u16);
                b.put_slice(ciphertext);
                b.put_slice(mac);
            }
            LifecycleMessage::AppAck { mac, .. }
            | LifecycleMessage::RekeyRequest { mac, .. }
            | LifecycleMessage::Leave { mac, .. }
            | LifecycleMessage::LeaveAck { mac, .. } => {
                b.put_slice(&self.control_signable().expect("control frame"));
                b.put_slice(mac);
            }
            LifecycleMessage::RekeyConfirm {
                session_id,
                epoch,
                fresh,
                check,
            } => {
                b.put_u8(Self::TAG_REKEY_CONFIRM);
                b.put_u32(*session_id);
                b.put_u32(*epoch);
                b.put_u64(*fresh);
                b.put_slice(check);
            }
            LifecycleMessage::RekeyAck {
                session_id,
                epoch,
                check,
            } => {
                b.put_u8(Self::TAG_REKEY_ACK);
                b.put_u32(*session_id);
                b.put_u32(*epoch);
                b.put_slice(check);
            }
            LifecycleMessage::GroupKey {
                session_id,
                group_epoch,
                member_id,
                nonce,
                ciphertext,
                mac,
            } => {
                b.put_u8(Self::TAG_GROUP_KEY);
                b.put_u32(*session_id);
                b.put_u32(*group_epoch);
                b.put_u32(*member_id);
                b.put_u64(*nonce);
                b.put_u16(ciphertext.len() as u16);
                b.put_slice(ciphertext);
                b.put_slice(mac);
            }
            LifecycleMessage::GroupKeyAck {
                session_id,
                group_epoch,
                member_id,
                mac,
            } => {
                b.put_u8(Self::TAG_GROUP_KEY_ACK);
                b.put_u32(*session_id);
                b.put_u32(*group_epoch);
                b.put_u32(*member_id);
                b.put_slice(mac);
            }
        }
        b.freeze()
    }

    /// The authenticated portion of a control frame — everything the
    /// frame carries except its trailing control MAC. `None` for frames
    /// whose authentication lives elsewhere (`AppData` and the rekey
    /// confirm/ack carry their own keyed tags; `GroupKey`/`GroupKeyAck`
    /// are keyed on the wrap and the group material respectively).
    #[must_use]
    pub fn control_signable(&self) -> Option<Vec<u8>> {
        let mut b = BytesMut::new();
        match self {
            LifecycleMessage::AppAck {
                session_id,
                epoch,
                seq,
                ..
            } => {
                b.put_u8(Self::TAG_APP_ACK);
                b.put_u32(*session_id);
                b.put_u32(*epoch);
                b.put_u64(*seq);
            }
            LifecycleMessage::RekeyRequest {
                session_id,
                epoch,
                mode,
                trigger,
                fresh,
                ..
            } => {
                b.put_u8(Self::TAG_REKEY_REQUEST);
                b.put_u32(*session_id);
                b.put_u32(*epoch);
                b.put_u8(mode.to_u8());
                b.put_u8(trigger.to_u8());
                b.put_u64(*fresh);
            }
            LifecycleMessage::Leave { session_id, .. } => {
                b.put_u8(Self::TAG_LEAVE);
                b.put_u32(*session_id);
            }
            LifecycleMessage::LeaveAck { session_id, .. } => {
                b.put_u8(Self::TAG_LEAVE_ACK);
                b.put_u32(*session_id);
            }
            _ => return None,
        }
        Some(b.freeze().to_vec())
    }

    /// Parse from wire bytes. Trailing bytes are ignored (the frame
    /// extension window).
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownTag`] for tags outside the lifecycle
    /// range (the caller may fall back to the core codec) and
    /// [`LifecycleError::Malformed`] for truncated or oversized frames.
    pub fn decode(buf: &[u8]) -> Result<LifecycleMessage, LifecycleError> {
        let mut cursor = buf;
        Self::decode_cursor(&mut cursor)
    }

    fn decode_cursor(buf: &mut &[u8]) -> Result<LifecycleMessage, LifecycleError> {
        if buf.is_empty() {
            return Err(LifecycleError::Malformed("empty buffer"));
        }
        let tag = buf.get_u8();
        match tag {
            Self::TAG_APP_DATA => {
                if buf.remaining() < 18 {
                    return Err(LifecycleError::Malformed("truncated app frame header"));
                }
                let session_id = buf.get_u32();
                let epoch = buf.get_u32();
                let seq = buf.get_u64();
                let len = buf.get_u16() as usize;
                if len > Self::MAX_APP_CIPHERTEXT {
                    return Err(LifecycleError::Malformed("oversized app ciphertext"));
                }
                if buf.remaining() < len + 32 {
                    return Err(LifecycleError::Malformed("truncated app frame body"));
                }
                let mut ciphertext = vec![0u8; len];
                buf.copy_to_slice(&mut ciphertext);
                let mut mac = [0u8; 32];
                buf.copy_to_slice(&mut mac);
                Ok(LifecycleMessage::AppData {
                    session_id,
                    epoch,
                    seq,
                    ciphertext,
                    mac,
                })
            }
            Self::TAG_APP_ACK => {
                if buf.remaining() < 48 {
                    return Err(LifecycleError::Malformed("truncated app ack"));
                }
                let session_id = buf.get_u32();
                let epoch = buf.get_u32();
                let seq = buf.get_u64();
                let mut mac = [0u8; 32];
                buf.copy_to_slice(&mut mac);
                Ok(LifecycleMessage::AppAck {
                    session_id,
                    epoch,
                    seq,
                    mac,
                })
            }
            Self::TAG_REKEY_REQUEST => {
                if buf.remaining() < 50 {
                    return Err(LifecycleError::Malformed("truncated rekey request"));
                }
                let session_id = buf.get_u32();
                let epoch = buf.get_u32();
                let mode = RekeyMode::from_u8(buf.get_u8())?;
                let trigger = RekeyTrigger::from_u8(buf.get_u8())?;
                let fresh = buf.get_u64();
                let mut mac = [0u8; 32];
                buf.copy_to_slice(&mut mac);
                Ok(LifecycleMessage::RekeyRequest {
                    session_id,
                    epoch,
                    mode,
                    trigger,
                    fresh,
                    mac,
                })
            }
            Self::TAG_REKEY_CONFIRM => {
                if buf.remaining() < 48 {
                    return Err(LifecycleError::Malformed("truncated rekey confirm"));
                }
                let session_id = buf.get_u32();
                let epoch = buf.get_u32();
                let fresh = buf.get_u64();
                let mut check = [0u8; 32];
                buf.copy_to_slice(&mut check);
                Ok(LifecycleMessage::RekeyConfirm {
                    session_id,
                    epoch,
                    fresh,
                    check,
                })
            }
            Self::TAG_REKEY_ACK => {
                if buf.remaining() < 40 {
                    return Err(LifecycleError::Malformed("truncated rekey ack"));
                }
                let session_id = buf.get_u32();
                let epoch = buf.get_u32();
                let mut check = [0u8; 32];
                buf.copy_to_slice(&mut check);
                Ok(LifecycleMessage::RekeyAck {
                    session_id,
                    epoch,
                    check,
                })
            }
            Self::TAG_GROUP_KEY => {
                if buf.remaining() < 22 {
                    return Err(LifecycleError::Malformed("truncated group key header"));
                }
                let session_id = buf.get_u32();
                let group_epoch = buf.get_u32();
                let member_id = buf.get_u32();
                let nonce = buf.get_u64();
                let len = buf.get_u16() as usize;
                if len > Self::MAX_GROUP_CIPHERTEXT {
                    return Err(LifecycleError::Malformed("oversized group ciphertext"));
                }
                if buf.remaining() < len + 32 {
                    return Err(LifecycleError::Malformed("truncated group key body"));
                }
                let mut ciphertext = vec![0u8; len];
                buf.copy_to_slice(&mut ciphertext);
                let mut mac = [0u8; 32];
                buf.copy_to_slice(&mut mac);
                Ok(LifecycleMessage::GroupKey {
                    session_id,
                    group_epoch,
                    member_id,
                    nonce,
                    ciphertext,
                    mac,
                })
            }
            Self::TAG_GROUP_KEY_ACK => {
                if buf.remaining() < 44 {
                    return Err(LifecycleError::Malformed("truncated group key ack"));
                }
                let session_id = buf.get_u32();
                let group_epoch = buf.get_u32();
                let member_id = buf.get_u32();
                let mut mac = [0u8; 32];
                buf.copy_to_slice(&mut mac);
                Ok(LifecycleMessage::GroupKeyAck {
                    session_id,
                    group_epoch,
                    member_id,
                    mac,
                })
            }
            Self::TAG_LEAVE | Self::TAG_LEAVE_ACK => {
                if buf.remaining() < 36 {
                    return Err(LifecycleError::Malformed("truncated leave"));
                }
                let session_id = buf.get_u32();
                let mut mac = [0u8; 32];
                buf.copy_to_slice(&mut mac);
                Ok(if tag == Self::TAG_LEAVE {
                    LifecycleMessage::Leave { session_id, mac }
                } else {
                    LifecycleMessage::LeaveAck { session_id, mac }
                })
            }
            other => Err(LifecycleError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<LifecycleMessage> {
        vec![
            LifecycleMessage::AppData {
                session_id: 7,
                epoch: 3,
                seq: 99,
                ciphertext: vec![1, 2, 3, 4, 5],
                mac: [0xAB; 32],
            },
            LifecycleMessage::AppAck {
                session_id: 7,
                epoch: 3,
                seq: 99,
                mac: [0x21; 32],
            },
            LifecycleMessage::RekeyRequest {
                session_id: 7,
                epoch: 4,
                mode: RekeyMode::Reprobe,
                trigger: RekeyTrigger::Leakage,
                fresh: 0xDEAD_BEEF,
                mac: [0x22; 32],
            },
            LifecycleMessage::RekeyConfirm {
                session_id: 7,
                epoch: 4,
                fresh: 42,
                check: [0x17; 32],
            },
            LifecycleMessage::RekeyAck {
                session_id: 7,
                epoch: 4,
                check: [0x18; 32],
            },
            LifecycleMessage::GroupKey {
                session_id: 7,
                group_epoch: 2,
                member_id: 11,
                nonce: 1000,
                ciphertext: vec![9; 16],
                mac: [0x44; 32],
            },
            LifecycleMessage::GroupKeyAck {
                session_id: 7,
                group_epoch: 2,
                member_id: 11,
                mac: [0x23; 32],
            },
            LifecycleMessage::Leave {
                session_id: 7,
                mac: [0x24; 32],
            },
            LifecycleMessage::LeaveAck {
                session_id: 7,
                mac: [0x25; 32],
            },
        ]
    }

    #[test]
    fn control_signable_excludes_the_mac() {
        for msg in all_messages() {
            let Some(body) = msg.control_signable() else {
                continue;
            };
            // The signable is a strict prefix of the encoding, and the
            // remainder is exactly the 32-byte control MAC.
            let bytes = msg.encode();
            assert_eq!(&bytes[..body.len()], &body[..], "{msg:?}");
            assert_eq!(bytes.len(), body.len() + 32, "{msg:?}");
        }
    }

    #[test]
    fn codec_round_trips() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(LifecycleMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        for msg in all_messages() {
            let mut bytes = msg.encode().to_vec();
            bytes.extend_from_slice(&[0xC7, 1, 2, 3]);
            assert_eq!(LifecycleMessage::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn truncations_are_rejected() {
        for msg in all_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    LifecycleMessage::decode(&bytes[..cut]).is_err(),
                    "truncation to {cut} bytes accepted for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn core_tags_surface_as_unknown() {
        // Tags 1..=9 belong to the core exchange; the lifecycle codec
        // must hand them back so the caller can try the other decoder.
        for tag in 1..=9u8 {
            match LifecycleMessage::decode(&[tag, 0, 0, 0, 0]) {
                Err(LifecycleError::UnknownTag(t)) => assert_eq!(t, tag),
                other => panic!("core tag {tag} decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_lengths_are_rejected() {
        let mut frame = LifecycleMessage::AppData {
            session_id: 1,
            epoch: 1,
            seq: 1,
            ciphertext: vec![0; 8],
            mac: [0; 32],
        }
        .encode()
        .to_vec();
        // Patch the u16 length field (offset 17) past the cap.
        frame[17] = 0xFF;
        frame[18] = 0xFF;
        assert_eq!(
            LifecycleMessage::decode(&frame),
            Err(LifecycleError::Malformed("oversized app ciphertext"))
        );
    }
}
