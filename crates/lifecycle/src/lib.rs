//! Key lifecycle plane: what happens *after* Vehicle-Key establishes a
//! pairwise 128-bit key.
//!
//! The paper stops at key confirmation; a deployed IoV stack has to keep
//! the key alive. This crate turns an established key into a managed one:
//!
//! - [`channel`]: the key-confirmation handoff. A confirmed session key
//!   becomes an authenticated application channel (AES-128-CTR +
//!   HMAC-SHA256 from `vk-crypto`) with explicit per-direction nonce and
//!   sequence discipline, mirroring the registration → login →
//!   session-key shape of classic PHY-key bootstrapping stacks.
//! - [`rekey`]: leakage-budget-driven rotation. The reconciliation
//!   leakage debt measured by privacy amplification — which the exchange
//!   records but never acts on — feeds a [`rekey::RekeyPolicy`] that
//!   schedules either a cheap hash-ratchet refresh or a full re-probe,
//!   through idempotent request/confirm/ack state machines that follow
//!   the retransmit conventions of the wire exchange (duplicate delivery
//!   is answered identically and never desynchronizes the keys).
//! - [`group`]: platoon group keys. An RSU coordinator wraps a per-epoch
//!   group key for every member under their pairwise key (the
//!   `vehicle_key::group` primitives), advances the epoch on every
//!   eviction so a leaver provably cannot authenticate post-eviction
//!   traffic, and tracks per-member acknowledgement for agreement
//!   latency.
//! - [`wire`]: the frame formats for all of the above. Tags live above
//!   the core exchange's range so the two codecs can share one
//!   length-prefixed transport; decoding ignores trailing bytes to stay
//!   inside the same frame-extension interop window.
//!
//! Everything here is std-only on top of the workspace crates, like the
//! rest of the repository.

pub mod channel;
pub mod error;
pub mod group;
pub mod rekey;
pub mod wire;

pub use channel::{ChannelRole, SecureChannel};
pub use error::LifecycleError;
pub use group::{GroupCoordinator, GroupMember};
pub use rekey::{RekeyInitiator, RekeyLedger, RekeyPolicy, RekeyResponder};
pub use wire::{LifecycleMessage, RekeyMode, RekeyTrigger};
