//! Platoon group keys on the wire.
//!
//! The offline `vehicle_key::group` primitives wrap a group key for each
//! member under their pairwise key. This module promotes them into a live
//! coordinator/member pair: the coordinator (RSU) owns a master seed, a
//! monotonically increasing *group epoch*, and the per-coordinator
//! [`NonceAllocator`]; each epoch's group key is derived from the master
//! seed, so an evicted member holding an old epoch's key can derive
//! nothing about later epochs. Every departure advances the epoch and
//! re-wraps for the remaining members only — eviction *is* rekeying.
//! Wraps are keyed per epoch (a key derived from the pairwise key and the
//! epoch number), which binds the wire `group_epoch` into the wrap MAC:
//! a stale wrap replayed under a relabeled epoch fails authentication
//! instead of installing old material under a new label.
//!
//! Members acknowledge each epoch they install; the coordinator tracks
//! acknowledgements to measure agreement latency (epoch start → last live
//! member acked) and to drive retransmission of unacked wraps.

use crate::error::LifecycleError;
use crate::wire::LifecycleMessage;
use std::collections::BTreeMap;
use std::time::Instant;
use vehicle_key::group::{unwrap_group_key, wrap_group_key, NonceAllocator, WrappedGroupKey};
use vehicle_key::Disposition;
use vk_crypto::hmac_sha256;

fn epoch_wrap_material(master: &[u8; 32], epoch: u32) -> [u8; 16] {
    let mut msg = b"VK-GROUP-EPOCH".to_vec();
    msg.extend_from_slice(&epoch.to_be_bytes());
    let d = hmac_sha256(master, &msg);
    let mut out = [0u8; 16];
    out.copy_from_slice(&d[..16]);
    out
}

/// Per-epoch wrap key derived from a member's pairwise key. The core wrap
/// MAC covers only `(member_id, nonce, ciphertext)`; keying the wrap on
/// the epoch binds the wire `group_epoch` into authentication, so a valid
/// old-epoch wrap replayed with a bumped epoch field fails the MAC
/// instead of installing stale material under a fresh label.
fn epoch_wrap_key(pairwise: &[u8; 16], epoch: u32) -> [u8; 16] {
    let mut msg = b"VK-GROUP-WRAP".to_vec();
    msg.extend_from_slice(&epoch.to_be_bytes());
    let d = hmac_sha256(pairwise, &msg);
    let mut out = [0u8; 16];
    out.copy_from_slice(&d[..16]);
    out
}

/// Tag a member's `GroupKeyAck` carries: keyed on the epoch's group
/// material, it proves the member actually installed the key — a forged
/// or replayed-across-epochs ack cannot mark a member agreed.
fn group_ack_input(group_epoch: u32, member_id: u32) -> Vec<u8> {
    let mut msg = b"VK-GROUP-ACK".to_vec();
    msg.extend_from_slice(&group_epoch.to_be_bytes());
    msg.extend_from_slice(&member_id.to_be_bytes());
    msg
}

fn group_ack_mac(material: &[u8; 16], group_epoch: u32, member_id: u32) -> [u8; 32] {
    hmac_sha256(material, &group_ack_input(group_epoch, member_id))
}

fn broadcast_mac(material: &[u8; 16], epoch: u32, payload: &[u8]) -> [u8; 32] {
    let mut msg = b"VK-GROUP-DATA".to_vec();
    msg.extend_from_slice(&epoch.to_be_bytes());
    msg.extend_from_slice(payload);
    hmac_sha256(material, &msg)
}

#[derive(Debug, Clone, Copy)]
struct MemberSlot {
    pairwise: [u8; 16],
    acked_epoch: Option<u32>,
}

/// The RSU side of the group plane.
pub struct GroupCoordinator {
    master: [u8; 32],
    epoch: u32,
    members: BTreeMap<u32, MemberSlot>,
    nonces: NonceAllocator,
    epoch_started: Instant,
    agreement_recorded: bool,
}

impl std::fmt::Debug for GroupCoordinator {
    // The master seed is deliberately absent from the debug form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCoordinator")
            .field("epoch", &self.epoch)
            .field("members", &self.members.len())
            .finish()
    }
}

impl GroupCoordinator {
    /// New coordinator. Epochs start at 1 so `0` can mean "none yet" on
    /// the member side.
    #[must_use]
    pub fn new(master: [u8; 32]) -> Self {
        GroupCoordinator {
            master,
            epoch: 1,
            members: BTreeMap::new(),
            nonces: NonceAllocator::default(),
            epoch_started: Instant::now(),
            agreement_recorded: false,
        }
    }

    /// Current group epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Live member count.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Members that have acknowledged the current epoch.
    #[must_use]
    pub fn acked_count(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.acked_epoch == Some(self.epoch))
            .count()
    }

    /// Has every live member acknowledged the current epoch?
    #[must_use]
    pub fn all_acked(&self) -> bool {
        !self.members.is_empty() && self.acked_count() == self.members.len()
    }

    /// Is `member_id` currently in the group?
    #[must_use]
    pub fn contains(&self, member_id: u32) -> bool {
        self.members.contains_key(&member_id)
    }

    /// Has `member_id` acknowledged the *current* epoch? (`false` for
    /// absent members — drives per-session wrap retransmission.)
    #[must_use]
    pub fn member_acked_current(&self, member_id: u32) -> bool {
        self.members
            .get(&member_id)
            .is_some_and(|m| m.acked_epoch == Some(self.epoch))
    }

    /// Admit a member mid-epoch: it immediately receives the *current*
    /// epoch's wrap (joins do not rotate; departures do). Re-joining
    /// refreshes the stored pairwise key.
    pub fn join(
        &mut self,
        member_id: u32,
        pairwise: [u8; 16],
        session_id: u32,
    ) -> LifecycleMessage {
        self.members.insert(
            member_id,
            MemberSlot {
                pairwise,
                acked_epoch: None,
            },
        );
        telemetry::counter("lifecycle.group.joins", 1);
        // A join reopens the agreement window: the new member has not
        // acked yet.
        self.agreement_recorded = false;
        let material = epoch_wrap_material(&self.master, self.epoch);
        let wrapped = wrap_group_key(
            &epoch_wrap_key(&pairwise, self.epoch),
            member_id,
            self.nonces.allocate(),
            &material,
        );
        LifecycleMessage::GroupKey {
            session_id,
            group_epoch: self.epoch,
            member_id,
            nonce: wrapped.nonce,
            ciphertext: wrapped.ciphertext,
            mac: wrapped.mac,
        }
    }

    /// Evict a member: advance the epoch and re-wrap for everyone left.
    /// Returns `(session_id_placeholder_free)` wraps — callers route each
    /// wrap to the session serving that member. Idempotent: evicting an
    /// absent member changes nothing and returns no wraps.
    pub fn leave(&mut self, member_id: u32) -> Vec<(u32, WrappedGroupKey)> {
        if self.members.remove(&member_id).is_none() {
            return Vec::new();
        }
        telemetry::counter("lifecycle.group.leaves", 1);
        self.epoch += 1;
        self.epoch_started = Instant::now();
        self.agreement_recorded = false;
        telemetry::counter("lifecycle.group.epochs", 1);
        let material = epoch_wrap_material(&self.master, self.epoch);
        let mut wraps = Vec::with_capacity(self.members.len());
        for (id, slot) in &mut self.members {
            slot.acked_epoch = None;
            wraps.push((
                *id,
                wrap_group_key(
                    &epoch_wrap_key(&slot.pairwise, self.epoch),
                    *id,
                    self.nonces.allocate(),
                    &material,
                ),
            ));
        }
        wraps
    }

    /// Wrap the current epoch's group key for one member (initial
    /// delivery or retransmission; every wrap draws a fresh nonce).
    pub fn wrap_for(&mut self, member_id: u32, session_id: u32) -> Option<LifecycleMessage> {
        self.wrap_slot(member_id, session_id)
    }

    fn wrap_slot(&mut self, member_id: u32, session_id: u32) -> Option<LifecycleMessage> {
        let slot = self.members.get(&member_id)?;
        let material = epoch_wrap_material(&self.master, self.epoch);
        let wrapped = wrap_group_key(
            &epoch_wrap_key(&slot.pairwise, self.epoch),
            member_id,
            self.nonces.allocate(),
            &material,
        );
        Some(LifecycleMessage::GroupKey {
            session_id,
            group_epoch: self.epoch,
            member_id,
            nonce: wrapped.nonce,
            ciphertext: wrapped.ciphertext,
            mac: wrapped.mac,
        })
    }

    /// Record a member's acknowledgement of `group_epoch`. The ack must
    /// carry the tag keyed on that epoch's group material — proof the
    /// member installed the key — or it is rejected outright. The
    /// returned agreement latency (milliseconds since the epoch opened)
    /// is present exactly once per epoch: on the ack that completes the
    /// member set.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::MacMismatch`] for an ack whose tag does not
    /// prove the claimed epoch's key.
    pub fn on_ack(
        &mut self,
        member_id: u32,
        group_epoch: u32,
        mac: &[u8; 32],
    ) -> Result<(Disposition, Option<f64>), LifecycleError> {
        let material = epoch_wrap_material(&self.master, group_epoch);
        if !vk_crypto::hmac::verify(&material, &group_ack_input(group_epoch, member_id), mac) {
            return Err(LifecycleError::MacMismatch);
        }
        let Some(slot) = self.members.get_mut(&member_id) else {
            // Acks from evicted members race their departure; absorb.
            return Ok((Disposition::Duplicate, None));
        };
        if group_epoch != self.epoch || slot.acked_epoch == Some(self.epoch) {
            return Ok((Disposition::Duplicate, None));
        }
        slot.acked_epoch = Some(self.epoch);
        let mut latency = None;
        if self.all_acked() && !self.agreement_recorded {
            self.agreement_recorded = true;
            let ms = self.epoch_started.elapsed().as_secs_f64() * 1e3;
            telemetry::histogram("lifecycle.group.agreement_ms", ms);
            latency = Some(ms);
        }
        Ok((Disposition::Accepted, latency))
    }

    /// Authentication tag over `payload` under the current epoch's group
    /// key — what group broadcasts carry, and what agreement checks
    /// compare against members.
    #[must_use]
    pub fn broadcast_tag(&self, payload: &[u8]) -> [u8; 32] {
        self.broadcast_tag_for_epoch(self.epoch, payload)
    }

    /// Tag for an arbitrary epoch (agreement audits across churn).
    #[must_use]
    pub fn broadcast_tag_for_epoch(&self, epoch: u32, payload: &[u8]) -> [u8; 32] {
        broadcast_mac(&epoch_wrap_material(&self.master, epoch), epoch, payload)
    }
}

/// The vehicle side of the group plane.
pub struct GroupMember {
    member_id: u32,
    pairwise: [u8; 16],
    current: Option<(u32, [u8; 16])>,
}

impl std::fmt::Debug for GroupMember {
    // Key material is deliberately absent from the debug form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupMember")
            .field("member_id", &self.member_id)
            .field("epoch", &self.current.map(|(e, _)| e))
            .finish()
    }
}

impl GroupMember {
    /// A member that will unwrap with `pairwise` (its established
    /// session key with the coordinator).
    #[must_use]
    pub fn new(member_id: u32, pairwise: [u8; 16]) -> Self {
        GroupMember {
            member_id,
            pairwise,
            current: None,
        }
    }

    /// Epoch of the installed group key, if any.
    #[must_use]
    pub fn epoch(&self) -> Option<u32> {
        self.current.map(|(e, _)| e)
    }

    /// Authenticate and install an inbound wrap, producing the ack to
    /// send. Wraps for an epoch at or below the installed one are
    /// re-acked as duplicates without touching the installed key.
    ///
    /// The unwrap key is derived from the pairwise key *and the wire
    /// `group_epoch`*, so a valid wrap replayed with a relabeled epoch
    /// fails authentication rather than installing old material under a
    /// new epoch.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::WrongMember`] for a wrap addressed elsewhere;
    /// [`LifecycleError::MacMismatch`] (via [`LifecycleError::Group`])
    /// for a wrap that fails authentication under our pairwise key — or
    /// whose epoch field was tampered with.
    pub fn on_group_key(
        &mut self,
        msg: &LifecycleMessage,
    ) -> Result<(Disposition, LifecycleMessage), LifecycleError> {
        let LifecycleMessage::GroupKey {
            session_id,
            group_epoch,
            member_id,
            nonce,
            ciphertext,
            mac,
        } = msg
        else {
            return Err(LifecycleError::Malformed("expected group key"));
        };
        if *member_id != self.member_id {
            return Err(LifecycleError::WrongMember {
                got: *member_id,
                want: self.member_id,
            });
        }
        let wrapped = WrappedGroupKey {
            member_id: *member_id,
            nonce: *nonce,
            ciphertext: ciphertext.clone(),
            mac: *mac,
        };
        let material = unwrap_group_key(&epoch_wrap_key(&self.pairwise, *group_epoch), &wrapped)?;
        let ack = LifecycleMessage::GroupKeyAck {
            session_id: *session_id,
            group_epoch: *group_epoch,
            member_id: self.member_id,
            mac: group_ack_mac(&material, *group_epoch, self.member_id),
        };
        let disposition = match self.current {
            Some((installed, _)) if *group_epoch <= installed => Disposition::Duplicate,
            _ => {
                self.current = Some((*group_epoch, material));
                Disposition::Accepted
            }
        };
        Ok((disposition, ack))
    }

    /// Verify a group broadcast tag under the installed key.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::EpochMismatch`] when the broadcast's epoch is
    /// not the installed one (including "nothing installed");
    /// [`LifecycleError::MacMismatch`] when the tag does not verify —
    /// the fate of every post-eviction frame an evicted member tries to
    /// authenticate with its stale key.
    pub fn verify_broadcast(
        &self,
        epoch: u32,
        payload: &[u8],
        tag: &[u8; 32],
    ) -> Result<(), LifecycleError> {
        let Some((installed, material)) = self.current else {
            return Err(LifecycleError::EpochMismatch {
                got: epoch,
                want: 0,
            });
        };
        if epoch != installed {
            return Err(LifecycleError::EpochMismatch {
                got: epoch,
                want: installed,
            });
        }
        if broadcast_mac(&material, epoch, payload) != *tag {
            return Err(LifecycleError::MacMismatch);
        }
        Ok(())
    }

    /// Tag a payload under the installed group key (symmetric group
    /// broadcasts; also how agreement is audited in tests and benches).
    #[must_use]
    pub fn broadcast_tag(&self, payload: &[u8]) -> Option<[u8; 32]> {
        self.current
            .map(|(epoch, material)| broadcast_mac(&material, epoch, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairwise(tag: u8) -> [u8; 16] {
        core::array::from_fn(|i| tag.wrapping_mul(41).wrapping_add(i as u8))
    }

    fn coordinator() -> GroupCoordinator {
        GroupCoordinator::new(core::array::from_fn(|i| i as u8 ^ 0x5C))
    }

    #[test]
    fn join_distribute_ack_reaches_agreement() {
        let mut rsu = coordinator();
        let mut vehicles: Vec<GroupMember> = (0..4)
            .map(|i| GroupMember::new(i, pairwise(i as u8)))
            .collect();
        for (i, v) in vehicles.iter_mut().enumerate() {
            let wrap = rsu.join(v.member_id, pairwise(i as u8), 100 + v.member_id);
            let (disp, ack) = v.on_group_key(&wrap).unwrap();
            assert_eq!(disp, Disposition::Accepted);
            let LifecycleMessage::GroupKeyAck {
                member_id,
                group_epoch,
                mac,
                ..
            } = ack
            else {
                panic!("expected ack")
            };
            let (d, _) = rsu.on_ack(member_id, group_epoch, &mac).unwrap();
            assert_eq!(d, Disposition::Accepted);
        }
        assert!(rsu.all_acked());
        // Everyone authenticates the same broadcast.
        let tag = rsu.broadcast_tag(b"convoy speed 80");
        for v in &vehicles {
            v.verify_broadcast(rsu.epoch(), b"convoy speed 80", &tag)
                .unwrap();
        }
    }

    #[test]
    fn duplicate_wrap_and_ack_are_duplicates() {
        let mut rsu = coordinator();
        let mut v = GroupMember::new(3, pairwise(3));
        let wrap = rsu.join(3, pairwise(3), 103);
        let (d1, a1) = v.on_group_key(&wrap).unwrap();
        let (d2, a2) = v.on_group_key(&wrap).unwrap();
        assert_eq!(d1, Disposition::Accepted);
        assert_eq!(d2, Disposition::Duplicate);
        assert_eq!(a1, a2, "re-delivered wrap must re-ack identically");
        let LifecycleMessage::GroupKeyAck { mac: ack_mac, .. } = a1 else {
            panic!("expected ack")
        };
        let (da, _) = rsu.on_ack(3, rsu.epoch(), &ack_mac).unwrap();
        let (db, _) = rsu.on_ack(3, rsu.epoch(), &ack_mac).unwrap();
        assert_eq!(da, Disposition::Accepted);
        assert_eq!(db, Disposition::Duplicate);
        // A forged ack — right fields, wrong tag — is rejected, never
        // counted toward agreement.
        assert_eq!(
            rsu.on_ack(3, rsu.epoch(), &[0xEE; 32]),
            Err(LifecycleError::MacMismatch)
        );
        // A retransmitted wrap (fresh nonce, same epoch) is also a
        // duplicate on the member: the installed key is not disturbed.
        let rewrap = rsu.wrap_for(3, 103).unwrap();
        assert_ne!(rewrap, wrap, "retransmitted wraps draw fresh nonces");
        let (d3, _) = v.on_group_key(&rewrap).unwrap();
        assert_eq!(d3, Disposition::Duplicate);
    }

    #[test]
    fn eviction_advances_epoch_and_excludes_leaver() {
        let mut rsu = coordinator();
        let mut stayer = GroupMember::new(1, pairwise(1));
        let mut leaver = GroupMember::new(2, pairwise(2));
        let w1 = rsu.join(1, pairwise(1), 101);
        let w2 = rsu.join(2, pairwise(2), 102);
        stayer.on_group_key(&w1).unwrap();
        leaver.on_group_key(&w2).unwrap();
        let epoch_before = rsu.epoch();

        let rewraps = rsu.leave(2);
        assert_eq!(rsu.epoch(), epoch_before + 1, "departure must rotate");
        assert_eq!(rewraps.len(), 1, "only the stayer is re-wrapped");
        assert_eq!(rewraps[0].0, 1);
        // The stayer installs the new epoch.
        let (id, wrapped) = &rewraps[0];
        let frame = LifecycleMessage::GroupKey {
            session_id: 101,
            group_epoch: rsu.epoch(),
            member_id: *id,
            nonce: wrapped.nonce,
            ciphertext: wrapped.ciphertext.clone(),
            mac: wrapped.mac,
        };
        let (disp, stayer_ack) = stayer.on_group_key(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);

        // Post-eviction broadcast: the stayer verifies, the leaver cannot.
        let tag = rsu.broadcast_tag(b"post-eviction");
        stayer
            .verify_broadcast(rsu.epoch(), b"post-eviction", &tag)
            .unwrap();
        assert_eq!(
            leaver.verify_broadcast(rsu.epoch(), b"post-eviction", &tag),
            Err(LifecycleError::EpochMismatch {
                got: rsu.epoch(),
                want: epoch_before,
            })
        );
        // Even lying about the epoch, the stale key fails the MAC.
        assert_eq!(
            leaver.verify_broadcast(epoch_before, b"post-eviction", &tag),
            Err(LifecycleError::MacMismatch)
        );
        // And anything the leaver tags is rejected by the group.
        let stale_tag = leaver.broadcast_tag(b"post-eviction").unwrap();
        assert_ne!(stale_tag, tag);
        // The stayer's wrap cannot be unwrapped by the leaver either.
        let LifecycleMessage::GroupKeyAck { mac, .. } = stayer_ack else {
            panic!("expected ack")
        };
        let (d, _) = rsu.on_ack(1, rsu.epoch(), &mac).unwrap();
        assert_eq!(d, Disposition::Accepted);
        assert!(rsu.all_acked());
    }

    #[test]
    fn relabeled_epoch_replay_fails_the_wrap_mac() {
        // REVIEW finding: the wire `group_epoch` used to sit outside the
        // wrap MAC, so an old epoch's valid wrap replayed with a bumped
        // epoch field installed stale material under the new label. The
        // epoch-keyed wrap closes it: relabeling fails authentication.
        let mut rsu = coordinator();
        let mut stayer = GroupMember::new(1, pairwise(1));
        let wrap_e1 = rsu.join(1, pairwise(1), 101);
        let _ = rsu.join(2, pairwise(2), 102);
        stayer.on_group_key(&wrap_e1).unwrap();
        assert_eq!(stayer.epoch(), Some(1));

        // Member 2 is evicted: the genuine plane moves to epoch 2.
        let rewraps = rsu.leave(2);
        assert_eq!(rsu.epoch(), 2);

        // Attacker replays the member's own epoch-1 wrap relabeled as
        // epoch 2 (and as a future epoch): both fail the MAC, and the
        // installed key is untouched.
        let LifecycleMessage::GroupKey {
            session_id,
            member_id,
            nonce,
            ciphertext,
            mac,
            ..
        } = wrap_e1
        else {
            panic!("expected wrap")
        };
        for bogus_epoch in [2u32, 7] {
            let relabeled = LifecycleMessage::GroupKey {
                session_id,
                group_epoch: bogus_epoch,
                member_id,
                nonce,
                ciphertext: ciphertext.clone(),
                mac,
            };
            assert_eq!(
                stayer.on_group_key(&relabeled),
                Err(LifecycleError::Group(
                    vehicle_key::group::GroupError::MacMismatch
                )),
                "relabeled replay to epoch {bogus_epoch} must fail"
            );
            assert_eq!(stayer.epoch(), Some(1), "installed key must be untouched");
        }

        // The genuine epoch-2 re-wrap still installs, and the member now
        // authenticates the coordinator's post-eviction broadcasts.
        let (id, wrapped) = &rewraps[0];
        let frame = LifecycleMessage::GroupKey {
            session_id: 101,
            group_epoch: rsu.epoch(),
            member_id: *id,
            nonce: wrapped.nonce,
            ciphertext: wrapped.ciphertext.clone(),
            mac: wrapped.mac,
        };
        let (disp, _) = stayer.on_group_key(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(stayer.epoch(), Some(2));
        let tag = rsu.broadcast_tag(b"epoch 2 traffic");
        stayer
            .verify_broadcast(rsu.epoch(), b"epoch 2 traffic", &tag)
            .unwrap();
    }

    #[test]
    fn evicting_an_absent_member_is_idempotent() {
        let mut rsu = coordinator();
        let _ = rsu.join(1, pairwise(1), 101);
        let epoch = rsu.epoch();
        assert!(rsu.leave(9).is_empty());
        assert_eq!(rsu.epoch(), epoch, "evicting a stranger must not rotate");
        let wraps = rsu.leave(1);
        assert!(wraps.is_empty(), "last member out leaves nobody to re-wrap");
        assert_eq!(rsu.epoch(), epoch + 1);
        assert!(rsu.leave(1).is_empty());
        assert_eq!(
            rsu.epoch(),
            epoch + 1,
            "double eviction must not rotate twice"
        );
    }

    #[test]
    fn wrap_for_another_member_is_rejected() {
        let mut rsu = coordinator();
        let _ = rsu.join(1, pairwise(1), 101);
        let wrap_other = rsu.join(2, pairwise(2), 102);
        let mut v = GroupMember::new(1, pairwise(1));
        assert_eq!(
            v.on_group_key(&wrap_other),
            Err(LifecycleError::WrongMember { got: 2, want: 1 })
        );
        // Forwarding member 2's wrap re-addressed to member 1 fails the
        // wrap MAC (it binds the member id and the pairwise key).
        let LifecycleMessage::GroupKey {
            session_id,
            group_epoch,
            nonce,
            ciphertext,
            mac,
            ..
        } = wrap_other
        else {
            panic!("expected wrap")
        };
        let readdressed = LifecycleMessage::GroupKey {
            session_id,
            group_epoch,
            member_id: 1,
            nonce,
            ciphertext,
            mac,
        };
        assert_eq!(
            v.on_group_key(&readdressed),
            Err(LifecycleError::Group(
                vehicle_key::group::GroupError::MacMismatch
            ))
        );
    }
}
