//! The authenticated application channel an established key hands off to.
//!
//! After key confirmation both peers hold the same 128-bit root. The
//! channel derives four subkeys from it — an encryption and a MAC key per
//! direction — so nonce discipline is per-direction: each direction seals
//! frames under its own AES-128-CTR key with the frame sequence number as
//! the CTR nonce, and sequence numbers are never reused under one
//! (epoch, direction) pair. Every rotation installs a new root, re-derives
//! all four subkeys, and resets both sequence spaces.
//!
//! Receive-side replay discipline matches the wire exchange's
//! conventions, with a sliding window for reordering links: the receiver
//! tracks the high-water sequence plus a [`REPLAY_WINDOW`]-wide bitmap of
//! recently seen sequences, so an out-of-order-but-new frame is still
//! [`Disposition::Accepted`] while a true replay — or anything older than
//! the window — is [`Disposition::Duplicate`] and re-acked identically.
//! Anything failing its MAC or carrying a foreign epoch is a typed error
//! and is never acknowledged.
//!
//! Control frames (acks, rekey requests, leave handshakes) carry no
//! payload key material but do mutate state, so they are authenticated
//! too: each direction holds a *control MAC key* derived from the handoff
//! root, stable across rotations (control handlers are idempotent, so a
//! replayed control frame is harmless — the key only has to stop
//! forgery). See [`SecureChannel::authenticate`].

use crate::error::LifecycleError;
use crate::wire::LifecycleMessage;
use vehicle_key::Disposition;
use vk_crypto::{hmac_sha256, Aes128};

/// Which side of the handoff this channel endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelRole {
    /// The server / RSU side (the core exchange's Alice).
    Initiator,
    /// The vehicle side (the core exchange's Bob).
    Responder,
}

/// Direction byte folded into the subkey derivation labels.
fn direction_byte(from: ChannelRole) -> u8 {
    match from {
        ChannelRole::Initiator => 0,
        ChannelRole::Responder => 1,
    }
}

fn derive_label(label: &[u8], dir: u8, session_id: u32, epoch: u32) -> Vec<u8> {
    let mut v = label.to_vec();
    v.push(dir);
    v.extend_from_slice(&session_id.to_be_bytes());
    v.extend_from_slice(&epoch.to_be_bytes());
    v
}

fn derive_enc(root: &[u8; 16], dir: u8, session_id: u32, epoch: u32) -> [u8; 16] {
    let d = hmac_sha256(root, &derive_label(b"VK-APP-ENC", dir, session_id, epoch));
    let mut out = [0u8; 16];
    out.copy_from_slice(&d[..16]);
    out
}

fn derive_mac(root: &[u8; 16], dir: u8, session_id: u32, epoch: u32) -> [u8; 32] {
    hmac_sha256(root, &derive_label(b"VK-APP-MAC", dir, session_id, epoch))
}

/// Control-plane MAC key for one direction, derived once from the handoff
/// root (epoch 0) and *not* rotated: control frames carry no epoch field,
/// and their handlers are idempotent, so stability beats freshness here.
fn derive_ctrl(root: &[u8; 16], dir: u8, session_id: u32) -> [u8; 32] {
    hmac_sha256(root, &derive_label(b"VK-CTL-MAC", dir, session_id, 0))
}

/// How far behind the high-water sequence a frame may arrive and still be
/// accepted as new (the replay-window width, in sequence numbers).
pub const REPLAY_WINDOW: u64 = 64;

fn app_aad(session_id: u32, epoch: u32, seq: u64, ciphertext: &[u8]) -> Vec<u8> {
    let mut v = b"VK-APP".to_vec();
    v.extend_from_slice(&session_id.to_be_bytes());
    v.extend_from_slice(&epoch.to_be_bytes());
    v.extend_from_slice(&seq.to_be_bytes());
    v.extend_from_slice(ciphertext);
    v
}

/// Tag the responder sends in `RekeyConfirm` to prove it derived the
/// candidate root.
#[must_use]
pub fn confirm_tag(candidate: &[u8; 16], session_id: u32, epoch: u32) -> [u8; 32] {
    let mut msg = b"VK-REKEY-OK".to_vec();
    msg.extend_from_slice(&session_id.to_be_bytes());
    msg.extend_from_slice(&epoch.to_be_bytes());
    hmac_sha256(candidate, &msg)
}

/// Tag the initiator sends in `RekeyAck` to close the rotation.
#[must_use]
pub fn ack_tag(candidate: &[u8; 16], session_id: u32, epoch: u32) -> [u8; 32] {
    let mut msg = b"VK-REKEY-ACK".to_vec();
    msg.extend_from_slice(&session_id.to_be_bytes());
    msg.extend_from_slice(&epoch.to_be_bytes());
    hmac_sha256(candidate, &msg)
}

/// One endpoint of the authenticated session channel.
#[derive(Clone)]
pub struct SecureChannel {
    root: [u8; 16],
    session_id: u32,
    epoch: u32,
    role: ChannelRole,
    send_enc: [u8; 16],
    send_mac: [u8; 32],
    recv_enc: [u8; 16],
    recv_mac: [u8; 32],
    ctrl_send: [u8; 32],
    ctrl_recv: [u8; 32],
    send_seq: u64,
    recv_high: Option<u64>,
    // Bit `i` set = sequence `recv_high - i` was seen this epoch (bit 0
    // is `recv_high` itself); the sliding replay window.
    recv_window: u64,
}

impl std::fmt::Debug for SecureChannel {
    // Key material is deliberately absent from the debug form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("session_id", &self.session_id)
            .field("epoch", &self.epoch)
            .field("role", &self.role)
            .field("send_seq", &self.send_seq)
            .field("recv_high", &self.recv_high)
            .finish()
    }
}

impl SecureChannel {
    /// Build a channel endpoint from a confirmed 128-bit root.
    #[must_use]
    pub fn new(root: [u8; 16], session_id: u32, role: ChannelRole) -> Self {
        let (tx, rx) = match role {
            ChannelRole::Initiator => (ChannelRole::Initiator, ChannelRole::Responder),
            ChannelRole::Responder => (ChannelRole::Responder, ChannelRole::Initiator),
        };
        let mut ch = SecureChannel {
            root,
            session_id,
            epoch: 0,
            role,
            send_enc: [0; 16],
            send_mac: [0; 32],
            recv_enc: [0; 16],
            recv_mac: [0; 32],
            ctrl_send: derive_ctrl(&root, direction_byte(tx), session_id),
            ctrl_recv: derive_ctrl(&root, direction_byte(rx), session_id),
            send_seq: 0,
            recv_high: None,
            recv_window: 0,
        };
        ch.rederive();
        ch
    }

    fn rederive(&mut self) {
        let (tx, rx) = match self.role {
            ChannelRole::Initiator => (ChannelRole::Initiator, ChannelRole::Responder),
            ChannelRole::Responder => (ChannelRole::Responder, ChannelRole::Initiator),
        };
        self.send_enc = derive_enc(&self.root, direction_byte(tx), self.session_id, self.epoch);
        self.send_mac = derive_mac(&self.root, direction_byte(tx), self.session_id, self.epoch);
        self.recv_enc = derive_enc(&self.root, direction_byte(rx), self.session_id, self.epoch);
        self.recv_mac = derive_mac(&self.root, direction_byte(rx), self.session_id, self.epoch);
    }

    /// Current channel epoch (0 at handoff, +1 per installed rotation).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The session this channel belongs to.
    #[must_use]
    pub fn session_id(&self) -> u32 {
        self.session_id
    }

    /// Frames sealed under the current epoch so far.
    #[must_use]
    pub fn frames_sealed(&self) -> u64 {
        self.send_seq
    }

    /// High-water receive sequence for the current epoch, if any frame
    /// was accepted.
    #[must_use]
    pub fn recv_high(&self) -> Option<u64> {
        self.recv_high
    }

    /// Candidate root for a hash-ratchet rotation into `epoch() + 1`.
    #[must_use]
    pub fn ratchet_root(&self) -> [u8; 16] {
        let mut msg = b"VK-RATCHET".to_vec();
        msg.extend_from_slice(&(self.epoch + 1).to_be_bytes());
        let d = hmac_sha256(&self.root, &msg);
        let mut out = [0u8; 16];
        out.copy_from_slice(&d[..16]);
        out
    }

    /// Candidate root for a re-probe rotation into `epoch() + 1`, seeded
    /// by both peers' fresh nonces. In the simulated-channel world this
    /// models a fresh probing round: both sides measure the same
    /// reciprocal channel (the nonces), and binding the old root keeps
    /// the derivation authenticated.
    #[must_use]
    pub fn reprobe_root(&self, fresh_initiator: u64, fresh_responder: u64) -> [u8; 16] {
        let mut msg = b"VK-REPROBE".to_vec();
        msg.extend_from_slice(&(self.epoch + 1).to_be_bytes());
        msg.extend_from_slice(&fresh_initiator.to_be_bytes());
        msg.extend_from_slice(&fresh_responder.to_be_bytes());
        let d = hmac_sha256(&self.root, &msg);
        let mut out = [0u8; 16];
        out.copy_from_slice(&d[..16]);
        out
    }

    /// Tag proving knowledge of a candidate root for this channel's next
    /// epoch (what `RekeyConfirm` carries).
    #[must_use]
    pub fn confirm_tag_for(&self, candidate: &[u8; 16]) -> [u8; 32] {
        confirm_tag(candidate, self.session_id, self.epoch + 1)
    }

    /// Install a new root and advance the epoch. Both sequence spaces
    /// reset; all four subkeys are re-derived.
    pub fn advance(&mut self, new_root: [u8; 16]) {
        self.root = new_root;
        self.epoch += 1;
        self.send_seq = 0;
        self.recv_high = None;
        self.recv_window = 0;
        self.rederive();
    }

    /// Fill in a control frame's MAC under this direction's control key.
    /// Frames whose authentication lives elsewhere pass through unchanged.
    #[must_use]
    pub fn authenticate(&self, mut msg: LifecycleMessage) -> LifecycleMessage {
        let Some(body) = msg.control_signable() else {
            return msg;
        };
        let tag = hmac_sha256(&self.ctrl_send, &body);
        match &mut msg {
            LifecycleMessage::AppAck { mac, .. }
            | LifecycleMessage::RekeyRequest { mac, .. }
            | LifecycleMessage::Leave { mac, .. }
            | LifecycleMessage::LeaveAck { mac, .. } => *mac = tag,
            _ => {}
        }
        msg
    }

    /// Verify an inbound control frame's MAC under the peer direction's
    /// control key.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::MacMismatch`] for a forged or tampered control
    /// frame; [`LifecycleError::Malformed`] for a frame that carries no
    /// control MAC at all.
    pub fn verify_control(&self, msg: &LifecycleMessage) -> Result<(), LifecycleError> {
        let body = msg
            .control_signable()
            .ok_or(LifecycleError::Malformed("not a control frame"))?;
        let mac = match msg {
            LifecycleMessage::AppAck { mac, .. }
            | LifecycleMessage::RekeyRequest { mac, .. }
            | LifecycleMessage::Leave { mac, .. }
            | LifecycleMessage::LeaveAck { mac, .. } => mac,
            _ => return Err(LifecycleError::Malformed("not a control frame")),
        };
        if !vk_crypto::hmac::verify(&self.ctrl_recv, &body, mac) {
            return Err(LifecycleError::MacMismatch);
        }
        Ok(())
    }

    /// Seal a payload into an authenticated application frame, consuming
    /// the next send sequence number.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::PayloadTooLarge`] past the frame cap.
    pub fn seal(&mut self, payload: &[u8]) -> Result<LifecycleMessage, LifecycleError> {
        if payload.len() > LifecycleMessage::MAX_APP_CIPHERTEXT {
            return Err(LifecycleError::PayloadTooLarge(payload.len()));
        }
        let seq = self.send_seq;
        self.send_seq += 1;
        let ciphertext = Aes128::new(&self.send_enc).ctr(seq, payload);
        let mac = hmac_sha256(
            &self.send_mac,
            &app_aad(self.session_id, self.epoch, seq, &ciphertext),
        );
        Ok(LifecycleMessage::AppData {
            session_id: self.session_id,
            epoch: self.epoch,
            seq,
            ciphertext,
            mac,
        })
    }

    /// Authenticate and open an inbound application frame.
    ///
    /// Replay suppression is a sliding window: a frame above the
    /// high-water sequence — or behind it but within [`REPLAY_WINDOW`]
    /// and not yet seen — is [`Disposition::Accepted`] even when it
    /// arrives out of order. A frame already seen, or older than the
    /// window allows, is a retransmission: the payload is returned again
    /// with [`Disposition::Duplicate`] so the caller re-acks identically.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::EpochMismatch`] for frames from another epoch,
    /// [`LifecycleError::MacMismatch`] for tampering,
    /// [`LifecycleError::Malformed`] for non-`AppData` input or a foreign
    /// session id.
    pub fn open(
        &mut self,
        msg: &LifecycleMessage,
    ) -> Result<(Disposition, Vec<u8>), LifecycleError> {
        let LifecycleMessage::AppData {
            session_id,
            epoch,
            seq,
            ciphertext,
            mac,
        } = msg
        else {
            return Err(LifecycleError::Malformed("expected app data"));
        };
        if *session_id != self.session_id {
            return Err(LifecycleError::Malformed("app frame for another session"));
        }
        if *epoch != self.epoch {
            return Err(LifecycleError::EpochMismatch {
                got: *epoch,
                want: self.epoch,
            });
        }
        if !vk_crypto::hmac::verify(
            &self.recv_mac,
            &app_aad(self.session_id, self.epoch, *seq, ciphertext),
            mac,
        ) {
            return Err(LifecycleError::MacMismatch);
        }
        let payload = Aes128::new(&self.recv_enc).ctr(*seq, ciphertext);
        let disposition = match self.recv_high {
            None => {
                self.recv_high = Some(*seq);
                self.recv_window = 1;
                Disposition::Accepted
            }
            Some(high) if *seq > high => {
                let shift = *seq - high;
                self.recv_window = if shift >= REPLAY_WINDOW {
                    0
                } else {
                    self.recv_window << shift
                };
                self.recv_window |= 1;
                self.recv_high = Some(*seq);
                Disposition::Accepted
            }
            Some(high) => {
                let back = high - *seq;
                if back >= REPLAY_WINDOW || (self.recv_window >> back) & 1 == 1 {
                    // A true replay — or too old to distinguish from one.
                    Disposition::Duplicate
                } else {
                    // Reordered but new: deliver it.
                    self.recv_window |= 1 << back;
                    Disposition::Accepted
                }
            }
        };
        Ok((disposition, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let root = core::array::from_fn(|i| i as u8);
        (
            SecureChannel::new(root, 42, ChannelRole::Initiator),
            SecureChannel::new(root, 42, ChannelRole::Responder),
        )
    }

    #[test]
    fn seal_open_round_trips_both_directions() {
        let (mut alice, mut bob) = pair();
        let frame = alice.seal(b"platoon hello").unwrap();
        let (disp, payload) = bob.open(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(payload, b"platoon hello");
        let frame = bob.seal(b"ack ack").unwrap();
        let (disp, payload) = alice.open(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(payload, b"ack ack");
    }

    #[test]
    fn duplicate_delivery_is_duplicate_never_mismatch() {
        let (mut alice, mut bob) = pair();
        let frame = alice.seal(b"once").unwrap();
        let (first, p1) = bob.open(&frame).unwrap();
        let (second, p2) = bob.open(&frame).unwrap();
        assert_eq!(first, Disposition::Accepted);
        assert_eq!(second, Disposition::Duplicate);
        assert_eq!(p1, p2);
    }

    #[test]
    fn directions_do_not_share_keystreams() {
        // Same seq from both sides must not produce related ciphertexts:
        // the directions run separate subkeys.
        let (mut alice, mut bob) = pair();
        let fa = alice.seal(b"same payload").unwrap();
        let fb = bob.seal(b"same payload").unwrap();
        let (
            LifecycleMessage::AppData { ciphertext: ca, .. },
            LifecycleMessage::AppData { ciphertext: cb, .. },
        ) = (&fa, &fb)
        else {
            unreachable!()
        };
        assert_ne!(ca, cb);
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut alice, mut bob) = pair();
        let frame = alice.seal(b"integrity").unwrap();
        let LifecycleMessage::AppData {
            session_id,
            epoch,
            seq,
            mut ciphertext,
            mac,
        } = frame
        else {
            unreachable!()
        };
        ciphertext[0] ^= 1;
        let tampered = LifecycleMessage::AppData {
            session_id,
            epoch,
            seq,
            ciphertext,
            mac,
        };
        assert_eq!(bob.open(&tampered), Err(LifecycleError::MacMismatch));
    }

    #[test]
    fn ratchet_keeps_peers_in_sync_and_rejects_old_epoch() {
        let (mut alice, mut bob) = pair();
        let stale = alice.seal(b"pre-rotation").unwrap();
        let _ = bob.open(&stale).unwrap();
        let next = alice.ratchet_root();
        assert_eq!(next, bob.ratchet_root());
        alice.advance(next);
        bob.advance(next);
        // New epoch traffic flows; sequence spaces restarted.
        let frame = alice.seal(b"post-rotation").unwrap();
        let (disp, payload) = bob.open(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(payload, b"post-rotation");
        // A replayed pre-rotation frame is typed as an epoch mismatch,
        // not silently accepted.
        assert_eq!(
            bob.open(&stale),
            Err(LifecycleError::EpochMismatch { got: 0, want: 1 })
        );
    }

    #[test]
    fn reordered_frames_are_accepted_and_replays_stay_duplicate() {
        let (mut alice, mut bob) = pair();
        let frames: Vec<_> = (0..5u8).map(|i| alice.seal(&[b'f', i]).unwrap()).collect();
        // Deliver 0, 3, 1, 4, 2 — every frame is new despite reordering.
        for &i in &[0usize, 3, 1, 4, 2] {
            let (disp, payload) = bob.open(&frames[i]).unwrap();
            assert_eq!(disp, Disposition::Accepted, "frame {i} must be new");
            assert_eq!(payload, [b'f', i as u8]);
        }
        // Every re-delivery is now a duplicate, never an error.
        for (i, frame) in frames.iter().enumerate() {
            let (disp, payload) = bob.open(frame).unwrap();
            assert_eq!(disp, Disposition::Duplicate, "frame {i} replay");
            assert_eq!(payload, [b'f', i as u8]);
        }
    }

    #[test]
    fn frames_older_than_the_window_are_duplicates() {
        let (mut alice, mut bob) = pair();
        let old = alice.seal(b"ancient").unwrap();
        // Advance the send sequence far past the window, then land one.
        let mut latest = alice.seal(b"skip").unwrap();
        for _ in 0..(REPLAY_WINDOW + 8) {
            latest = alice.seal(b"skip").unwrap();
        }
        assert_eq!(bob.open(&latest).unwrap().0, Disposition::Accepted);
        // Sequence 0 is beyond the window: absorbed as a duplicate, not
        // an error — the sender's ack-driven retransmission already
        // re-sealed anything that genuinely mattered.
        assert_eq!(bob.open(&old).unwrap().0, Disposition::Duplicate);
    }

    #[test]
    fn control_frames_authenticate_and_forgeries_fail() {
        let (alice, bob) = pair();
        let ack = alice.authenticate(LifecycleMessage::AppAck {
            session_id: 42,
            epoch: 0,
            seq: 3,
            mac: [0; 32],
        });
        bob.verify_control(&ack).unwrap();
        // The MAC binds every field: a flipped seq fails.
        let LifecycleMessage::AppAck {
            session_id,
            epoch,
            mac,
            ..
        } = ack
        else {
            unreachable!()
        };
        let forged = LifecycleMessage::AppAck {
            session_id,
            epoch,
            seq: 4,
            mac,
        };
        assert_eq!(
            bob.verify_control(&forged),
            Err(LifecycleError::MacMismatch)
        );
        // An unMAC'd frame from an off-path attacker fails outright.
        let injected = LifecycleMessage::Leave {
            session_id: 42,
            mac: [0; 32],
        };
        assert_eq!(
            alice.verify_control(&injected),
            Err(LifecycleError::MacMismatch)
        );
        // Direction keys differ: a frame reflected back at its sender
        // does not verify under the other direction's key.
        let leave = bob.authenticate(LifecycleMessage::Leave {
            session_id: 42,
            mac: [0; 32],
        });
        alice.verify_control(&leave).unwrap();
        assert_eq!(bob.verify_control(&leave), Err(LifecycleError::MacMismatch));
    }

    #[test]
    fn control_keys_survive_rotations() {
        // A Leave sealed before a rotation still verifies after it: the
        // control keys derive from the handoff root, not the epoch root.
        let (mut alice, mut bob) = pair();
        let leave = bob.authenticate(LifecycleMessage::Leave {
            session_id: 42,
            mac: [0; 32],
        });
        let next = alice.ratchet_root();
        alice.advance(next);
        bob.advance(bob.ratchet_root());
        alice.verify_control(&leave).unwrap();
    }

    #[test]
    fn reprobe_root_depends_on_both_nonces() {
        let (alice, _) = pair();
        let a = alice.reprobe_root(1, 2);
        let b = alice.reprobe_root(1, 3);
        let c = alice.reprobe_root(4, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, alice.ratchet_root());
    }
}
