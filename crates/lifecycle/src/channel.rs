//! The authenticated application channel an established key hands off to.
//!
//! After key confirmation both peers hold the same 128-bit root. The
//! channel derives four subkeys from it — an encryption and a MAC key per
//! direction — so nonce discipline is per-direction: each direction seals
//! frames under its own AES-128-CTR key with the frame sequence number as
//! the CTR nonce, and sequence numbers are never reused under one
//! (epoch, direction) pair. Every rotation installs a new root, re-derives
//! all four subkeys, and resets both sequence spaces.
//!
//! Receive-side replay discipline matches the wire exchange's
//! conventions: a frame at or below the high-water sequence that still
//! authenticates is a retransmission — reported as
//! [`Disposition::Duplicate`] so the caller re-acks it identically —
//! while anything failing its MAC or carrying a foreign epoch is a typed
//! error and is never acknowledged.

use crate::error::LifecycleError;
use crate::wire::LifecycleMessage;
use vehicle_key::Disposition;
use vk_crypto::{hmac_sha256, Aes128};

/// Which side of the handoff this channel endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelRole {
    /// The server / RSU side (the core exchange's Alice).
    Initiator,
    /// The vehicle side (the core exchange's Bob).
    Responder,
}

/// Direction byte folded into the subkey derivation labels.
fn direction_byte(from: ChannelRole) -> u8 {
    match from {
        ChannelRole::Initiator => 0,
        ChannelRole::Responder => 1,
    }
}

fn derive_label(label: &[u8], dir: u8, session_id: u32, epoch: u32) -> Vec<u8> {
    let mut v = label.to_vec();
    v.push(dir);
    v.extend_from_slice(&session_id.to_be_bytes());
    v.extend_from_slice(&epoch.to_be_bytes());
    v
}

fn derive_enc(root: &[u8; 16], dir: u8, session_id: u32, epoch: u32) -> [u8; 16] {
    let d = hmac_sha256(root, &derive_label(b"VK-APP-ENC", dir, session_id, epoch));
    let mut out = [0u8; 16];
    out.copy_from_slice(&d[..16]);
    out
}

fn derive_mac(root: &[u8; 16], dir: u8, session_id: u32, epoch: u32) -> [u8; 32] {
    hmac_sha256(root, &derive_label(b"VK-APP-MAC", dir, session_id, epoch))
}

fn app_aad(session_id: u32, epoch: u32, seq: u64, ciphertext: &[u8]) -> Vec<u8> {
    let mut v = b"VK-APP".to_vec();
    v.extend_from_slice(&session_id.to_be_bytes());
    v.extend_from_slice(&epoch.to_be_bytes());
    v.extend_from_slice(&seq.to_be_bytes());
    v.extend_from_slice(ciphertext);
    v
}

/// Tag the responder sends in `RekeyConfirm` to prove it derived the
/// candidate root.
#[must_use]
pub fn confirm_tag(candidate: &[u8; 16], session_id: u32, epoch: u32) -> [u8; 32] {
    let mut msg = b"VK-REKEY-OK".to_vec();
    msg.extend_from_slice(&session_id.to_be_bytes());
    msg.extend_from_slice(&epoch.to_be_bytes());
    hmac_sha256(candidate, &msg)
}

/// Tag the initiator sends in `RekeyAck` to close the rotation.
#[must_use]
pub fn ack_tag(candidate: &[u8; 16], session_id: u32, epoch: u32) -> [u8; 32] {
    let mut msg = b"VK-REKEY-ACK".to_vec();
    msg.extend_from_slice(&session_id.to_be_bytes());
    msg.extend_from_slice(&epoch.to_be_bytes());
    hmac_sha256(candidate, &msg)
}

/// One endpoint of the authenticated session channel.
#[derive(Clone)]
pub struct SecureChannel {
    root: [u8; 16],
    session_id: u32,
    epoch: u32,
    role: ChannelRole,
    send_enc: [u8; 16],
    send_mac: [u8; 32],
    recv_enc: [u8; 16],
    recv_mac: [u8; 32],
    send_seq: u64,
    recv_high: Option<u64>,
}

impl std::fmt::Debug for SecureChannel {
    // Key material is deliberately absent from the debug form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("session_id", &self.session_id)
            .field("epoch", &self.epoch)
            .field("role", &self.role)
            .field("send_seq", &self.send_seq)
            .field("recv_high", &self.recv_high)
            .finish()
    }
}

impl SecureChannel {
    /// Build a channel endpoint from a confirmed 128-bit root.
    #[must_use]
    pub fn new(root: [u8; 16], session_id: u32, role: ChannelRole) -> Self {
        let mut ch = SecureChannel {
            root,
            session_id,
            epoch: 0,
            role,
            send_enc: [0; 16],
            send_mac: [0; 32],
            recv_enc: [0; 16],
            recv_mac: [0; 32],
            send_seq: 0,
            recv_high: None,
        };
        ch.rederive();
        ch
    }

    fn rederive(&mut self) {
        let (tx, rx) = match self.role {
            ChannelRole::Initiator => (ChannelRole::Initiator, ChannelRole::Responder),
            ChannelRole::Responder => (ChannelRole::Responder, ChannelRole::Initiator),
        };
        self.send_enc = derive_enc(&self.root, direction_byte(tx), self.session_id, self.epoch);
        self.send_mac = derive_mac(&self.root, direction_byte(tx), self.session_id, self.epoch);
        self.recv_enc = derive_enc(&self.root, direction_byte(rx), self.session_id, self.epoch);
        self.recv_mac = derive_mac(&self.root, direction_byte(rx), self.session_id, self.epoch);
    }

    /// Current channel epoch (0 at handoff, +1 per installed rotation).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The session this channel belongs to.
    #[must_use]
    pub fn session_id(&self) -> u32 {
        self.session_id
    }

    /// Frames sealed under the current epoch so far.
    #[must_use]
    pub fn frames_sealed(&self) -> u64 {
        self.send_seq
    }

    /// High-water receive sequence for the current epoch, if any frame
    /// was accepted.
    #[must_use]
    pub fn recv_high(&self) -> Option<u64> {
        self.recv_high
    }

    /// Candidate root for a hash-ratchet rotation into `epoch() + 1`.
    #[must_use]
    pub fn ratchet_root(&self) -> [u8; 16] {
        let mut msg = b"VK-RATCHET".to_vec();
        msg.extend_from_slice(&(self.epoch + 1).to_be_bytes());
        let d = hmac_sha256(&self.root, &msg);
        let mut out = [0u8; 16];
        out.copy_from_slice(&d[..16]);
        out
    }

    /// Candidate root for a re-probe rotation into `epoch() + 1`, seeded
    /// by both peers' fresh nonces. In the simulated-channel world this
    /// models a fresh probing round: both sides measure the same
    /// reciprocal channel (the nonces), and binding the old root keeps
    /// the derivation authenticated.
    #[must_use]
    pub fn reprobe_root(&self, fresh_initiator: u64, fresh_responder: u64) -> [u8; 16] {
        let mut msg = b"VK-REPROBE".to_vec();
        msg.extend_from_slice(&(self.epoch + 1).to_be_bytes());
        msg.extend_from_slice(&fresh_initiator.to_be_bytes());
        msg.extend_from_slice(&fresh_responder.to_be_bytes());
        let d = hmac_sha256(&self.root, &msg);
        let mut out = [0u8; 16];
        out.copy_from_slice(&d[..16]);
        out
    }

    /// Tag proving knowledge of a candidate root for this channel's next
    /// epoch (what `RekeyConfirm` carries).
    #[must_use]
    pub fn confirm_tag_for(&self, candidate: &[u8; 16]) -> [u8; 32] {
        confirm_tag(candidate, self.session_id, self.epoch + 1)
    }

    /// Install a new root and advance the epoch. Both sequence spaces
    /// reset; all four subkeys are re-derived.
    pub fn advance(&mut self, new_root: [u8; 16]) {
        self.root = new_root;
        self.epoch += 1;
        self.send_seq = 0;
        self.recv_high = None;
        self.rederive();
    }

    /// Seal a payload into an authenticated application frame, consuming
    /// the next send sequence number.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::PayloadTooLarge`] past the frame cap.
    pub fn seal(&mut self, payload: &[u8]) -> Result<LifecycleMessage, LifecycleError> {
        if payload.len() > LifecycleMessage::MAX_APP_CIPHERTEXT {
            return Err(LifecycleError::PayloadTooLarge(payload.len()));
        }
        let seq = self.send_seq;
        self.send_seq += 1;
        let ciphertext = Aes128::new(&self.send_enc).ctr(seq, payload);
        let mac = hmac_sha256(
            &self.send_mac,
            &app_aad(self.session_id, self.epoch, seq, &ciphertext),
        );
        Ok(LifecycleMessage::AppData {
            session_id: self.session_id,
            epoch: self.epoch,
            seq,
            ciphertext,
            mac,
        })
    }

    /// Authenticate and open an inbound application frame.
    ///
    /// A frame at or below the high-water sequence that still verifies is
    /// a retransmission: the payload is returned again with
    /// [`Disposition::Duplicate`] so the caller re-acks identically.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::EpochMismatch`] for frames from another epoch,
    /// [`LifecycleError::MacMismatch`] for tampering,
    /// [`LifecycleError::Malformed`] for non-`AppData` input or a foreign
    /// session id.
    pub fn open(
        &mut self,
        msg: &LifecycleMessage,
    ) -> Result<(Disposition, Vec<u8>), LifecycleError> {
        let LifecycleMessage::AppData {
            session_id,
            epoch,
            seq,
            ciphertext,
            mac,
        } = msg
        else {
            return Err(LifecycleError::Malformed("expected app data"));
        };
        if *session_id != self.session_id {
            return Err(LifecycleError::Malformed("app frame for another session"));
        }
        if *epoch != self.epoch {
            return Err(LifecycleError::EpochMismatch {
                got: *epoch,
                want: self.epoch,
            });
        }
        if !vk_crypto::hmac::verify(
            &self.recv_mac,
            &app_aad(self.session_id, self.epoch, *seq, ciphertext),
            mac,
        ) {
            return Err(LifecycleError::MacMismatch);
        }
        let payload = Aes128::new(&self.recv_enc).ctr(*seq, ciphertext);
        let disposition = match self.recv_high {
            Some(high) if *seq <= high => Disposition::Duplicate,
            _ => {
                self.recv_high = Some(*seq);
                Disposition::Accepted
            }
        };
        Ok((disposition, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let root = core::array::from_fn(|i| i as u8);
        (
            SecureChannel::new(root, 42, ChannelRole::Initiator),
            SecureChannel::new(root, 42, ChannelRole::Responder),
        )
    }

    #[test]
    fn seal_open_round_trips_both_directions() {
        let (mut alice, mut bob) = pair();
        let frame = alice.seal(b"platoon hello").unwrap();
        let (disp, payload) = bob.open(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(payload, b"platoon hello");
        let frame = bob.seal(b"ack ack").unwrap();
        let (disp, payload) = alice.open(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(payload, b"ack ack");
    }

    #[test]
    fn duplicate_delivery_is_duplicate_never_mismatch() {
        let (mut alice, mut bob) = pair();
        let frame = alice.seal(b"once").unwrap();
        let (first, p1) = bob.open(&frame).unwrap();
        let (second, p2) = bob.open(&frame).unwrap();
        assert_eq!(first, Disposition::Accepted);
        assert_eq!(second, Disposition::Duplicate);
        assert_eq!(p1, p2);
    }

    #[test]
    fn directions_do_not_share_keystreams() {
        // Same seq from both sides must not produce related ciphertexts:
        // the directions run separate subkeys.
        let (mut alice, mut bob) = pair();
        let fa = alice.seal(b"same payload").unwrap();
        let fb = bob.seal(b"same payload").unwrap();
        let (
            LifecycleMessage::AppData { ciphertext: ca, .. },
            LifecycleMessage::AppData { ciphertext: cb, .. },
        ) = (&fa, &fb)
        else {
            unreachable!()
        };
        assert_ne!(ca, cb);
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut alice, mut bob) = pair();
        let frame = alice.seal(b"integrity").unwrap();
        let LifecycleMessage::AppData {
            session_id,
            epoch,
            seq,
            mut ciphertext,
            mac,
        } = frame
        else {
            unreachable!()
        };
        ciphertext[0] ^= 1;
        let tampered = LifecycleMessage::AppData {
            session_id,
            epoch,
            seq,
            ciphertext,
            mac,
        };
        assert_eq!(bob.open(&tampered), Err(LifecycleError::MacMismatch));
    }

    #[test]
    fn ratchet_keeps_peers_in_sync_and_rejects_old_epoch() {
        let (mut alice, mut bob) = pair();
        let stale = alice.seal(b"pre-rotation").unwrap();
        let _ = bob.open(&stale).unwrap();
        let next = alice.ratchet_root();
        assert_eq!(next, bob.ratchet_root());
        alice.advance(next);
        bob.advance(next);
        // New epoch traffic flows; sequence spaces restarted.
        let frame = alice.seal(b"post-rotation").unwrap();
        let (disp, payload) = bob.open(&frame).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        assert_eq!(payload, b"post-rotation");
        // A replayed pre-rotation frame is typed as an epoch mismatch,
        // not silently accepted.
        assert_eq!(
            bob.open(&stale),
            Err(LifecycleError::EpochMismatch { got: 0, want: 1 })
        );
    }

    #[test]
    fn reprobe_root_depends_on_both_nonces() {
        let (alice, _) = pair();
        let a = alice.reprobe_root(1, 2);
        let b = alice.reprobe_root(1, 3);
        let c = alice.reprobe_root(4, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, alice.ratchet_root());
    }
}
