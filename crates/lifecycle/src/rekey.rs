//! Leakage-budget-driven key rotation.
//!
//! Privacy amplification (PR 3) measures how many bits of the session's
//! entropy reconciliation leaked, and the exchange carries that debt in
//! its outcome — but nothing ever acts on it. Here a [`RekeyPolicy`]
//! consumes the debt: every application frame spends a configurable
//! number of bits from a per-epoch budget, and when the budget runs out —
//! or the root's effective entropy is below the policy floor to begin
//! with — the initiator schedules a rotation. A root above the floor gets
//! a cheap hash-ratchet refresh; a root dragged under the floor by
//! reconciliation leakage needs fresh randomness, so it is re-probed
//! (both peers contribute fresh nonces and the ledger resets to full
//! entropy).
//!
//! The request → confirm → ack handshake is idempotent the same way the
//! core exchange is: every handler answers a re-delivered frame with the
//! identical reply and reports [`Disposition::Duplicate`], so duplicated
//! or reordered delivery can never leave the two peers on different
//! roots.

use crate::channel::{ack_tag, confirm_tag, SecureChannel};
use crate::error::LifecycleError;
use crate::wire::{LifecycleMessage, RekeyMode, RekeyTrigger};
use vehicle_key::Disposition;

/// When and how a session root is rotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyPolicy {
    /// Bits of the root's entropy the epoch may "spend" on traffic before
    /// a rotation is scheduled.
    pub entropy_budget_bits: u64,
    /// Bits debited from the budget per application frame.
    pub frame_cost_bits: u64,
    /// Roots whose effective entropy (after the reconciliation leakage
    /// debit) is below this floor are re-probed rather than ratcheted —
    /// a ratchet cannot recover entropy that leakage already spent.
    pub reprobe_below_bits: u64,
    /// Hard ceiling on frames per epoch regardless of budget arithmetic.
    pub max_epoch_frames: u64,
}

impl Default for RekeyPolicy {
    fn default() -> Self {
        RekeyPolicy {
            entropy_budget_bits: 4096,
            frame_cost_bits: 32,
            reprobe_below_bits: 96,
            max_epoch_frames: 1 << 20,
        }
    }
}

/// Running account of one session's entropy: what establishment delivered,
/// what reconciliation leaked, and what traffic has spent this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyLedger {
    entropy_bits: u64,
    leaked_bits: u64,
    spent_bits: u64,
    frames: u64,
}

impl RekeyLedger {
    /// Open a ledger from the establishment outcome: the effective
    /// entropy privacy amplification reported and the leakage it debited.
    #[must_use]
    pub fn new(entropy_bits: usize, leaked_bits: usize) -> Self {
        RekeyLedger {
            entropy_bits: entropy_bits as u64,
            leaked_bits: leaked_bits as u64,
            spent_bits: 0,
            frames: 0,
        }
    }

    /// Debit one application frame.
    pub fn on_frame(&mut self, policy: &RekeyPolicy) {
        self.spent_bits = self.spent_bits.saturating_add(policy.frame_cost_bits);
        self.frames += 1;
    }

    /// Should the initiator rotate now, and how?
    #[must_use]
    pub fn decide(&self, policy: &RekeyPolicy) -> Option<(RekeyMode, RekeyTrigger)> {
        if self.entropy_bits < policy.reprobe_below_bits {
            // Leakage (or a short establishment) left the root under the
            // floor: only fresh randomness helps.
            return Some((RekeyMode::Reprobe, RekeyTrigger::Leakage));
        }
        if self.spent_bits >= policy.entropy_budget_bits || self.frames >= policy.max_epoch_frames {
            return Some((RekeyMode::Ratchet, RekeyTrigger::Budget));
        }
        None
    }

    /// Reset for the epoch a completed rotation opened.
    pub fn on_rekey(&mut self, mode: RekeyMode) {
        self.spent_bits = 0;
        self.frames = 0;
        if mode == RekeyMode::Reprobe {
            // A fresh probe delivers a clean full-entropy root.
            self.entropy_bits = 128;
            self.leaked_bits = 0;
        }
    }

    /// Effective entropy of the current root.
    #[must_use]
    pub fn entropy_bits(&self) -> u64 {
        self.entropy_bits
    }

    /// Cumulative reconciliation leakage debt behind the current root.
    #[must_use]
    pub fn leaked_bits(&self) -> u64 {
        self.leaked_bits
    }

    /// Budget spent in the current epoch.
    #[must_use]
    pub fn spent_bits(&self) -> u64 {
        self.spent_bits
    }

    /// Frames carried in the current epoch.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRekey {
    epoch: u32,
    mode: RekeyMode,
    trigger: RekeyTrigger,
    fresh: u64,
}

/// Initiator half of the rotation handshake (the server / RSU).
#[derive(Debug, Default)]
pub struct RekeyInitiator {
    pending: Option<PendingRekey>,
    last_ack: Option<LifecycleMessage>,
}

impl RekeyInitiator {
    /// Fresh state machine with no rotation in flight.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Is a rotation awaiting its confirm?
    #[must_use]
    pub fn in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// Mode and trigger of the rotation in flight, if any.
    #[must_use]
    pub fn pending_info(&self) -> Option<(RekeyMode, RekeyTrigger)> {
        self.pending.map(|p| (p.mode, p.trigger))
    }

    /// Schedule a rotation into `channel.epoch() + 1` and produce the
    /// request frame. Idempotent: while a rotation is in flight, the same
    /// request is returned again (retransmission) regardless of the
    /// arguments.
    pub fn begin(
        &mut self,
        channel: &SecureChannel,
        mode: RekeyMode,
        trigger: RekeyTrigger,
        fresh: u64,
    ) -> LifecycleMessage {
        let p = *self.pending.get_or_insert(PendingRekey {
            epoch: channel.epoch() + 1,
            mode,
            trigger,
            fresh,
        });
        channel.authenticate(LifecycleMessage::RekeyRequest {
            session_id: channel.session_id(),
            epoch: p.epoch,
            mode: p.mode,
            trigger: p.trigger,
            fresh: p.fresh,
            mac: [0; 32],
        })
    }

    /// The in-flight request frame, for timer-driven retransmission.
    #[must_use]
    pub fn request_frame(&self, channel: &SecureChannel) -> Option<LifecycleMessage> {
        self.pending.map(|p| {
            channel.authenticate(LifecycleMessage::RekeyRequest {
                session_id: channel.session_id(),
                epoch: p.epoch,
                mode: p.mode,
                trigger: p.trigger,
                fresh: p.fresh,
                mac: [0; 32],
            })
        })
    }

    /// Handle the responder's `RekeyConfirm`. On acceptance the channel
    /// advances to the new root, the ledger resets, and the returned ack
    /// closes the handshake; a duplicate confirm for the already-installed
    /// epoch re-sends the identical ack.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::MacMismatch`] if the confirm tag does not prove
    /// the candidate root; [`LifecycleError::EpochMismatch`] for a
    /// confirm that matches neither the pending nor the installed epoch.
    pub fn on_confirm(
        &mut self,
        channel: &mut SecureChannel,
        ledger: &mut RekeyLedger,
        epoch: u32,
        fresh_responder: u64,
        check: &[u8; 32],
    ) -> Result<(Disposition, LifecycleMessage), LifecycleError> {
        if let Some(p) = self.pending {
            if epoch == p.epoch {
                let candidate = match p.mode {
                    RekeyMode::Ratchet => channel.ratchet_root(),
                    RekeyMode::Reprobe => channel.reprobe_root(p.fresh, fresh_responder),
                };
                if confirm_tag(&candidate, channel.session_id(), epoch) != *check {
                    return Err(LifecycleError::MacMismatch);
                }
                channel.advance(candidate);
                ledger.on_rekey(p.mode);
                self.pending = None;
                let ack = LifecycleMessage::RekeyAck {
                    session_id: channel.session_id(),
                    epoch,
                    check: ack_tag(&candidate, channel.session_id(), epoch),
                };
                self.last_ack = Some(ack.clone());
                telemetry::counter("lifecycle.rekeys", 1);
                telemetry::counter(
                    match p.mode {
                        RekeyMode::Ratchet => "lifecycle.rekeys.ratchet",
                        RekeyMode::Reprobe => "lifecycle.rekeys.reprobe",
                    },
                    1,
                );
                telemetry::counter(
                    match p.trigger {
                        RekeyTrigger::Budget => "lifecycle.rekeys.budget",
                        RekeyTrigger::Leakage => "lifecycle.rekeys.leakage",
                        RekeyTrigger::Manual => "lifecycle.rekeys.manual",
                    },
                    1,
                );
                return Ok((Disposition::Accepted, ack));
            }
        }
        if epoch == channel.epoch() {
            if let Some(ack) = &self.last_ack {
                // The responder re-sent its confirm because our ack was
                // lost: answer identically.
                return Ok((Disposition::Duplicate, ack.clone()));
            }
        }
        Err(LifecycleError::EpochMismatch {
            got: epoch,
            want: channel.epoch(),
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OfferedRekey {
    epoch: u32,
    mode: RekeyMode,
    fresh_initiator: u64,
    candidate: [u8; 16],
}

/// Responder half of the rotation handshake (the vehicle).
#[derive(Debug, Default)]
pub struct RekeyResponder {
    offered: Option<OfferedRekey>,
    last_confirm: Option<LifecycleMessage>,
}

impl RekeyResponder {
    /// Fresh state machine with no rotation in flight.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Is an offered rotation awaiting its ack? While one is, the
    /// responder must not seal fresh frames — they could land under an
    /// epoch the initiator has already retired.
    #[must_use]
    pub fn in_flight(&self) -> bool {
        self.offered.is_some()
    }

    /// Handle the initiator's `RekeyRequest`, producing the confirm to
    /// send. Duplicated requests — the same `(epoch, mode, fresh)` as the
    /// offer in flight, or a request for the epoch already installed —
    /// are answered with the identical confirm. A request for the offered
    /// epoch with *different* parameters **replaces** the never-acked
    /// offer: the initiator evidently never saw (or could not match) the
    /// old confirm, and pinning the first-seen offer forever would wedge
    /// rotation for the session.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::EpochMismatch`] for a request that skips epochs.
    pub fn on_request(
        &mut self,
        channel: &SecureChannel,
        epoch: u32,
        mode: RekeyMode,
        fresh_initiator: u64,
        my_fresh: u64,
    ) -> Result<(Disposition, LifecycleMessage), LifecycleError> {
        if let Some(o) = self.offered {
            if o.epoch == epoch && o.mode == mode && o.fresh_initiator == fresh_initiator {
                if let Some(confirm) = &self.last_confirm {
                    return Ok((Disposition::Duplicate, confirm.clone()));
                }
            }
        }
        if self.offered.is_none() && epoch == channel.epoch() {
            // Request for an epoch we already installed: the initiator's
            // retransmission raced the install. Re-answer identically so
            // it can re-ack.
            if let Some(confirm) = &self.last_confirm {
                return Ok((Disposition::Duplicate, confirm.clone()));
            }
        }
        if epoch != channel.epoch() + 1 {
            return Err(LifecycleError::EpochMismatch {
                got: epoch,
                want: channel.epoch() + 1,
            });
        }
        let candidate = match mode {
            RekeyMode::Ratchet => channel.ratchet_root(),
            RekeyMode::Reprobe => channel.reprobe_root(fresh_initiator, my_fresh),
        };
        let confirm = LifecycleMessage::RekeyConfirm {
            session_id: channel.session_id(),
            epoch,
            fresh: my_fresh,
            check: channel.confirm_tag_for(&candidate),
        };
        self.offered = Some(OfferedRekey {
            epoch,
            mode,
            fresh_initiator,
            candidate,
        });
        self.last_confirm = Some(confirm.clone());
        Ok((Disposition::Accepted, confirm))
    }

    /// The in-flight confirm frame, for timer-driven retransmission.
    #[must_use]
    pub fn confirm_frame(&self) -> Option<LifecycleMessage> {
        self.offered.and(self.last_confirm.clone())
    }

    /// Handle the initiator's `RekeyAck`: verify it proves the offered
    /// candidate, then install. A duplicate ack for the installed epoch
    /// is reported as such and changes nothing.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::MacMismatch`] if the ack tag does not prove the
    /// candidate; [`LifecycleError::EpochMismatch`] otherwise.
    pub fn on_ack(
        &mut self,
        channel: &mut SecureChannel,
        epoch: u32,
        check: &[u8; 32],
    ) -> Result<Disposition, LifecycleError> {
        if let Some(o) = self.offered {
            if o.epoch == epoch {
                if ack_tag(&o.candidate, channel.session_id(), epoch) != *check {
                    return Err(LifecycleError::MacMismatch);
                }
                channel.advance(o.candidate);
                self.offered = None;
                return Ok(Disposition::Accepted);
            }
        }
        if epoch == channel.epoch() {
            return Ok(Disposition::Duplicate);
        }
        Err(LifecycleError::EpochMismatch {
            got: epoch,
            want: channel.epoch(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelRole;

    fn peers() -> (SecureChannel, SecureChannel) {
        let root = core::array::from_fn(|i| (i as u8).wrapping_mul(17));
        (
            SecureChannel::new(root, 9, ChannelRole::Initiator),
            SecureChannel::new(root, 9, ChannelRole::Responder),
        )
    }

    fn unpack_confirm(msg: &LifecycleMessage) -> (u32, u64, [u8; 32]) {
        match msg {
            LifecycleMessage::RekeyConfirm {
                epoch,
                fresh,
                check,
                ..
            } => (*epoch, *fresh, *check),
            other => panic!("expected confirm, got {other:?}"),
        }
    }

    fn unpack_ack(msg: &LifecycleMessage) -> (u32, [u8; 32]) {
        match msg {
            LifecycleMessage::RekeyAck { epoch, check, .. } => (*epoch, *check),
            other => panic!("expected ack, got {other:?}"),
        }
    }

    fn run_handshake(
        mode: RekeyMode,
        alice: &mut SecureChannel,
        bob: &mut SecureChannel,
        ledger: &mut RekeyLedger,
    ) {
        let mut init = RekeyInitiator::new();
        let mut resp = RekeyResponder::new();
        let req = init.begin(alice, mode, RekeyTrigger::Manual, 111);
        let LifecycleMessage::RekeyRequest {
            epoch, mode, fresh, ..
        } = req
        else {
            panic!("expected request")
        };
        let (_, confirm) = resp.on_request(bob, epoch, mode, fresh, 222).unwrap();
        let (ce, cf, cc) = unpack_confirm(&confirm);
        let (disp, ack) = init.on_confirm(alice, ledger, ce, cf, &cc).unwrap();
        assert_eq!(disp, Disposition::Accepted);
        let (ae, ac) = unpack_ack(&ack);
        assert_eq!(resp.on_ack(bob, ae, &ac).unwrap(), Disposition::Accepted);
    }

    #[test]
    fn ratchet_and_reprobe_handshakes_converge() {
        for mode in [RekeyMode::Ratchet, RekeyMode::Reprobe] {
            let (mut alice, mut bob) = peers();
            let mut ledger = RekeyLedger::new(100, 28);
            run_handshake(mode, &mut alice, &mut bob, &mut ledger);
            assert_eq!(alice.epoch(), 1);
            assert_eq!(bob.epoch(), 1);
            // The rotated channel still carries traffic.
            let frame = alice.seal(b"fresh epoch").unwrap();
            let (disp, payload) = bob.open(&frame).unwrap();
            assert_eq!(disp, Disposition::Accepted);
            assert_eq!(payload, b"fresh epoch");
            if mode == RekeyMode::Reprobe {
                assert_eq!(ledger.entropy_bits(), 128);
                assert_eq!(ledger.leaked_bits(), 0);
            } else {
                assert_eq!(ledger.entropy_bits(), 100);
            }
        }
    }

    #[test]
    fn duplicated_handshake_frames_are_idempotent() {
        let (mut alice, mut bob) = peers();
        let mut ledger = RekeyLedger::new(128, 0);
        let mut init = RekeyInitiator::new();
        let mut resp = RekeyResponder::new();
        let req1 = init.begin(&alice, RekeyMode::Ratchet, RekeyTrigger::Budget, 5);
        let req2 = init.begin(&alice, RekeyMode::Reprobe, RekeyTrigger::Manual, 999);
        assert_eq!(req1, req2, "in-flight request must not change");
        let LifecycleMessage::RekeyRequest {
            epoch, mode, fresh, ..
        } = req1
        else {
            panic!("expected request")
        };
        let (d1, c1) = resp.on_request(&bob, epoch, mode, fresh, 7).unwrap();
        // The request is retransmitted: identical confirm, Duplicate.
        let (d2, c2) = resp.on_request(&bob, epoch, mode, fresh, 1234).unwrap();
        assert_eq!(d1, Disposition::Accepted);
        assert_eq!(d2, Disposition::Duplicate);
        assert_eq!(c1, c2);
        let (ce, cf, cc) = unpack_confirm(&c1);
        let (da, ack1) = init
            .on_confirm(&mut alice, &mut ledger, ce, cf, &cc)
            .unwrap();
        assert_eq!(da, Disposition::Accepted);
        // The confirm is retransmitted after install: identical ack.
        let (db, ack2) = init
            .on_confirm(&mut alice, &mut ledger, ce, cf, &cc)
            .unwrap();
        assert_eq!(db, Disposition::Duplicate);
        assert_eq!(ack1, ack2);
        let (ae, ac) = unpack_ack(&ack1);
        assert_eq!(
            resp.on_ack(&mut bob, ae, &ac).unwrap(),
            Disposition::Accepted
        );
        // The ack is retransmitted after install: Duplicate, no change.
        assert_eq!(
            resp.on_ack(&mut bob, ae, &ac).unwrap(),
            Disposition::Duplicate
        );
        assert_eq!(alice.epoch(), bob.epoch());
        // Late duplicate of the original request after install: the
        // responder re-answers, the initiator re-acks — still in sync.
        let (dl, cl) = resp.on_request(&bob, epoch, mode, fresh, 7).unwrap();
        assert_eq!(dl, Disposition::Duplicate);
        let (cle, clf, clc) = unpack_confirm(&cl);
        let (dm, _) = init
            .on_confirm(&mut alice, &mut ledger, cle, clf, &clc)
            .unwrap();
        assert_eq!(dm, Disposition::Duplicate);
        let frame = alice.seal(b"still in sync").unwrap();
        assert_eq!(bob.open(&frame).unwrap().1, b"still in sync");
    }

    #[test]
    fn differing_request_replaces_a_never_acked_offer() {
        // REVIEW finding: the responder used to pin `offered` to the
        // first request seen for an epoch and replay that confirm for
        // every later same-epoch request, so an injected request with a
        // foreign fresh nonce wedged rotation forever (the genuine
        // initiator could never match the offered candidate). Control
        // MACs stop the injection on the wire; this pins the state
        // machine recovery for the same shape.
        let (mut alice, mut bob) = peers();
        let mut ledger = RekeyLedger::new(128, 0);
        let mut init = RekeyInitiator::new();
        let mut resp = RekeyResponder::new();
        let req = init.begin(&alice, RekeyMode::Reprobe, RekeyTrigger::Manual, 111);
        let LifecycleMessage::RekeyRequest { epoch, .. } = req else {
            panic!("expected request")
        };
        // A divergent request (attacker-chosen fresh, flipped mode)
        // reaches the responder first.
        let (d0, poisoned) = resp
            .on_request(&bob, epoch, RekeyMode::Ratchet, 0xBAAD, 9)
            .unwrap();
        assert_eq!(d0, Disposition::Accepted);
        let (_, _, poisoned_check) = unpack_confirm(&poisoned);
        // Its confirm cannot prove the initiator's candidate…
        assert_eq!(
            init.on_confirm(&mut alice, &mut ledger, epoch, 9, &poisoned_check),
            Err(LifecycleError::MacMismatch)
        );
        // …but the genuine (retransmitted) request replaces the offer
        // instead of replaying the stale confirm, and the handshake
        // completes: rotation is not wedged.
        let (d1, confirm) = resp
            .on_request(&bob, epoch, RekeyMode::Reprobe, 111, 222)
            .unwrap();
        assert_eq!(d1, Disposition::Accepted, "replacement is a new offer");
        let (ce, cf, cc) = unpack_confirm(&confirm);
        let (d2, ack) = init
            .on_confirm(&mut alice, &mut ledger, ce, cf, &cc)
            .unwrap();
        assert_eq!(d2, Disposition::Accepted);
        let (ae, ac) = unpack_ack(&ack);
        assert_eq!(
            resp.on_ack(&mut bob, ae, &ac).unwrap(),
            Disposition::Accepted
        );
        assert_eq!(alice.epoch(), 1);
        assert_eq!(bob.epoch(), 1);
        let frame = alice.seal(b"recovered").unwrap();
        assert_eq!(bob.open(&frame).unwrap().1, b"recovered");
    }

    #[test]
    fn forged_confirm_is_rejected_without_install() {
        let (mut alice, bob) = peers();
        let mut ledger = RekeyLedger::new(128, 0);
        let mut init = RekeyInitiator::new();
        let req = init.begin(&alice, RekeyMode::Ratchet, RekeyTrigger::Budget, 5);
        let LifecycleMessage::RekeyRequest { epoch, .. } = req else {
            panic!("expected request")
        };
        let bogus = [0x5A; 32];
        assert_eq!(
            init.on_confirm(&mut alice, &mut ledger, epoch, 0, &bogus),
            Err(LifecycleError::MacMismatch)
        );
        assert_eq!(alice.epoch(), 0, "forged confirm must not install");
        assert_eq!(alice.epoch(), bob.epoch());
    }

    #[test]
    fn ledger_decides_budget_then_leakage() {
        let policy = RekeyPolicy {
            entropy_budget_bits: 64,
            frame_cost_bits: 32,
            reprobe_below_bits: 96,
            max_epoch_frames: 1000,
        };
        // Healthy root: budget exhaustion schedules a ratchet.
        let mut ledger = RekeyLedger::new(128, 0);
        ledger.on_frame(&policy);
        assert_eq!(ledger.decide(&policy), None);
        ledger.on_frame(&policy);
        assert_eq!(
            ledger.decide(&policy),
            Some((RekeyMode::Ratchet, RekeyTrigger::Budget))
        );
        ledger.on_rekey(RekeyMode::Ratchet);
        assert_eq!(ledger.decide(&policy), None);
        // Leaky root: under the floor, the decision is a re-probe
        // regardless of spend.
        let leaky = RekeyLedger::new(80, 48);
        assert_eq!(
            leaky.decide(&policy),
            Some((RekeyMode::Reprobe, RekeyTrigger::Leakage))
        );
        let mut refreshed = leaky;
        refreshed.on_rekey(RekeyMode::Reprobe);
        assert_eq!(refreshed.entropy_bits(), 128);
        assert_eq!(refreshed.decide(&policy), None);
    }
}
