//! Typed failures of the lifecycle plane.

use std::error::Error;
use std::fmt;
use vehicle_key::group::GroupError;

/// Errors raised by the lifecycle state machines.
///
/// Benign retransmission artifacts are *not* errors: a re-delivered frame
/// surfaces as [`vehicle_key::Disposition::Duplicate`] from the handler
/// that absorbed it, with the identical reply re-sent. These variants
/// cover genuine damage — tampering, truncation, or a peer that has
/// desynchronized beyond what idempotent replies can repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// The buffer did not contain a well-formed lifecycle message.
    Malformed(&'static str),
    /// Unknown message tag (possibly a core-exchange frame; the caller
    /// may retry the other codec).
    UnknownTag(u8),
    /// An authentication tag did not verify: a tampered frame, a wrap for
    /// a different pairwise key, or traffic keyed under an evicted epoch.
    MacMismatch,
    /// The frame's epoch does not match the receiver's.
    EpochMismatch {
        /// Epoch carried by the frame.
        got: u32,
        /// Epoch the receiver is on.
        want: u32,
    },
    /// A wrap addressed to a different member reached this one.
    WrongMember {
        /// Member id carried by the wrap.
        got: u32,
        /// This member's id.
        want: u32,
    },
    /// The plaintext exceeds what one application frame may carry.
    PayloadTooLarge(usize),
    /// A group operation failed below the lifecycle layer.
    Group(GroupError),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Malformed(what) => write!(f, "malformed lifecycle message: {what}"),
            LifecycleError::UnknownTag(t) => write!(f, "unknown lifecycle message tag {t}"),
            LifecycleError::MacMismatch => f.write_str("lifecycle frame failed authentication"),
            LifecycleError::EpochMismatch { got, want } => {
                write!(f, "epoch mismatch: frame at {got}, receiver at {want}")
            }
            LifecycleError::WrongMember { got, want } => {
                write!(f, "wrap addressed to member {got} reached member {want}")
            }
            LifecycleError::PayloadTooLarge(n) => {
                write!(f, "application payload of {n} bytes exceeds the frame cap")
            }
            LifecycleError::Group(e) => write!(f, "group: {e}"),
        }
    }
}

impl Error for LifecycleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LifecycleError::Group(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GroupError> for LifecycleError {
    fn from(e: GroupError) -> Self {
        LifecycleError::Group(e)
    }
}
