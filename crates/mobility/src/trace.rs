//! Time-stamped vehicle trajectories.

use serde::{Deserialize, Serialize};

/// A single sample of a vehicle's state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Time in seconds since the start of the trace.
    pub t: f64,
    /// Position in metres (local Cartesian frame).
    pub x: f64,
    /// Position in metres (local Cartesian frame).
    pub y: f64,
    /// Instantaneous speed in m/s.
    pub speed_ms: f64,
    /// Cumulative travelled distance in metres.
    pub travelled_m: f64,
}

/// A vehicle trajectory sampled on a uniform time grid, linearly
/// interpolated between samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    waypoints: Vec<Waypoint>,
}

impl Trace {
    /// Build a trace from waypoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given or timestamps are not
    /// strictly increasing.
    pub fn new(waypoints: Vec<Waypoint>) -> Self {
        assert!(waypoints.len() >= 2, "a trace needs at least two waypoints");
        assert!(
            waypoints.windows(2).all(|w| w[1].t > w[0].t),
            "waypoints must have strictly increasing timestamps"
        );
        Trace { waypoints }
    }

    /// A static trace (e.g. roadside infrastructure) at `(x, y)` covering
    /// `duration` seconds.
    pub fn stationary(x: f64, y: f64, duration: f64) -> Self {
        Trace::new(vec![
            Waypoint {
                t: 0.0,
                x,
                y,
                speed_ms: 0.0,
                travelled_m: 0.0,
            },
            Waypoint {
                t: duration,
                x,
                y,
                speed_ms: 0.0,
                travelled_m: 0.0,
            },
        ])
    }

    /// The underlying waypoints.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// Duration covered by the trace in seconds.
    pub fn duration(&self) -> f64 {
        self.waypoints.last().unwrap().t
    }

    /// Mean speed over the trace in m/s.
    pub fn mean_speed_ms(&self) -> f64 {
        let total: f64 = self.waypoints.iter().map(|w| w.speed_ms).sum();
        total / self.waypoints.len() as f64
    }

    /// Interpolated state at time `t` (clamped to the trace extent).
    pub fn at(&self, t: f64) -> Waypoint {
        let n = self.waypoints.len();
        if t <= self.waypoints[0].t {
            return self.waypoints[0];
        }
        if t >= self.waypoints[n - 1].t {
            return self.waypoints[n - 1];
        }
        // Binary search for the surrounding segment.
        let idx = self.waypoints.partition_point(|w| w.t <= t).min(n - 1);
        let (a, b) = (self.waypoints[idx - 1], self.waypoints[idx]);
        let frac = (t - a.t) / (b.t - a.t);
        Waypoint {
            t,
            x: a.x + (b.x - a.x) * frac,
            y: a.y + (b.y - a.y) * frac,
            speed_ms: a.speed_ms + (b.speed_ms - a.speed_ms) * frac,
            travelled_m: a.travelled_m + (b.travelled_m - a.travelled_m) * frac,
        }
    }

    /// Euclidean distance in metres between this trace and another at time
    /// `t`.
    pub fn distance_to(&self, other: &Trace, t: f64) -> f64 {
        let a = self.at(t);
        let b = other.at(t);
        ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt()
    }

    /// Magnitude of the relative velocity in m/s between this trace and
    /// another at time `t`, estimated by finite differences over `dt`.
    pub fn relative_speed_to(&self, other: &Trace, t: f64) -> f64 {
        let dt = 0.5;
        let d0 = self.distance_to(other, t);
        let d1 = self.distance_to(other, t + dt);
        ((d1 - d0) / dt).abs()
    }

    /// A time-lagged, laterally offset copy of this trace — the *imitating
    /// attacker*: Eve drives the same route `lag_s` seconds behind with
    /// `offset_m` of lateral displacement.
    pub fn imitated(&self, lag_s: f64, offset_m: f64) -> Trace {
        let waypoints = self
            .waypoints
            .iter()
            .map(|w| Waypoint {
                t: w.t + lag_s,
                x: w.x,
                y: w.y + offset_m,
                speed_ms: w.speed_ms,
                travelled_m: w.travelled_m,
            })
            .collect();
        Trace::new(waypoints)
    }
}

/// Link geometry between two endpoints at an instant — everything the
/// channel model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkGeometry {
    /// Time of the snapshot in seconds.
    pub t: f64,
    /// Distance between the endpoints in metres.
    pub distance_m: f64,
    /// Travelled distance of the (primary) mobile endpoint in metres.
    pub route_pos_m: f64,
    /// Magnitude of the relative speed in m/s.
    pub relative_speed_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_trace(speed: f64, duration: f64) -> Trace {
        let dt = 1.0;
        let n = (duration / dt) as usize + 1;
        Trace::new(
            (0..n)
                .map(|i| {
                    let t = i as f64 * dt;
                    Waypoint {
                        t,
                        x: speed * t,
                        y: 0.0,
                        speed_ms: speed,
                        travelled_m: speed * t,
                    }
                })
                .collect(),
        )
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn rejects_single_waypoint() {
        Trace::new(vec![Waypoint {
            t: 0.0,
            x: 0.0,
            y: 0.0,
            speed_ms: 0.0,
            travelled_m: 0.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_nonmonotonic_time() {
        Trace::new(vec![
            Waypoint {
                t: 0.0,
                x: 0.0,
                y: 0.0,
                speed_ms: 0.0,
                travelled_m: 0.0,
            },
            Waypoint {
                t: 0.0,
                x: 1.0,
                y: 0.0,
                speed_ms: 0.0,
                travelled_m: 1.0,
            },
        ]);
    }

    #[test]
    fn interpolation_is_linear() {
        let tr = straight_trace(10.0, 10.0);
        let w = tr.at(2.5);
        assert!((w.x - 25.0).abs() < 1e-9);
        assert!((w.travelled_m - 25.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_extent() {
        let tr = straight_trace(10.0, 10.0);
        assert_eq!(tr.at(-5.0).x, 0.0);
        assert_eq!(tr.at(100.0).x, 100.0);
    }

    #[test]
    fn distance_between_opposing_traces() {
        let a = straight_trace(10.0, 10.0);
        let b = Trace::stationary(0.0, 300.0, 10.0);
        assert!((a.distance_to(&b, 0.0) - 300.0).abs() < 1e-9);
        let d4 = a.distance_to(&b, 4.0);
        assert!((d4 - (40.0f64.powi(2) + 300.0f64.powi(2)).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn relative_speed_of_co_moving_traces_is_zero() {
        let a = straight_trace(15.0, 20.0);
        let mut b = straight_trace(15.0, 20.0);
        // shift b laterally so the distance is constant
        for w in &mut b.waypoints {
            w.y = 5.0;
        }
        assert!(a.relative_speed_to(&b, 5.0) < 1e-9);
    }

    #[test]
    fn relative_speed_to_static_node() {
        let a = straight_trace(20.0, 30.0);
        let b = Trace::stationary(1e6, 0.0, 30.0); // far ahead on the x axis
        let rel = a.relative_speed_to(&b, 10.0);
        assert!((rel - 20.0).abs() < 0.1, "rel {rel}");
    }

    #[test]
    fn imitated_trace_lags_and_offsets() {
        let a = straight_trace(10.0, 10.0);
        let eve = a.imitated(0.5, 3.0);
        // At time t, Eve is where Alice was at t−0.5, shifted 3 m laterally.
        let wa = a.at(4.5);
        let we = eve.at(5.0);
        assert!((we.x - wa.x).abs() < 1e-9);
        assert!((we.y - (wa.y + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn mean_speed() {
        let tr = straight_trace(12.0, 10.0);
        assert!((tr.mean_speed_ms() - 12.0).abs() < 1e-9);
    }
}
