//! The paper's four experimental scenarios and their trajectory generators.

use crate::trace::{LinkGeometry, Trace, Waypoint};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// The four IoV scenarios of the paper (named M1–M4 in the generalization
/// study, Sec. V-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// M1 — vehicle to infrastructure, urban NLOS.
    V2iUrban,
    /// M2 — vehicle to infrastructure, rural LOS.
    V2iRural,
    /// M3 — vehicle to vehicle, urban NLOS.
    V2vUrban,
    /// M4 — vehicle to vehicle, rural LOS.
    V2vRural,
}

impl ScenarioKind {
    /// All scenarios in the paper's M1..M4 order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::V2iUrban,
        ScenarioKind::V2iRural,
        ScenarioKind::V2vUrban,
        ScenarioKind::V2vRural,
    ];

    /// Whether both endpoints move.
    pub fn is_v2v(self) -> bool {
        matches!(self, ScenarioKind::V2vUrban | ScenarioKind::V2vRural)
    }

    /// Whether the propagation environment is urban.
    pub fn is_urban(self) -> bool {
        matches!(self, ScenarioKind::V2iUrban | ScenarioKind::V2vUrban)
    }

    /// Short model name used in the generalization study (M1–M4).
    pub fn model_name(self) -> &'static str {
        match self {
            ScenarioKind::V2iUrban => "M1",
            ScenarioKind::V2iRural => "M2",
            ScenarioKind::V2vUrban => "M3",
            ScenarioKind::V2vRural => "M4",
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScenarioKind::V2iUrban => "V2I-Urban",
            ScenarioKind::V2iRural => "V2I-Rural",
            ScenarioKind::V2vUrban => "V2V-Urban",
            ScenarioKind::V2vRural => "V2V-Rural",
        };
        f.write_str(s)
    }
}

/// A generated scenario: the Alice/Bob trajectories plus the scenario kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Which of the four experiment settings this is.
    pub kind: ScenarioKind,
    /// Trajectory of Alice (always a vehicle).
    pub alice: Trace,
    /// Trajectory of Bob (vehicle in V2V, static infrastructure in V2I).
    pub bob: Trace,
}

impl Scenario {
    /// Generate a scenario of `duration` seconds at a nominal vehicle speed
    /// of `speed_kmh`.
    ///
    /// In V2V both endpoints drive independent random routes; in V2I Bob is
    /// a rooftop unit and Alice drives. Urban routes include turns and
    /// traffic stops; rural routes are near-straight.
    pub fn generate<R: Rng + ?Sized>(
        kind: ScenarioKind,
        duration: f64,
        speed_kmh: f64,
        rng: &mut R,
    ) -> Self {
        let speed_ms = speed_kmh / 3.6;
        let alice = drive(kind, duration, speed_ms, (0.0, 0.0), rng);
        let bob = if kind.is_v2v() {
            // Start 0.8–2.3 km away driving its own route (the paper: the
            // distance "varies from hundreds of meters to several
            // kilometers"). At these ranges the path-loss trend is gentle,
            // so the RSSI dynamics are dominated by shadowing and fading.
            let offset = 800.0 + rng.random::<f64>() * 1500.0;
            drive(kind, duration, speed_ms, (offset, offset / 3.0), rng)
        } else {
            // Infrastructure on a building roof 0.8–2 km off.
            let d = 800.0 + rng.random::<f64>() * 1200.0;
            Trace::stationary(d, 40.0, duration)
        };
        Scenario { kind, alice, bob }
    }

    /// Link geometry snapshot at time `t`.
    pub fn geometry_at(&self, t: f64) -> LinkGeometry {
        LinkGeometry {
            t,
            distance_m: self.alice.distance_to(&self.bob, t),
            route_pos_m: self.alice.at(t).travelled_m,
            relative_speed_ms: self.alice.relative_speed_to(&self.bob, t),
        }
    }

    /// Mean relative speed over the scenario (drives the Doppler frequency).
    pub fn mean_relative_speed_ms(&self) -> f64 {
        let n = 50;
        let dur = self.alice.duration().min(self.bob.duration());
        (0..n)
            .map(|i| {
                self.alice
                    .relative_speed_to(&self.bob, dur * i as f64 / n as f64)
            })
            .sum::<f64>()
            / n as f64
    }

    /// A platoon scenario: Bob convoys `gap_m` metres behind Alice on the
    /// same route at matched speed. The relative speed is near zero, so the
    /// Doppler — and with it the probe-offset decorrelation — is minimal:
    /// the best case for key generation (and the regime where even pRSSI
    /// schemes start working).
    pub fn platoon<R: Rng + ?Sized>(
        kind: ScenarioKind,
        duration: f64,
        speed_kmh: f64,
        gap_m: f64,
        rng: &mut R,
    ) -> Self {
        let speed_ms = speed_kmh / 3.6;
        let alice = drive(kind, duration, speed_ms, (0.0, 0.0), rng);
        let bob = alice.imitated(gap_m / speed_ms.max(1.0), 0.0);
        Scenario { kind, alice, bob }
    }

    /// The imitating attacker's trajectory: Eve tails Alice `gap_m` metres
    /// behind (converted to a time lag at the nominal speed) with ~3 m of
    /// lateral offset (the next lane).
    pub fn eve_imitating(&self, gap_m: f64) -> Trace {
        let speed = self.alice.mean_speed_ms().max(1.0);
        self.alice.imitated(gap_m / speed, 3.0)
    }
}

/// Generate a driving trace.
fn drive<R: Rng + ?Sized>(
    kind: ScenarioKind,
    duration: f64,
    nominal_speed_ms: f64,
    start: (f64, f64),
    rng: &mut R,
) -> Trace {
    let dt = 0.5;
    let n = (duration / dt).ceil() as usize + 1;
    let mut waypoints = Vec::with_capacity(n);
    let (mut x, mut y) = start;
    let mut heading: f64 = rng.random::<f64>() * std::f64::consts::TAU;
    let mut speed = nominal_speed_ms;
    let mut travelled = 0.0;
    let mut stopped_until = -1.0;
    for i in 0..n {
        let t = i as f64 * dt;
        waypoints.push(Waypoint {
            t,
            x,
            y,
            speed_ms: speed,
            travelled_m: travelled,
        });
        // Speed dynamics: revert to nominal with jitter; urban has stops.
        if kind.is_urban() && t > stopped_until && rng.random::<f64>() < 0.004 {
            // Red light: stop for 5–20 s.
            stopped_until = t + 5.0 + rng.random::<f64>() * 15.0;
        }
        let target = if t < stopped_until {
            0.0
        } else {
            nominal_speed_ms
        };
        speed += (target - speed) * 0.2 + (rng.random::<f64>() - 0.5) * 0.6;
        speed = speed.clamp(0.0, nominal_speed_ms * 1.3);
        // Heading dynamics: urban turns at intersections, rural drift.
        if kind.is_urban() {
            if rng.random::<f64>() < 0.01 {
                let turn = if rng.random::<f64>() < 0.5 { 1.0 } else { -1.0 };
                heading += turn * std::f64::consts::FRAC_PI_2;
            }
        } else {
            heading += (rng.random::<f64>() - 0.5) * 0.02;
        }
        x += speed * heading.cos() * dt;
        y += speed * heading.sin() * dt;
        travelled += speed * dt;
    }
    Trace::new(waypoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn v2i_bob_is_static() {
        let mut rng = StdRng::seed_from_u64(41);
        let s = Scenario::generate(ScenarioKind::V2iUrban, 60.0, 50.0, &mut rng);
        assert_eq!(s.bob.at(0.0).x, s.bob.at(60.0).x);
        assert_eq!(s.bob.mean_speed_ms(), 0.0);
    }

    #[test]
    fn v2v_both_move() {
        let mut rng = StdRng::seed_from_u64(42);
        let s = Scenario::generate(ScenarioKind::V2vRural, 60.0, 50.0, &mut rng);
        assert!(s.alice.at(0.0).travelled_m < s.alice.at(60.0).travelled_m);
        assert!(s.bob.at(0.0).travelled_m < s.bob.at(60.0).travelled_m);
    }

    #[test]
    fn nominal_speed_respected() {
        let mut rng = StdRng::seed_from_u64(43);
        let s = Scenario::generate(ScenarioKind::V2vRural, 120.0, 60.0, &mut rng);
        let mean_kmh = s.alice.mean_speed_ms() * 3.6;
        assert!((mean_kmh - 60.0).abs() < 8.0, "mean speed {mean_kmh} km/h");
    }

    #[test]
    fn urban_trace_includes_stops() {
        let mut rng = StdRng::seed_from_u64(44);
        let s = Scenario::generate(ScenarioKind::V2vUrban, 600.0, 50.0, &mut rng);
        let slow = s
            .alice
            .waypoints()
            .iter()
            .filter(|w| w.speed_ms < 1.0)
            .count();
        assert!(slow > 0, "urban drive should include at least one stop");
    }

    #[test]
    fn geometry_fields_consistent() {
        let mut rng = StdRng::seed_from_u64(45);
        let s = Scenario::generate(ScenarioKind::V2iRural, 60.0, 40.0, &mut rng);
        let g = s.geometry_at(30.0);
        assert!(g.distance_m > 0.0);
        assert!((g.route_pos_m - s.alice.at(30.0).travelled_m).abs() < 1e-9);
    }

    #[test]
    fn v2v_has_higher_relative_speed_than_v2i_on_average() {
        // Over many seeds, two independently-driving vehicles change their
        // separation faster than a vehicle vs. a static node on average in
        // these generators' geometry.
        let mut rng = StdRng::seed_from_u64(46);
        let mut v2v = 0.0;
        let mut v2i = 0.0;
        let runs = 30;
        for _ in 0..runs {
            v2v += Scenario::generate(ScenarioKind::V2vRural, 60.0, 50.0, &mut rng)
                .mean_relative_speed_ms();
            v2i += Scenario::generate(ScenarioKind::V2iRural, 60.0, 50.0, &mut rng)
                .mean_relative_speed_ms();
        }
        assert!(v2v / runs as f64 > 0.0);
        assert!(v2i / runs as f64 > 0.0);
    }

    #[test]
    fn platoon_has_near_zero_relative_speed() {
        let mut rng = StdRng::seed_from_u64(48);
        let platoon = Scenario::platoon(ScenarioKind::V2vRural, 120.0, 60.0, 30.0, &mut rng);
        let free = Scenario::generate(ScenarioKind::V2vRural, 120.0, 60.0, &mut rng);
        assert!(
            platoon.mean_relative_speed_ms() < free.mean_relative_speed_ms() / 2.0,
            "platoon {} vs free {}",
            platoon.mean_relative_speed_ms(),
            free.mean_relative_speed_ms()
        );
        // The convoy gap stays near the commanded distance.
        let d = platoon.geometry_at(60.0).distance_m;
        assert!(d < 120.0, "gap {d}");
    }

    #[test]
    fn eve_tails_alice() {
        let mut rng = StdRng::seed_from_u64(47);
        let s = Scenario::generate(ScenarioKind::V2vRural, 60.0, 50.0, &mut rng);
        let eve = s.eve_imitating(10.0);
        // Eve's position at t ≈ Alice's position ~10 m earlier on the route.
        let lag = 10.0 / s.alice.mean_speed_ms();
        let wa = s.alice.at(30.0 - lag);
        let we = eve.at(30.0);
        let d = ((we.x - wa.x).powi(2) + (we.y - wa.y - 3.0).powi(2)).sqrt();
        assert!(d < 1.0, "eve offset {d}");
    }

    #[test]
    fn kind_helpers() {
        assert!(ScenarioKind::V2vUrban.is_v2v());
        assert!(!ScenarioKind::V2iRural.is_v2v());
        assert!(ScenarioKind::V2iUrban.is_urban());
        assert!(!ScenarioKind::V2vRural.is_urban());
        assert_eq!(ScenarioKind::V2iUrban.model_name(), "M1");
        assert_eq!(ScenarioKind::V2vRural.model_name(), "M4");
        assert_eq!(ScenarioKind::V2vUrban.to_string(), "V2V-Urban");
    }
}
