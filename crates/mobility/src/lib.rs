//! Vehicle mobility substrate for the Vehicle-Key reproduction.
//!
//! Provides the trajectories behind the paper's four experimental scenarios
//! (Sec. II-B / V-A): **V2V** and **V2I** in **urban** and **rural**
//! environments, plus the *imitating attacker* trajectory (Eve tailing Alice
//! a few metres behind) used in the security analysis (Sec. V-H).
//!
//! The downstream channel model needs three things from mobility, all
//! provided by [`Trace`] and [`LinkGeometry`]:
//!
//! * the **link distance** between the endpoints over time (path loss),
//! * the **travelled distance** of the mobile endpoint (spatially-correlated
//!   shadowing),
//! * the **relative speed** of the endpoints (Doppler frequency → coherence
//!   time).
//!
//! # Example
//!
//! ```
//! use mobility::{Scenario, ScenarioKind};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let s = Scenario::generate(ScenarioKind::V2vUrban, 60.0, 50.0, &mut rng);
//! let g = s.geometry_at(30.0);
//! assert!(g.distance_m > 0.0);
//! ```

pub mod churn;
pub mod scenario;
pub mod trace;

pub use churn::{ChurnScenario, MemberPlan};
pub use scenario::{Scenario, ScenarioKind};
pub use trace::{LinkGeometry, Trace, Waypoint};
