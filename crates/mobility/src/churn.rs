//! Deterministic membership-churn plans for platoon experiments.
//!
//! The lifecycle plane (vk-lifecycle / vk-server) needs realistic join and
//! leave schedules to exercise group rekeying: vehicles enter a platoon,
//! ride for a while, and peel off — each departure forcing a group-key
//! rotation that excludes the leaver. This module turns a scenario shape
//! into a concrete per-member plan the bench and CI harnesses replay
//! byte-for-byte: everything derives from the member count and horizon, no
//! RNG, so a failing run is reproducible from its parameters alone.

use std::time::Duration;

/// Membership-churn shapes for a platoon experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnScenario {
    /// A stable highway platoon: everyone joins at the start (staggered
    /// only by ramp-up), and the two trailing vehicles peel off at 40%
    /// and 70% of the horizon.
    Platoon,
    /// A highway crossing: half the members are transient, joining late
    /// and leaving before the horizon ends.
    HighwayCrossing,
    /// An urban canyon: joins spread over the first half, and every
    /// third vehicle drops out early (short parking / turn-offs).
    UrbanCanyon,
}

/// One member's schedule within a churn plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberPlan {
    /// Index of this member within the plan (0-based).
    pub member_index: usize,
    /// When the member connects, relative to the experiment start.
    pub join_at: Duration,
    /// When the member departs gracefully; `None` rides to the horizon.
    pub leave_at: Option<Duration>,
    /// Application frames the member pushes while connected.
    pub app_frames: u32,
}

impl ChurnScenario {
    /// Build the deterministic plan for `members` vehicles over `horizon`.
    ///
    /// Invariants every scenario upholds: joins are staggered (no two
    /// members share a join instant), every `leave_at` is strictly after
    /// its `join_at` and strictly before `horizon`, and at least one
    /// member stays to the end (the platoon never empties early).
    #[must_use]
    pub fn plan(self, members: usize, horizon: Duration) -> Vec<MemberPlan> {
        let stagger = horizon / (4 * members.max(1) as u32);
        (0..members)
            .map(|i| {
                let join_at = stagger * i as u32;
                let (join_at, leave_at, app_frames) = match self {
                    ChurnScenario::Platoon => {
                        // The two trailing vehicles peel off mid-run.
                        let leave_at = if members >= 2 && i == members - 1 {
                            Some(horizon.mul_f64(0.4))
                        } else if members >= 3 && i == members - 2 {
                            Some(horizon.mul_f64(0.7))
                        } else {
                            None
                        };
                        (join_at, leave_at, 8)
                    }
                    ChurnScenario::HighwayCrossing => {
                        if i % 2 == 1 {
                            // Transient: joins in the middle third, gone
                            // well before the end.
                            let join_at = horizon.mul_f64(0.33) + stagger * i as u32;
                            (join_at, Some(join_at + horizon.mul_f64(0.25)), 4)
                        } else {
                            (join_at, None, 8)
                        }
                    }
                    ChurnScenario::UrbanCanyon => {
                        let join_at = horizon.mul_f64(0.5) * i as u32 / members.max(1) as u32;
                        let leave_at = (i % 3 == 2 && i != 0)
                            .then(|| join_at + horizon.mul_f64(0.2) + stagger);
                        (join_at, leave_at, 6)
                    }
                };
                MemberPlan {
                    member_index: i,
                    join_at,
                    leave_at,
                    app_frames,
                }
            })
            .collect()
    }

    /// How many members the plan departs before the horizon.
    #[must_use]
    pub fn leavers(self, members: usize, horizon: Duration) -> usize {
        self.plan(members, horizon)
            .iter()
            .filter(|m| m.leave_at.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIOS: [ChurnScenario; 3] = [
        ChurnScenario::Platoon,
        ChurnScenario::HighwayCrossing,
        ChurnScenario::UrbanCanyon,
    ];

    #[test]
    fn plans_are_deterministic() {
        let horizon = Duration::from_secs(60);
        for s in SCENARIOS {
            assert_eq!(s.plan(8, horizon), s.plan(8, horizon));
        }
    }

    #[test]
    fn invariants_hold_across_sizes() {
        let horizon = Duration::from_secs(30);
        for s in SCENARIOS {
            for members in 1..=12 {
                let plan = s.plan(members, horizon);
                assert_eq!(plan.len(), members);
                assert!(
                    plan.iter().any(|m| m.leave_at.is_none()),
                    "{s:?}/{members}: someone must ride to the horizon"
                );
                for m in &plan {
                    assert!(m.app_frames > 0);
                    if let Some(leave) = m.leave_at {
                        assert!(leave > m.join_at, "{s:?}/{members}: {m:?}");
                        assert!(leave < horizon, "{s:?}/{members}: {m:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn platoon_has_two_leavers_at_eight() {
        let horizon = Duration::from_secs(60);
        let plan = ChurnScenario::Platoon.plan(8, horizon);
        assert_eq!(ChurnScenario::Platoon.leavers(8, horizon), 2);
        assert_eq!(plan[7].leave_at, Some(horizon.mul_f64(0.4)));
        assert_eq!(plan[6].leave_at, Some(horizon.mul_f64(0.7)));
        // Joins stagger: strictly increasing.
        for w in plan.windows(2) {
            assert!(w[0].join_at < w[1].join_at);
        }
    }
}
