//! Readiness polling for the reactor core: a hand-rolled `epoll(7)` shim
//! with a portable `poll(2)` fallback, std-only.
//!
//! The reactor in [`reactor`](crate::reactor) multiplexes thousands of
//! non-blocking sockets per shard thread. Rust's standard library exposes
//! no readiness API, and this workspace deliberately carries no external
//! crates, so the two syscalls are declared directly against the C symbols
//! the std runtime already links:
//!
//! * **epoll** (Linux): one `epoll_create1` instance per [`Poller`];
//!   registrations are O(1) and `epoll_wait` returns only ready
//!   descriptors, so a shard holding 10 000 idle sessions costs nothing
//!   per wakeup. Level-triggered — the reactor reads until `WouldBlock`,
//!   so a frame left half-consumed re-arms on the next wait.
//! * **poll(2)** (everywhere else, and selectable for tests): the
//!   registration table is replayed into a `pollfd` array per wait. O(n)
//!   per call, but n is bounded by the shard's session count and the
//!   semantics are identical.
//!
//! Both backends surface the same [`Event`] shape: a caller-chosen
//! [`Token`] plus readable/writable/hangup edges. [`Waker`] gives other
//! threads a way to interrupt a blocked `wait` — a nonblocking socketpair
//! whose read side the poller drains internally before reporting the
//! waker's token.
//!
//! Nothing here parses attacker bytes, but the module sits on the wire
//! path, so it is in the `wire-safety` lint scope: casts at the FFI
//! boundary go through `try_from` with saturation, and the event buffers
//! are walked with iterators, never indexed.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Caller-chosen identity attached to a registration and echoed back in
/// every [`Event`] for it. The reactor packs a shard-local session slot
/// into it; the poller never interprets the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Which readiness edges a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor has bytes (or a close) to read.
    pub readable: bool,
    /// Wake when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-side readiness only — the steady state of a reactor session.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-side readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both edges — used while a session has backlogged outbound frames.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: Token,
    /// Bytes (or EOF) are available to read. Error and hangup conditions
    /// set this too, so a reader discovers them as `read` results instead
    /// of silently stalling.
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// The peer closed or the descriptor errored (`EPOLLHUP`/`EPOLLERR`,
    /// `POLLHUP`/`POLLERR`).
    pub hangup: bool,
}

/// Handle for interrupting a blocked [`Poller::wait`] from another
/// thread. Cheap to clone-by-hand (it is one socket); `wake` is lossy on
/// a full buffer by design — one pending byte is enough to wake.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Interrupt the poller this waker was created from. The blocked
    /// `wait` returns an [`Event`] carrying the waker's token.
    pub fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; losing the
        // extra byte is the desired coalescing.
        let _ = (&self.tx).write(&[1u8]);
    }

    /// A second handle on the same wake channel (`dup(2)` underneath), so
    /// several threads can each hold their own interruptor.
    ///
    /// # Errors
    ///
    /// Propagates descriptor duplication failure.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }
}

mod sys_listen {
    //! FFI surface for `listen(2)`, used to re-arm an already-listening
    //! socket with a deeper accept backlog.

    extern "C" {
        pub fn listen(fd: i32, backlog: i32) -> i32;
    }
}

/// Deepen the accept backlog of an already-listening socket.
///
/// `std::net::TcpListener::bind` hard-codes `listen(fd, 128)`. A reactor
/// accepting thousands of near-simultaneous connections overflows that
/// queue, and overflow on loopback means dropped SYNs and whole-second
/// connect stalls while the peer's kernel retransmits. POSIX allows
/// calling `listen` again on a listening socket to update the backlog, so
/// this is a plain re-arm — no socket needs to be hand-built.
///
/// # Errors
///
/// Propagates the `listen(2)` failure.
pub fn widen_backlog(fd: RawFd, backlog: u32) -> io::Result<()> {
    let depth = i32::try_from(backlog).unwrap_or(i32::MAX);
    // SAFETY: plain syscall on a caller-owned descriptor, no pointers.
    let rc = unsafe { sys_listen::listen(fd, depth) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Round a timeout up to whole milliseconds for the syscalls (`None`
/// blocks forever). Rounding *up* keeps a 100µs deadline from spinning
/// through zero-timeout waits.
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_nanos().div_ceil(1_000_000);
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    //! FFI surface for `epoll(7)`, declared against the glibc symbols the
    //! std runtime links. Constants match `<sys/epoll.h>`.

    /// Kernel's event record. glibc packs it on x86-64 (the kernel ABI
    /// there has no padding); field reads below copy by value, never by
    /// reference, so the unaligned layout is safe to touch.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

mod sys_poll {
    //! FFI surface for POSIX `poll(2)`. Constants match `<poll.h>` on
    //! every platform this workspace targets.

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        // `nfds_t` is `unsigned long`; this workspace only targets 64-bit
        // unix, where that is u64.
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }
}

/// Maximum events drained per `epoll_wait` call. Ready descriptors past
/// this bound are reported on the next wait — level triggering keeps them
/// armed.
const EVENT_BATCH: usize = 1024;

#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: RawFd,
    /// Reused kernel-event buffer; the kernel overwrites the first `n`
    /// entries each wait.
    buf: Vec<sys_epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend {
            epfd,
            buf: vec![sys_epoll::EpollEvent { events: 0, data: 0 }; EVENT_BATCH],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys_epoll::EPOLLRDHUP;
        if interest.readable {
            m |= sys_epoll::EPOLLIN;
        }
        if interest.writable {
            m |= sys_epoll::EPOLLOUT;
        }
        m
    }

    fn ctl(&mut self, op: i32, fd: RawFd, interest: Interest) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::mask(interest),
            data: 0,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event pointer
        // on every kernel this runs on, but a valid one is passed anyway
        // for pre-2.6.9 compatibility.
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::mask(interest),
            data: token.0,
        };
        // SAFETY: `ev` outlives the call.
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd, sys_epoll::EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::mask(interest),
            data: token.0,
        };
        // SAFETY: `ev` outlives the call.
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd, sys_epoll::EPOLL_CTL_MOD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let cap = i32::try_from(self.buf.len()).unwrap_or(i32::MAX);
        // SAFETY: the buffer holds `buf.len()` initialized records and the
        // kernel writes at most `cap` of them.
        let n = unsafe {
            sys_epoll::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                cap,
                timeout_millis(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        let n = usize::try_from(n).unwrap_or(0);
        for ev in self.buf.iter().take(n) {
            // Copy fields by value — the struct is packed on x86-64 and
            // references into it would be unaligned.
            let bits = ev.events;
            let data = ev.data;
            let hangup =
                bits & (sys_epoll::EPOLLHUP | sys_epoll::EPOLLERR | sys_epoll::EPOLLRDHUP) != 0;
            events.push(Event {
                token: Token(data),
                readable: bits & sys_epoll::EPOLLIN != 0 || hangup,
                writable: bits & sys_epoll::EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: `epfd` is a live descriptor owned by this struct.
        unsafe { sys_epoll::close(self.epfd) };
    }
}

/// Portable backend: registrations live in a map replayed into a `pollfd`
/// array on each wait.
#[derive(Default)]
struct PollBackend {
    table: BTreeMap<RawFd, (Token, Interest)>,
    /// Reused `pollfd` scratch array.
    fds: Vec<sys_poll::PollFd>,
}

impl PollBackend {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if self.table.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.table.insert(fd, (token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match self.table.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.table.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.fds.clear();
        for (&fd, &(_, interest)) in &self.table {
            let mut mask = 0i16;
            if interest.readable {
                mask |= sys_poll::POLLIN;
            }
            if interest.writable {
                mask |= sys_poll::POLLOUT;
            }
            self.fds.push(sys_poll::PollFd {
                fd,
                events: mask,
                revents: 0,
            });
        }
        let nfds = u64::try_from(self.fds.len()).unwrap_or(u64::MAX);
        // SAFETY: the array holds `nfds` initialized records for the call's
        // duration.
        let n = unsafe { sys_poll::poll(self.fds.as_mut_ptr(), nfds, timeout_millis(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for pfd in &self.fds {
            if pfd.revents == 0 {
                continue;
            }
            let Some(&(token, _)) = self.table.get(&pfd.fd) else {
                continue;
            };
            let hangup = pfd.revents & (sys_poll::POLLHUP | sys_poll::POLLERR) != 0;
            events.push(Event {
                token,
                readable: pfd.revents & sys_poll::POLLIN != 0 || hangup,
                writable: pfd.revents & sys_poll::POLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(PollBackend),
}

/// Readiness selector over raw descriptors: epoll on Linux, `poll(2)`
/// elsewhere (or explicitly via [`Poller::with_poll_fallback`]).
pub struct Poller {
    backend: Backend,
    /// Read sides of waker socketpairs, drained internally when their
    /// token fires.
    wakers: Vec<(Token, UnixStream)>,
}

impl Poller {
    /// Open a poller on the platform's best backend.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (descriptor exhaustion).
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                backend: Backend::Epoll(EpollBackend::new()?),
                wakers: Vec::new(),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::with_poll_fallback()
        }
    }

    /// Open a poller on the portable `poll(2)` backend regardless of
    /// platform — the fallback path, kept testable everywhere.
    ///
    /// # Errors
    ///
    /// Infallible today; the signature matches [`Poller::new`] so callers
    /// can switch backends without restructuring.
    pub fn with_poll_fallback() -> io::Result<Self> {
        Ok(Poller {
            backend: Backend::Poll(PollBackend::default()),
            wakers: Vec::new(),
        })
    }

    /// Name of the active backend, for telemetry and bench manifests.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` with the given token and interest. The caller
    /// keeps ownership of the descriptor and must [`deregister`] before
    /// closing it.
    ///
    /// [`deregister`]: Poller::deregister
    ///
    /// # Errors
    ///
    /// `AlreadyExists` when the descriptor is already registered;
    /// propagates syscall failures.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.register(fd, token, interest),
            Backend::Poll(b) => b.register(fd, token, interest),
        }
    }

    /// Change an existing registration's token or interest.
    ///
    /// # Errors
    ///
    /// `NotFound` when the descriptor was never registered; propagates
    /// syscall failures.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.reregister(fd, token, interest),
            Backend::Poll(b) => b.reregister(fd, token, interest),
        }
    }

    /// Stop watching `fd`. Must precede closing the descriptor — a closed
    /// fd silently vanishes from epoll but would poison the fallback's
    /// table.
    ///
    /// # Errors
    ///
    /// `NotFound` when the descriptor was never registered; propagates
    /// syscall failures.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.ctl(sys_epoll::EPOLL_CTL_DEL, fd, Interest::default()),
            Backend::Poll(b) => b.deregister(fd),
        }
    }

    /// Create a [`Waker`] that interrupts this poller's `wait`, reporting
    /// `token`. The socketpair's read side is registered and drained
    /// internally.
    ///
    /// # Errors
    ///
    /// Propagates socketpair/registration failures.
    pub fn add_waker(&mut self, token: Token) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        {
            use std::os::unix::io::AsRawFd;
            self.register(rx.as_raw_fd(), token, Interest::READABLE)?;
        }
        self.wakers.push((token, rx));
        Ok(Waker { tx })
    }

    /// Block until readiness, a waker, or the timeout (`None` blocks
    /// indefinitely). `events` is cleared and refilled; an empty result
    /// means the timeout elapsed (or a signal interrupted the wait).
    ///
    /// # Errors
    ///
    /// Propagates syscall failures other than `EINTR`.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            // vk-lint: allow(reactor-blocking, "Poller::wait IS the reactor's single sanctioned blocking point; the shard passes a wheel-derived timeout")
            Backend::Epoll(b) => b.wait(events, timeout)?,
            // vk-lint: allow(reactor-blocking, "portable backend of the same sanctioned blocking point")
            Backend::Poll(b) => b.wait(events, timeout)?,
        }
        // Drain any waker bytes so a level-triggered backend does not
        // re-report a stale wake forever.
        for ev in events.iter() {
            if let Some((_, rx)) = self.wakers.iter().find(|(t, _)| *t == ev.token) {
                let mut sink = [0u8; 64];
                while matches!((&*rx).read(&mut sink), Ok(n) if n > 0) {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::with_poll_fallback().unwrap()];
        if cfg!(target_os = "linux") {
            v.push(Poller::new().unwrap());
        }
        v
    }

    fn connected_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_event_carries_the_registered_token() {
        for mut poller in backends() {
            let (mut client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), Token(42), Interest::READABLE)
                .unwrap();

            let mut events = Vec::new();
            // Nothing pending: the wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: spurious event",
                poller.backend_name()
            );

            client.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, Token(42));
            assert!(events[0].readable);
        }
    }

    #[test]
    fn writable_interest_fires_on_a_fresh_socket() {
        for mut poller in backends() {
            let (_client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), Token(7), Interest::BOTH)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == Token(7) && e.writable),
                "{}: fresh socket must be writable",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn peer_close_surfaces_as_readable_hangup() {
        for mut poller in backends() {
            let (client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), Token(3), Interest::READABLE)
                .unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == Token(3)).expect("event");
            // A close is at minimum readable (read returns 0); epoll also
            // flags RDHUP.
            assert!(ev.readable);
        }
    }

    #[test]
    fn deregistered_fd_stays_silent() {
        for mut poller in backends() {
            let (mut client, server) = connected_pair();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), Token(9), Interest::READABLE)
                .unwrap();
            poller.deregister(server.as_raw_fd()).unwrap();
            client.write_all(b"x").unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: deregistered fd produced an event",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        for mut poller in backends() {
            let waker = poller.add_waker(Token(u64::MAX)).unwrap();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
                waker
            });
            let started = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let woke_after = started.elapsed();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, Token(u64::MAX));
            assert!(
                woke_after < Duration::from_secs(4),
                "{}: wait ran to timeout instead of waking",
                poller.backend_name()
            );
            // The wake byte was drained: the next wait is quiet again.
            let _waker = handle.join().unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: stale waker byte re-fired",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn timeout_expires_close_to_the_requested_window() {
        for mut poller in backends() {
            let started = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(40)))
                .unwrap();
            assert!(events.is_empty());
            assert!(
                started.elapsed() >= Duration::from_millis(35),
                "{}: returned early",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn double_register_is_rejected_and_reregister_swaps_the_token() {
        // Semantics assertions on the table-backed fallback (epoll enforces
        // the same through EEXIST/ENOENT).
        let mut poller = Poller::with_poll_fallback().unwrap();
        let (mut client, server) = connected_pair();
        server.set_nonblocking(true).unwrap();
        poller
            .register(server.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        assert!(poller
            .register(server.as_raw_fd(), Token(2), Interest::READABLE)
            .is_err());
        poller
            .reregister(server.as_raw_fd(), Token(2), Interest::READABLE)
            .unwrap();
        client.write_all(b"y").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events[0].token, Token(2));
        assert!(poller.deregister(999_999).is_err());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_to_zero() {
        assert_eq!(timeout_millis(None), -1);
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_millis(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(8))), 8);
        assert_eq!(timeout_millis(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
