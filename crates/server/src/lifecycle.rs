//! The key lifecycle plane: what happens to a session *after* key
//! confirmation.
//!
//! [`serve_session_keyed`](crate::session::serve_session_keyed) ends with
//! both peers holding the same confirmed 128-bit root. This module keeps
//! the connection alive and promotes that root into `vk-lifecycle`'s
//! authenticated application channel, then runs three intertwined loops
//! over the same length-prefixed transport:
//!
//! * **Application traffic** — the client seals frames on its
//!   [`SecureChannel`]; the server opens them, acks every accepted *and*
//!   duplicated frame identically, and never acks a frame that fails
//!   authentication.
//! * **Leakage-driven rotation** — the server feeds the establishment's
//!   entropy/leakage outcome into a [`RekeyLedger`] and debits it per
//!   frame; when the [`RekeyPolicy`] trips, it schedules a ratchet or
//!   re-probe over the wire. Epoch transitions are made retransmission
//!   safe by remembering the previous epoch's receive high-water mark:
//!   a stale-epoch duplicate is re-acked under its own epoch, never
//!   surfaced as a key mismatch.
//! * **Group keys** — every confirmed session joins the shared
//!   [`GroupPlane`] (the RSU's [`GroupCoordinator`] behind a lock); each
//!   serving thread watches the group epoch and re-wraps the current
//!   group key for its own member whenever a departure rotates it, so
//!   no cross-thread frame routing is needed. A graceful `Leave` — or an
//!   abrupt disconnect — evicts the member and forces a group rekey that
//!   excludes it.
//!
//! The client half ([`run_bob_lifecycle`]) mirrors the discipline: it
//! stops sealing new frames while a rotation it confirmed is awaiting its
//! ack (a frame sealed under a retiring epoch might never be processed),
//! and re-seals any unacknowledged frame under the new epoch once the
//! rotation installs — at-least-once delivery across rotations.

use crate::session::{SessionError, SessionHandoff, SessionParams};
use crate::sim::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vehicle_key::{Disposition, Message, ProtocolError, Transport, TransportError};
use vk_lifecycle::{
    ChannelRole, GroupCoordinator, LifecycleError, LifecycleMessage, RekeyInitiator, RekeyLedger,
    RekeyResponder, SecureChannel,
};

pub use vk_lifecycle::{GroupMember, RekeyMode, RekeyPolicy, RekeyTrigger};

/// Canonical payload both benches and tests tag under the group key to
/// audit agreement: every member holding the genuine key for an epoch
/// produces the coordinator's tag for that epoch, and nobody else can.
pub const AGREEMENT_PAYLOAD: &[u8] = b"vk-lifecycle-agreement";

/// Withheld-frame budget for the post-handoff phase; a peer persistently
/// sending unauthenticated garbage is disconnected past it.
const REJECT_BUDGET: u64 = 256;

/// Server-side lifecycle options (carried in
/// [`ServerConfig`](crate::server::ServerConfig)).
#[derive(Debug, Clone, Copy)]
pub struct LifecycleConfig {
    /// When and how session roots rotate.
    pub rekey: RekeyPolicy,
    /// Run the platoon group-key plane (every confirmed session joins;
    /// departures force a group rekey).
    pub group: bool,
    /// Hard wall-clock bound on the post-handoff phase of one session.
    pub max_duration: Duration,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            rekey: RekeyPolicy::default(),
            group: true,
            max_duration: Duration::from_secs(30),
        }
    }
}

/// The shared RSU group coordinator, locked for concurrent session
/// threads. Every accessor takes the lock briefly and never holds it
/// across transport I/O, so a stalled session cannot block the plane.
pub struct GroupPlane {
    inner: Mutex<GroupCoordinator>,
}

impl std::fmt::Debug for GroupPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupPlane").finish_non_exhaustive()
    }
}

impl GroupPlane {
    /// A plane around a coordinator seeded with `master`.
    #[must_use]
    pub fn new(master: [u8; 32]) -> Self {
        GroupPlane {
            inner: Mutex::new(GroupCoordinator::new(master)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GroupCoordinator> {
        // A panic while holding the lock poisons it; the coordinator's
        // state stays internally consistent (every mutation is a single
        // call), so absorb the poison rather than cascading panics.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Current group epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.lock().epoch()
    }

    /// Live member count.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.lock().member_count()
    }

    /// Has every live member acknowledged the current epoch?
    #[must_use]
    pub fn all_acked(&self) -> bool {
        self.lock().all_acked()
    }

    /// Admit a member and return `(group_epoch, wrap)` for it.
    pub fn join(
        &self,
        member_id: u32,
        pairwise: [u8; 16],
        session_id: u32,
    ) -> (u32, LifecycleMessage) {
        let mut g = self.lock();
        let wrap = g.join(member_id, pairwise, session_id);
        (g.epoch(), wrap)
    }

    /// Evict a member (idempotent), reporting whether it was present —
    /// and therefore whether the epoch rotated. Other sessions pick the
    /// rotation up from their own epoch watch, so the re-wraps the
    /// coordinator computes are deliberately dropped here.
    pub fn evict(&self, member_id: u32) -> bool {
        let mut g = self.lock();
        let present = g.contains(member_id);
        let _ = g.leave(member_id);
        present
    }

    /// `(group_epoch, wrap)` of the current epoch for one member, if it
    /// is live.
    pub fn wrap_for(&self, member_id: u32, session_id: u32) -> Option<(u32, LifecycleMessage)> {
        let mut g = self.lock();
        let wrap = g.wrap_for(member_id, session_id)?;
        Some((g.epoch(), wrap))
    }

    /// Record a member's epoch acknowledgement; the ack tag must prove
    /// the claimed epoch's group material. The latency is present on the
    /// ack completing the member set (see [`GroupCoordinator::on_ack`]).
    ///
    /// # Errors
    ///
    /// [`LifecycleError::MacMismatch`] for a forged ack.
    pub fn on_ack(
        &self,
        member_id: u32,
        group_epoch: u32,
        mac: &[u8; 32],
    ) -> Result<(Disposition, Option<f64>), LifecycleError> {
        self.lock().on_ack(member_id, group_epoch, mac)
    }

    /// Has `member_id` acknowledged the current epoch?
    #[must_use]
    pub fn member_acked_current(&self, member_id: u32) -> bool {
        self.lock().member_acked_current(member_id)
    }

    /// The coordinator's authentication tag for `payload` under an
    /// epoch's group key — the agreement oracle benches compare members
    /// against.
    #[must_use]
    pub fn broadcast_tag_for_epoch(&self, epoch: u32, payload: &[u8]) -> [u8; 32] {
        self.lock().broadcast_tag_for_epoch(epoch, payload)
    }
}

/// Shared atomic counters for the lifecycle plane, aggregated across all
/// session threads (the per-process mirror of the `lifecycle.*` telemetry
/// counters, usable without a sink installed).
#[derive(Debug, Default)]
pub struct LifecycleStats {
    /// Sessions that entered the lifecycle phase.
    pub sessions: AtomicU64,
    /// Application frames accepted.
    pub app_frames: AtomicU64,
    /// Duplicate lifecycle frames re-answered idempotently.
    pub duplicate_frames: AtomicU64,
    /// Frames withheld (failed authentication or out of place).
    pub rejected_frames: AtomicU64,
    /// Completed rotations, any mode.
    pub rekeys: AtomicU64,
    /// Completed hash-ratchet rotations.
    pub ratchets: AtomicU64,
    /// Completed re-probe rotations.
    pub reprobes: AtomicU64,
    /// Rotations triggered by budget exhaustion.
    pub budget_rekeys: AtomicU64,
    /// Rotations triggered by reconciliation leakage.
    pub leakage_rekeys: AtomicU64,
    /// Members that departed gracefully (`Leave`/`LeaveAck`).
    pub graceful_leaves: AtomicU64,
    /// Members evicted on abrupt disconnect.
    pub evictions: AtomicU64,
    /// Lifecycle phases that ended in a transport/protocol error.
    pub errors: AtomicU64,
    agreement_ms: Mutex<Vec<f64>>,
}

impl LifecycleStats {
    /// Record one group agreement latency sample (epoch opened → last
    /// member acked).
    pub fn record_agreement(&self, ms: f64) {
        self.agreement_ms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ms);
    }

    /// All agreement latency samples recorded so far.
    #[must_use]
    pub fn agreement_samples(&self) -> Vec<f64> {
        self.agreement_ms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// Server-side result of one session's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleServeOutcome {
    /// Application frames accepted.
    pub app_frames: u64,
    /// Duplicate frames re-answered idempotently.
    pub duplicate_frames: u64,
    /// Frames withheld.
    pub rejected_frames: u64,
    /// Rotations completed on this session.
    pub rekeys: u32,
    /// Channel epoch at the end of the phase.
    pub final_epoch: u32,
    /// Whether the client departed gracefully (`Leave` handshake).
    pub left: bool,
}

/// Client-side lifecycle behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientLifecycleCfg {
    /// Application frames to send (each awaited until acked).
    pub app_frames: u32,
    /// After the last ack, stay connected this long — receiving group
    /// rotations — before departing.
    pub hold: Duration,
    /// Depart gracefully (`Leave`/`LeaveAck`) instead of just closing.
    pub leave: bool,
    /// Participate in the group plane (install wraps, ack epochs).
    pub group: bool,
}

impl Default for ClientLifecycleCfg {
    fn default() -> Self {
        ClientLifecycleCfg {
            app_frames: 8,
            hold: Duration::from_millis(200),
            leave: true,
            group: true,
        }
    }
}

/// Client-side result of the lifecycle phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BobLifecycleOutcome {
    /// Application frames acknowledged.
    pub app_frames_acked: u32,
    /// Rotations installed, any mode.
    pub rekeys: u32,
    /// Hash-ratchet rotations installed.
    pub ratchets: u32,
    /// Re-probe rotations installed.
    pub reprobes: u32,
    /// Channel epoch at the end of the phase.
    pub final_epoch: u32,
    /// Last group epoch installed (0 = never joined the group plane).
    pub group_epoch: u32,
    /// Distinct group epochs installed.
    pub group_installs: u32,
    /// Tag over [`AGREEMENT_PAYLOAD`] under the last installed group key
    /// (the member's side of the agreement audit).
    pub group_tag: Option<[u8; 32]>,
    /// Whether the departure was acknowledged.
    pub left: bool,
    /// Frames retransmitted (app frames and the leave).
    pub retransmissions: u32,
}

/// Run the server side of the lifecycle phase over an established,
/// confirmed session. Consumes the [`SessionHandoff`] the keyed exchange
/// produced; `entropy_bits`/`leaked_bits` seed the rotation ledger from
/// the establishment outcome. When `plane` is given, the session joins
/// the group and is evicted on exit — graceful or not.
///
/// # Errors
///
/// [`SessionError`] on transport failure or a peer exceeding the
/// rejection budget. The member is evicted from the group plane on every
/// exit path.
#[allow(clippy::too_many_arguments)]
pub fn serve_lifecycle<T: Transport>(
    transport: &mut T,
    session_id: u32,
    handoff: &SessionHandoff,
    entropy_bits: usize,
    leaked_bits: usize,
    config: &LifecycleConfig,
    params: &SessionParams,
    plane: Option<&GroupPlane>,
    stats: &LifecycleStats,
    fresh_seed: u64,
) -> Result<LifecycleServeOutcome, SessionError> {
    stats.sessions.fetch_add(1, Ordering::Relaxed);
    telemetry::counter("lifecycle.sessions", 1);
    let result = serve_lifecycle_inner(
        transport,
        session_id,
        handoff,
        entropy_bits,
        leaked_bits,
        config,
        params,
        plane,
        stats,
        fresh_seed,
    );
    match &result {
        // Graceful departures evicted themselves in the Leave arm; an
        // ended-without-leave session (deadline, disconnect, error) is
        // evicted here so a dead member can never pin the group epoch.
        Ok(outcome) if !outcome.left => {
            if plane.is_some_and(|p| p.evict(session_id)) {
                stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(_) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            if plane.is_some_and(|p| p.evict(session_id)) {
                stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(_) => {}
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn serve_lifecycle_inner<T: Transport>(
    transport: &mut T,
    session_id: u32,
    handoff: &SessionHandoff,
    entropy_bits: usize,
    leaked_bits: usize,
    config: &LifecycleConfig,
    params: &SessionParams,
    plane: Option<&GroupPlane>,
    stats: &LifecycleStats,
    fresh_seed: u64,
) -> Result<LifecycleServeOutcome, SessionError> {
    let mut channel = SecureChannel::new(handoff.root, session_id, ChannelRole::Initiator);
    let mut ledger = RekeyLedger::new(entropy_bits, leaked_bits);
    let mut initiator = RekeyInitiator::new();
    let mut fresh = SplitMix64::new(fresh_seed ^ 0x6C69_6665); // "life"
    let mut outcome = LifecycleServeOutcome::default();
    let deadline = Instant::now() + config.max_duration;
    let ack_timeout = params.retry.ack_timeout;

    // The member id on the group plane is the session id: unique for the
    // server's lifetime and already bound into the wrap MAC.
    let mut group_epoch_sent = 0u32;
    let mut last_group_send = Instant::now();
    if let Some(plane) = plane {
        let (epoch, wrap) = plane.join(session_id, handoff.root, session_id);
        crate::obs::send_traced(transport, &wrap.encode())?;
        group_epoch_sent = epoch;
    }

    // Receive high-water mark of the epoch the last rotation retired:
    // late duplicates sealed under it are re-acked, never rejected.
    let mut prev_acked: Option<(u32, u64)> = None;
    let mut last_rekey_send = Instant::now();
    let mut linger_until: Option<Instant> = None;

    // A root already under the entropy floor rotates before any traffic.
    begin_rekey_if_due(
        transport,
        &channel,
        &mut initiator,
        &ledger,
        &config.rekey,
        &mut fresh,
        &mut last_rekey_send,
    )?;

    loop {
        let now = Instant::now();
        if let Some(t) = linger_until {
            // Departure acknowledged; stay only to re-answer duplicates.
            if now >= t {
                break;
            }
        } else if now >= deadline {
            break;
        }

        if linger_until.is_none() {
            // Group epoch watch: a departure elsewhere rotated the key —
            // deliver our member's re-wrap on our own transport. Unacked
            // wraps are retransmitted on the ack timeout.
            if let Some(plane) = plane {
                let current = plane.epoch();
                let unacked = !plane.member_acked_current(session_id)
                    && last_group_send.elapsed() > ack_timeout;
                if current != group_epoch_sent || unacked {
                    if let Some((epoch, wrap)) = plane.wrap_for(session_id, session_id) {
                        crate::obs::send_traced(transport, &wrap.encode())?;
                        group_epoch_sent = epoch;
                        last_group_send = Instant::now();
                    }
                }
            }
            // Rotation retransmission: the request until its confirm.
            if initiator.in_flight() && last_rekey_send.elapsed() > ack_timeout {
                if let Some(req) = initiator.request_frame(&channel) {
                    crate::obs::send_traced(transport, &req.encode())?;
                    last_rekey_send = Instant::now();
                }
            }
        }

        let frame = match transport.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            // After the confirmation handoff, the client hanging up is an
            // abrupt — but unexceptional — end; the caller evicts.
            Err(TransportError::Closed) => break,
            Err(e) => return Err(e.into()),
        };
        let msg = match LifecycleMessage::decode(&frame) {
            Ok(msg) => msg,
            Err(LifecycleError::UnknownTag(_)) => {
                // The handoff window: the client's confirmation ack was
                // lost and it retransmitted the core Confirm. Re-answer
                // identically; anything else from the core codec is out
                // of place here.
                match Message::decode(&frame) {
                    Ok(Message::Confirm { .. }) => {
                        outcome.duplicate_frames += 1;
                        stats.duplicate_frames.fetch_add(1, Ordering::Relaxed);
                        crate::obs::send_traced(transport, &handoff.confirm_reply)?;
                    }
                    _ => reject(&mut outcome, stats)?,
                }
                continue;
            }
            Err(_) => {
                reject(&mut outcome, stats)?;
                continue;
            }
        };
        match msg {
            LifecycleMessage::AppData { epoch, seq, .. } => {
                match channel.open(&msg) {
                    Ok((disposition, _payload)) => {
                        let ack = channel.authenticate(LifecycleMessage::AppAck {
                            session_id,
                            epoch,
                            seq,
                            mac: [0; 32],
                        });
                        crate::obs::send_traced(transport, &ack.encode())?;
                        if disposition == Disposition::Accepted {
                            outcome.app_frames += 1;
                            stats.app_frames.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter("lifecycle.app_frames", 1);
                            ledger.on_frame(&config.rekey);
                            begin_rekey_if_due(
                                transport,
                                &channel,
                                &mut initiator,
                                &ledger,
                                &config.rekey,
                                &mut fresh,
                                &mut last_rekey_send,
                            )?;
                        } else {
                            outcome.duplicate_frames += 1;
                            stats.duplicate_frames.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A frame sealed under the epoch the last rotation
                    // retired, at or below its high-water mark, is a late
                    // retransmission whose ack was lost: re-ack it under
                    // its own epoch. (The channel cannot open it — the
                    // subkeys are gone — but the ack only needs identity.)
                    Err(LifecycleError::EpochMismatch { got, .. })
                        if prev_acked.is_some_and(|(pe, high)| got == pe && seq <= high) =>
                    {
                        outcome.duplicate_frames += 1;
                        stats.duplicate_frames.fetch_add(1, Ordering::Relaxed);
                        let ack = channel.authenticate(LifecycleMessage::AppAck {
                            session_id,
                            epoch,
                            seq,
                            mac: [0; 32],
                        });
                        crate::obs::send_traced(transport, &ack.encode())?;
                    }
                    Err(_) => reject(&mut outcome, stats)?,
                }
            }
            LifecycleMessage::RekeyConfirm {
                epoch,
                fresh: fresh_responder,
                check,
                ..
            } => {
                // Snapshot before on_confirm: acceptance advances the
                // channel, and the retiring epoch's high-water mark is
                // what keeps late duplicates re-ackable.
                let retiring = (channel.epoch(), channel.recv_high());
                let info = initiator.pending_info();
                match initiator.on_confirm(
                    &mut channel,
                    &mut ledger,
                    epoch,
                    fresh_responder,
                    &check,
                ) {
                    Ok((disposition, ack)) => {
                        if disposition == Disposition::Accepted {
                            prev_acked = retiring.1.map(|high| (retiring.0, high));
                            outcome.rekeys += 1;
                            stats.rekeys.fetch_add(1, Ordering::Relaxed);
                            if let Some((mode, trigger)) = info {
                                match mode {
                                    RekeyMode::Ratchet => &stats.ratchets,
                                    RekeyMode::Reprobe => &stats.reprobes,
                                }
                                .fetch_add(1, Ordering::Relaxed);
                                match trigger {
                                    RekeyTrigger::Budget => {
                                        stats.budget_rekeys.fetch_add(1, Ordering::Relaxed);
                                    }
                                    RekeyTrigger::Leakage => {
                                        stats.leakage_rekeys.fetch_add(1, Ordering::Relaxed);
                                    }
                                    RekeyTrigger::Manual => {}
                                }
                            }
                        } else {
                            outcome.duplicate_frames += 1;
                            stats.duplicate_frames.fetch_add(1, Ordering::Relaxed);
                        }
                        crate::obs::send_traced(transport, &ack.encode())?;
                    }
                    Err(_) => reject(&mut outcome, stats)?,
                }
            }
            LifecycleMessage::GroupKeyAck {
                group_epoch,
                member_id,
                mac,
                ..
            } => {
                if let Some(plane) = plane {
                    match plane.on_ack(member_id, group_epoch, &mac) {
                        Ok((disposition, latency)) => {
                            if disposition == Disposition::Duplicate {
                                outcome.duplicate_frames += 1;
                                stats.duplicate_frames.fetch_add(1, Ordering::Relaxed);
                            }
                            if let Some(ms) = latency {
                                stats.record_agreement(ms);
                            }
                        }
                        // A forged ack must never count toward agreement.
                        Err(_) => reject(&mut outcome, stats)?,
                    }
                } else {
                    reject(&mut outcome, stats)?;
                }
            }
            LifecycleMessage::Leave { .. } => {
                // A forged Leave would evict a live member and force a
                // group-wide rekey: verify before acting.
                if channel.verify_control(&msg).is_err() {
                    reject(&mut outcome, stats)?;
                    continue;
                }
                if !outcome.left {
                    outcome.left = true;
                    stats.graceful_leaves.fetch_add(1, Ordering::Relaxed);
                    if let Some(plane) = plane {
                        let _ = plane.evict(session_id);
                    }
                    linger_until = Some(Instant::now() + 2 * ack_timeout);
                } else {
                    outcome.duplicate_frames += 1;
                    stats.duplicate_frames.fetch_add(1, Ordering::Relaxed);
                }
                let ack = channel.authenticate(LifecycleMessage::LeaveAck {
                    session_id,
                    mac: [0; 32],
                });
                crate::obs::send_traced(transport, &ack.encode())?;
            }
            // Frames only the server originates (or acks meant for the
            // client) arriving here are corruption or a hostile peer.
            LifecycleMessage::AppAck { .. }
            | LifecycleMessage::RekeyRequest { .. }
            | LifecycleMessage::RekeyAck { .. }
            | LifecycleMessage::GroupKey { .. }
            | LifecycleMessage::LeaveAck { .. } => reject(&mut outcome, stats)?,
        }
    }
    outcome.final_epoch = channel.epoch();
    Ok(outcome)
}

fn reject(outcome: &mut LifecycleServeOutcome, stats: &LifecycleStats) -> Result<(), SessionError> {
    outcome.rejected_frames += 1;
    stats.rejected_frames.fetch_add(1, Ordering::Relaxed);
    telemetry::counter("lifecycle.rejected_frames", 1);
    if outcome.rejected_frames > REJECT_BUDGET {
        return Err(ProtocolError::Malformed("lifecycle rejection budget exhausted").into());
    }
    Ok(())
}

fn begin_rekey_if_due<T: Transport>(
    transport: &mut T,
    channel: &SecureChannel,
    initiator: &mut RekeyInitiator,
    ledger: &RekeyLedger,
    policy: &RekeyPolicy,
    fresh: &mut SplitMix64,
    last_send: &mut Instant,
) -> Result<(), SessionError> {
    if initiator.in_flight() {
        return Ok(());
    }
    if let Some((mode, trigger)) = ledger.decide(policy) {
        let request = initiator.begin(channel, mode, trigger, fresh.next_u64());
        crate::obs::send_traced(transport, &request.encode())?;
        *last_send = Instant::now();
    }
    Ok(())
}

/// An unacknowledged client application frame in flight.
struct PendingApp {
    payload: Vec<u8>,
    epoch: u32,
    seq: u64,
    frame: bytes::Bytes,
    sent: Instant,
    wait: Duration,
    tries: u32,
}

/// Run the client (vehicle) side of the lifecycle phase over the
/// connection the keyed exchange confirmed `root` on.
///
/// # Errors
///
/// [`SessionError`] on transport failure, or when an application frame or
/// the departure exhausts its retry budget.
pub fn run_bob_lifecycle<T: Transport>(
    transport: &mut T,
    session_id: u32,
    root: [u8; 16],
    cfg: &ClientLifecycleCfg,
    params: &SessionParams,
    nonce_seed: u64,
) -> Result<BobLifecycleOutcome, SessionError> {
    let mut channel = SecureChannel::new(root, session_id, ChannelRole::Responder);
    let mut responder = RekeyResponder::new();
    let mut member = cfg.group.then(|| GroupMember::new(session_id, root));
    let mut fresh = SplitMix64::new(nonce_seed ^ 0x7665_6869); // "vehi"
    let mut outcome = BobLifecycleOutcome {
        app_frames_acked: 0,
        rekeys: 0,
        ratchets: 0,
        reprobes: 0,
        final_epoch: 0,
        group_epoch: 0,
        group_installs: 0,
        group_tag: None,
        left: false,
        retransmissions: 0,
    };
    let deadline = Instant::now() + params.session_timeout + cfg.hold;
    let retry = params.retry;

    let mut pending: Option<PendingApp> = None;
    let mut frames_sent = 0u32;
    // The mode of the rotation we confirmed, so installs are attributed.
    let mut offered_mode: Option<RekeyMode> = None;
    // While our confirm awaits its ack, retransmit it on the ack timeout
    // (a lost RekeyAck must not strand the rotation).
    let mut last_confirm_send = Instant::now();

    #[derive(PartialEq)]
    enum Phase {
        Data,
        Hold(Instant),
        Leaving {
            sent: Instant,
            wait: Duration,
            tries: u32,
        },
    }
    let mut phase = Phase::Data;
    let leave_frame = channel
        .authenticate(LifecycleMessage::Leave {
            session_id,
            mac: [0; 32],
        })
        .encode();

    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(SessionError::Timeout("lifecycle phase"));
        }
        match phase {
            Phase::Data => {
                // Seal the next frame only when nothing is in flight and
                // no rotation we confirmed awaits its ack — a frame
                // sealed under a retiring epoch might never be processed.
                if pending.is_none() && !responder.in_flight() {
                    if frames_sent < cfg.app_frames {
                        let payload = app_payload(frames_sent);
                        let msg = channel
                            .seal(&payload)
                            .map_err(|_| ProtocolError::Malformed("app payload too large"))?;
                        let (epoch, seq) = match &msg {
                            LifecycleMessage::AppData { epoch, seq, .. } => (*epoch, *seq),
                            _ => (channel.epoch(), 0),
                        };
                        let frame = msg.encode();
                        crate::obs::send_traced(transport, &frame)?;
                        pending = Some(PendingApp {
                            payload,
                            epoch,
                            seq,
                            frame,
                            sent: Instant::now(),
                            wait: retry.ack_timeout,
                            tries: 0,
                        });
                        frames_sent += 1;
                    } else {
                        phase = Phase::Hold(Instant::now() + cfg.hold);
                    }
                }
                if let Some(p) = &mut pending {
                    if p.sent.elapsed() >= p.wait {
                        if p.tries >= retry.max_retries {
                            return Err(SessionError::Timeout("app frame ack"));
                        }
                        crate::obs::send_traced(transport, &p.frame)?;
                        p.tries += 1;
                        p.wait = p.wait.mul_f64(retry.backoff);
                        p.sent = Instant::now();
                        outcome.retransmissions += 1;
                    }
                }
            }
            Phase::Hold(until) => {
                if now >= until {
                    if cfg.leave {
                        crate::obs::send_traced(transport, &leave_frame)?;
                        phase = Phase::Leaving {
                            sent: Instant::now(),
                            wait: retry.ack_timeout,
                            tries: 0,
                        };
                    } else {
                        break;
                    }
                }
            }
            Phase::Leaving { sent, wait, tries } => {
                if sent.elapsed() >= wait {
                    if tries >= retry.max_retries {
                        return Err(SessionError::Timeout("leave ack"));
                    }
                    crate::obs::send_traced(transport, &leave_frame)?;
                    outcome.retransmissions += 1;
                    phase = Phase::Leaving {
                        sent: Instant::now(),
                        wait: wait.mul_f64(retry.backoff),
                        tries: tries + 1,
                    };
                }
            }
        }

        if responder.in_flight() && last_confirm_send.elapsed() > retry.ack_timeout {
            if let Some(confirm) = responder.confirm_frame() {
                crate::obs::send_traced(transport, &confirm.encode())?;
                outcome.retransmissions += 1;
                last_confirm_send = Instant::now();
            }
        }

        let frame = match transport.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(e) => return Err(e.into()),
        };
        let msg = match LifecycleMessage::decode(&frame) {
            Ok(msg) => msg,
            // Straggling core frames (e.g. a duplicated Confirm the fault
            // layer re-delivered) are not ours to answer anymore.
            Err(_) => continue,
        };
        match msg {
            LifecycleMessage::AppAck { epoch, seq, .. } => {
                // A forged ack would suppress retransmission of a frame
                // the server never processed: drop it unless it verifies.
                if channel.verify_control(&msg).is_err() {
                    continue;
                }
                if pending
                    .as_ref()
                    .is_some_and(|p| p.epoch == epoch && p.seq == seq)
                {
                    pending = None;
                    outcome.app_frames_acked += 1;
                }
            }
            LifecycleMessage::RekeyRequest {
                epoch,
                mode,
                fresh: fresh_initiator,
                ..
            } => {
                // An injected request (foreign fresh nonce, flipped mode)
                // would make us offer a candidate the real initiator can
                // never match: drop it unless it verifies.
                if channel.verify_control(&msg).is_err() {
                    continue;
                }
                let my_fresh = fresh.next_u64();
                if let Ok((disposition, confirm)) =
                    responder.on_request(&channel, epoch, mode, fresh_initiator, my_fresh)
                {
                    if disposition == Disposition::Accepted {
                        offered_mode = Some(mode);
                    }
                    crate::obs::send_traced(transport, &confirm.encode())?;
                    last_confirm_send = Instant::now();
                }
            }
            LifecycleMessage::RekeyAck { epoch, check, .. } => {
                if let Ok(Disposition::Accepted) = responder.on_ack(&mut channel, epoch, &check) {
                    outcome.rekeys += 1;
                    match offered_mode.take() {
                        Some(RekeyMode::Ratchet) => outcome.ratchets += 1,
                        Some(RekeyMode::Reprobe) => outcome.reprobes += 1,
                        None => {}
                    }
                    // An unacked frame sealed under the retired epoch may
                    // never be processed: re-seal it under the new epoch
                    // (at-least-once delivery across rotations).
                    if let Some(stale) = pending.take() {
                        let msg = channel
                            .seal(&stale.payload)
                            .map_err(|_| ProtocolError::Malformed("app payload too large"))?;
                        let (epoch, seq) = match &msg {
                            LifecycleMessage::AppData { epoch, seq, .. } => (*epoch, *seq),
                            _ => (channel.epoch(), 0),
                        };
                        let frame = msg.encode();
                        crate::obs::send_traced(transport, &frame)?;
                        outcome.retransmissions += 1;
                        pending = Some(PendingApp {
                            payload: stale.payload,
                            epoch,
                            seq,
                            frame,
                            sent: Instant::now(),
                            wait: retry.ack_timeout,
                            tries: stale.tries,
                        });
                    }
                }
            }
            LifecycleMessage::GroupKey { .. } => {
                if let Some(m) = member.as_mut() {
                    if let Ok((disposition, ack)) = m.on_group_key(&msg) {
                        crate::obs::send_traced(transport, &ack.encode())?;
                        if disposition == Disposition::Accepted {
                            outcome.group_installs += 1;
                        }
                    }
                }
            }
            LifecycleMessage::LeaveAck { .. } => {
                // A forged ack would have us disconnect while the server
                // still holds us live: drop it unless it verifies.
                if channel.verify_control(&msg).is_err() {
                    continue;
                }
                if matches!(phase, Phase::Leaving { .. }) {
                    outcome.left = true;
                    break;
                }
            }
            // Frames only the client originates, or a server-side-only
            // frame: ignore — the server's retransmission discipline owns
            // repair on its side.
            LifecycleMessage::AppData { .. }
            | LifecycleMessage::RekeyConfirm { .. }
            | LifecycleMessage::GroupKeyAck { .. }
            | LifecycleMessage::Leave { .. } => {}
        }
    }

    outcome.final_epoch = channel.epoch();
    if let Some(m) = &member {
        outcome.group_epoch = m.epoch().unwrap_or(0);
        outcome.group_tag = m.broadcast_tag(AGREEMENT_PAYLOAD);
    }
    Ok(outcome)
}

/// Deterministic plaintext for the `i`-th application frame.
fn app_payload(i: u32) -> Vec<u8> {
    let mut payload = b"vk-app-frame-".to_vec();
    payload.extend_from_slice(&i.to_be_bytes());
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::PipeTransport;
    use crate::session::RetryPolicy;
    use vk_lifecycle::GroupCoordinator;

    fn fast_params() -> SessionParams {
        SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        }
    }

    fn handoff(root: [u8; 16]) -> SessionHandoff {
        SessionHandoff {
            root,
            confirm_reply: vec![9, 0, 0, 0, 1],
        }
    }

    fn root(tag: u8) -> [u8; 16] {
        core::array::from_fn(|i| tag.wrapping_mul(37).wrapping_add(i as u8))
    }

    #[test]
    fn app_traffic_flows_and_budget_triggers_ratchets() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        // 32-bit frames against a 64-bit budget: a ratchet every 2 frames.
        let config = LifecycleConfig {
            rekey: RekeyPolicy {
                entropy_budget_bits: 64,
                frame_cost_bits: 32,
                reprobe_below_bits: 96,
                max_epoch_frames: 1 << 20,
            },
            group: false,
            max_duration: Duration::from_secs(8),
        };
        let stats = std::sync::Arc::new(LifecycleStats::default());
        let server_stats = stats.clone();
        let h = handoff(root(1));
        let server = std::thread::spawn(move || {
            serve_lifecycle(
                &mut a,
                5,
                &h,
                128,
                0,
                &config,
                &fast_params(),
                None,
                &server_stats,
                99,
            )
            .unwrap()
        });
        let cfg = ClientLifecycleCfg {
            app_frames: 6,
            hold: Duration::from_millis(80),
            leave: true,
            group: false,
        };
        let bob = run_bob_lifecycle(&mut b, 5, root(1), &cfg, &params, 7).unwrap();
        let alice = server.join().unwrap();
        assert_eq!(bob.app_frames_acked, 6);
        assert_eq!(alice.app_frames, 6);
        assert!(bob.left, "graceful departure must be acknowledged");
        assert!(alice.left);
        assert!(
            alice.rekeys >= 2,
            "6 frames over a 2-frame budget must rotate repeatedly: {alice:?}"
        );
        assert_eq!(alice.rekeys, bob.rekeys);
        assert_eq!(alice.final_epoch, bob.final_epoch);
        assert_eq!(bob.reprobes, 0, "a healthy root must only ratchet");
        assert_eq!(
            stats.rekeys.load(Ordering::Relaxed),
            u64::from(alice.rekeys)
        );
        assert!(stats.budget_rekeys.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn leaky_root_reprobes_before_traffic() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let config = LifecycleConfig {
            rekey: RekeyPolicy::default(), // floor at 96 effective bits
            group: false,
            max_duration: Duration::from_secs(8),
        };
        let stats = LifecycleStats::default();
        let h = handoff(root(2));
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                // Establishment leaked 48 bits: 80 effective, under the
                // floor — the very first decision is a leakage re-probe.
                serve_lifecycle(
                    &mut a,
                    6,
                    &h,
                    80,
                    48,
                    &config,
                    &fast_params(),
                    None,
                    &stats,
                    11,
                )
                .unwrap()
            });
            let cfg = ClientLifecycleCfg {
                app_frames: 3,
                hold: Duration::from_millis(60),
                leave: true,
                group: false,
            };
            let bob = run_bob_lifecycle(&mut b, 6, root(2), &cfg, &params, 8).unwrap();
            let alice = server.join().unwrap();
            assert!(bob.reprobes >= 1, "leaky root must re-probe: {bob:?}");
            assert_eq!(alice.app_frames, 3);
            assert_eq!(alice.final_epoch, bob.final_epoch);
        });
        assert!(stats.leakage_rekeys.load(Ordering::Relaxed) >= 1);
        assert!(stats.reprobes.load(Ordering::Relaxed) >= 1);
    }

    /// Satellite churn test: a member joins mid-epoch, receives the
    /// *current* group key, leaves, and afterwards cannot authenticate
    /// post-eviction frames — the stale key fails the MAC, and the epoch
    /// has advanced past it.
    #[test]
    fn group_churn_join_mid_epoch_then_eviction_rotates() {
        let master: [u8; 32] = core::array::from_fn(|i| i as u8 ^ 0xA5);
        let plane = GroupPlane::new(master);
        let stats = LifecycleStats::default();
        let config = LifecycleConfig {
            rekey: RekeyPolicy::default(),
            group: true,
            max_duration: Duration::from_secs(8),
        };
        let (mut a1, mut b1) = PipeTransport::pair(Duration::from_millis(5));
        let (mut a2, mut b2) = PipeTransport::pair(Duration::from_millis(5));
        let (stayer, joiner) = std::thread::scope(|s| {
            let h1 = handoff(root(11));
            let h2 = handoff(root(12));
            let plane = &plane;
            let stats = &stats;
            let config = &config;
            s.spawn(move || {
                serve_lifecycle(
                    &mut a1,
                    1,
                    &h1,
                    128,
                    0,
                    &config,
                    &fast_params(),
                    Some(&plane),
                    &stats,
                    21,
                )
                .unwrap()
            });
            let stayer_thread = s.spawn(|| {
                let cfg = ClientLifecycleCfg {
                    app_frames: 2,
                    hold: Duration::from_millis(500),
                    leave: true,
                    group: true,
                };
                run_bob_lifecycle(&mut b1, 1, root(11), &cfg, &fast_params(), 31).unwrap()
            });
            // The joiner arrives mid-epoch: after the stayer's session is
            // up and (typically) has installed epoch 1 already.
            std::thread::sleep(Duration::from_millis(120));
            s.spawn(move || {
                serve_lifecycle(
                    &mut a2,
                    2,
                    &h2,
                    128,
                    0,
                    &config,
                    &fast_params(),
                    Some(&plane),
                    &stats,
                    22,
                )
                .unwrap()
            });
            let joiner_thread = s.spawn(|| {
                let cfg = ClientLifecycleCfg {
                    app_frames: 1,
                    hold: Duration::from_millis(80),
                    leave: true,
                    group: true,
                };
                run_bob_lifecycle(&mut b2, 2, root(12), &cfg, &fast_params(), 32).unwrap()
            });
            (stayer_thread.join().unwrap(), joiner_thread.join().unwrap())
        });

        // The joiner received the then-current epoch (1 — joins do not
        // rotate) and departed; its departure advanced the epoch. The
        // stayer installed the post-eviction epoch (2) before its own
        // departure advanced it again.
        assert_eq!(joiner.group_epoch, 1, "{joiner:?}");
        assert!(joiner.group_installs >= 1);
        assert!(joiner.left);
        assert_eq!(stayer.group_epoch, 2, "{stayer:?}");
        assert!(stayer.group_installs >= 2, "{stayer:?}");
        assert!(stayer.left);
        assert_eq!(plane.epoch(), 3, "two departures from epoch 1");
        assert_eq!(plane.member_count(), 0);
        assert_eq!(stats.graceful_leaves.load(Ordering::Relaxed), 2);

        // Agreement audit: each member's tag matches the coordinator's
        // for the epoch it last held…
        assert_eq!(
            stayer.group_tag,
            Some(plane.broadcast_tag_for_epoch(2, AGREEMENT_PAYLOAD))
        );
        assert_eq!(
            joiner.group_tag,
            Some(plane.broadcast_tag_for_epoch(1, AGREEMENT_PAYLOAD))
        );
        // …and the evicted member's stale key cannot authenticate a
        // post-eviction frame: wrong epoch, and — even lying about the
        // epoch — a MAC mismatch.
        let mut scratch = GroupCoordinator::new(master);
        let wrap1 = scratch.join(2, root(12), 2);
        let mut stale = GroupMember::new(2, root(12));
        stale.on_group_key(&wrap1).unwrap();
        let post_tag = plane.broadcast_tag_for_epoch(2, AGREEMENT_PAYLOAD);
        assert_eq!(
            stale.verify_broadcast(2, AGREEMENT_PAYLOAD, &post_tag),
            Err(LifecycleError::EpochMismatch { got: 2, want: 1 })
        );
        assert_eq!(
            stale.verify_broadcast(1, AGREEMENT_PAYLOAD, &post_tag),
            Err(LifecycleError::MacMismatch)
        );
    }

    #[test]
    fn abrupt_disconnect_evicts_and_rotates() {
        let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(3));
        let plane = GroupPlane::new(master);
        let stats = LifecycleStats::default();
        let config = LifecycleConfig {
            rekey: RekeyPolicy::default(),
            group: true,
            max_duration: Duration::from_secs(8),
        };
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let h = handoff(root(21));
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                serve_lifecycle(
                    &mut a,
                    4,
                    &h,
                    128,
                    0,
                    &config,
                    &fast_params(),
                    Some(&plane),
                    &stats,
                    44,
                )
                .unwrap()
            });
            // No Leave: the client just vanishes after its traffic.
            let cfg = ClientLifecycleCfg {
                app_frames: 2,
                hold: Duration::from_millis(50),
                leave: false,
                group: true,
            };
            let bob = run_bob_lifecycle(&mut b, 4, root(21), &cfg, &fast_params(), 45).unwrap();
            assert!(!bob.left);
            drop(b); // hang up
            let alice = server.join().unwrap();
            assert!(!alice.left);
            assert_eq!(alice.app_frames, 2);
        });
        assert_eq!(stats.evictions.load(Ordering::Relaxed), 1);
        assert_eq!(plane.member_count(), 0);
        assert_eq!(plane.epoch(), 2, "abrupt departure must still rotate");
    }

    #[test]
    fn duplicated_lifecycle_frames_are_idempotent_on_the_wire() {
        // A fault layer duplicating every client→server frame: every
        // server handler must answer the re-delivery identically and no
        // rotation or counter may double-fire.
        let (mut a, b) = PipeTransport::pair(Duration::from_millis(5));
        let fault = crate::fault::FaultConfig {
            duplicate: 1.0,
            ..crate::fault::FaultConfig::default()
        };
        let mut b = crate::fault::FaultyTransport::new(b, fault);
        let params = fast_params();
        let config = LifecycleConfig {
            rekey: RekeyPolicy {
                entropy_budget_bits: 64,
                frame_cost_bits: 32,
                reprobe_below_bits: 96,
                max_epoch_frames: 1 << 20,
            },
            group: false,
            max_duration: Duration::from_secs(8),
        };
        let stats = LifecycleStats::default();
        let h = handoff(root(31));
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                serve_lifecycle(
                    &mut a,
                    9,
                    &h,
                    128,
                    0,
                    &config,
                    &fast_params(),
                    None,
                    &stats,
                    61,
                )
                .unwrap()
            });
            let cfg = ClientLifecycleCfg {
                app_frames: 4,
                hold: Duration::from_millis(80),
                leave: true,
                group: false,
            };
            let bob = run_bob_lifecycle(&mut b, 9, root(31), &cfg, &params, 62).unwrap();
            let alice = server.join().unwrap();
            assert_eq!(alice.app_frames, 4, "{alice:?}");
            assert_eq!(bob.app_frames_acked, 4);
            assert_eq!(alice.final_epoch, bob.final_epoch);
            assert!(
                alice.duplicate_frames > 0,
                "duplicating transport must surface duplicates: {alice:?}"
            );
            assert_eq!(
                alice.rejected_frames, 0,
                "duplicates must never be rejected as mismatches: {alice:?}"
            );
        });
    }
}
