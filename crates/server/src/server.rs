//! The concurrent key-establishment server: a TCP listener feeding a
//! fixed worker pool, one Vehicle-Key session per connection.
//!
//! The accept loop runs on its own thread with a non-blocking listener so
//! shutdown is prompt; accepted streams flow through an `mpsc` channel to
//! the workers, each of which runs [`serve_session`] to completion per
//! connection. [`Server::shutdown`] stops accepting, lets in-flight
//! sessions finish, and joins every thread — no session is ever torn down
//! mid-exchange. All interesting events land in [`ServerStats`] (lock-free
//! atomics) and the `server.*` telemetry namespace.

use crate::admin::SessionTable;
use crate::fault::{FaultConfig, FaultyTransport};
use crate::framing::TcpTransport;
use crate::lifecycle::{serve_lifecycle, GroupPlane, LifecycleConfig, LifecycleStats};
use crate::session::{serve_session_keyed, ServeOutcome, SessionError, SessionParams};
use crate::sim::SplitMix64;
use reconcile::AutoencoderReconciler;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::FlightRecorder;
use vehicle_key::{ProtocolError, Transport};

/// Which serving core [`Server::start`] spins up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// Pick automatically: the readiness-driven reactor unless a
    /// lifecycle plane is configured (the lifecycle loop is blocking by
    /// design, so `Auto` keeps it on the thread-per-session core).
    #[default]
    Auto,
    /// The original thread-per-session core: an accept thread feeding a
    /// fixed worker pool, each worker blocking on one connection.
    Blocking,
    /// The readiness-driven reactor ([`crate::reactor`]): shard threads
    /// multiplexing thousands of non-blocking connections each over
    /// epoll/`poll(2)`, with timer wheels driving every deadline.
    Reactor,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (e.g. `127.0.0.1:7400`; port 0 picks a free port).
    pub addr: String,
    /// Blocking mode: worker threads, the bound on concurrently served
    /// sessions. Reactor mode: shard threads, each holding any number of
    /// sessions (pick the core count).
    pub workers: usize,
    /// Serving core selection; see [`ServerMode`].
    pub mode: ServerMode,
    /// Parameters every session runs with (must match the clients').
    pub params: SessionParams,
    /// Optional fault injection on the server's outgoing frames.
    pub fault: Option<FaultConfig>,
    /// Socket read poll window.
    pub poll: Duration,
    /// Stop accepting after this many connections (`None` = unbounded);
    /// used by bounded benchmark and CI runs.
    pub max_sessions: Option<u64>,
    /// Seed for the server's handshake nonces.
    pub nonce_seed: u64,
    /// Flight recorder holding recent telemetry history; when set, a
    /// session ending in a typed abort (recovery/deadline/entropy
    /// exhaustion) dumps it to `flight_dir/flightrec-<session>.json`.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Directory flight-recorder post-mortems are written to.
    pub flight_dir: String,
    /// When set, a confirmed session does not linger and close: it hands
    /// off into the authenticated lifecycle plane (app traffic, rekeying,
    /// and — with `group` — platoon group keys) until the client leaves.
    pub lifecycle: Option<LifecycleConfig>,
    /// Bound on connections accepted but not yet picked up by a worker
    /// (`None` = unbounded, the pre-backpressure behaviour). A half-open
    /// flood past this bound is refused at accept time — the stream is
    /// closed immediately and counted in `rejected_overload` — so the
    /// pending queue, and with it server memory, stays bounded.
    pub pending_cap: Option<usize>,
    /// Bound on in-flight connections (queued or being served) per client
    /// IP address (`None` = unbounded). On a real deployment this blunts
    /// a single-source flood; benchmarks over loopback, where every peer
    /// shares `127.0.0.1`, must set it at least as high as the honest
    /// concurrency they expect.
    pub per_ip_cap: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            mode: ServerMode::Auto,
            params: SessionParams::default(),
            fault: None,
            poll: Duration::from_millis(25),
            max_sessions: None,
            nonce_seed: 0x5eed,
            flight: None,
            flight_dir: "results".into(),
            lifecycle: None,
            pending_cap: None,
            per_ip_cap: None,
        }
    }
}

/// Admission control shared by the accept loop (admit) and the workers
/// (drain/release): a pending-queue depth and a per-source-IP in-flight
/// count, both checked before a connection is queued.
#[derive(Debug, Default)]
pub(crate) struct Backpressure {
    /// Connections queued for a worker but not yet dequeued.
    pending: AtomicUsize,
    /// In-flight (queued or being served) connections per source IP.
    per_ip: Mutex<HashMap<IpAddr, usize>>,
}

impl Backpressure {
    /// Admit or refuse a fresh connection from `ip` under the configured
    /// caps. On admission both counts are already taken, so a refused
    /// sibling racing this one cannot sneak past the bound.
    pub(crate) fn admit(
        &self,
        ip: IpAddr,
        pending_cap: Option<usize>,
        per_ip_cap: Option<usize>,
    ) -> bool {
        // A poisoned map means a worker panicked holding it; refuse rather
        // than serve with unknown accounting.
        let Ok(mut per_ip) = self.per_ip.lock() else {
            return false;
        };
        let inflight = per_ip.get(&ip).copied().unwrap_or(0);
        if per_ip_cap.is_some_and(|cap| inflight >= cap) {
            return false;
        }
        if pending_cap.is_some_and(|cap| self.pending.load(Ordering::Relaxed) >= cap) {
            return false;
        }
        *per_ip.entry(ip).or_insert(0) += 1;
        self.pending.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A worker dequeued a connection: it no longer occupies the queue.
    pub(crate) fn dequeued(&self) {
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection finished (or was dropped): release its IP slot.
    pub(crate) fn release(&self, ip: IpAddr) {
        let Ok(mut per_ip) = self.per_ip.lock() else {
            return;
        };
        if let Some(inflight) = per_ip.get_mut(&ip) {
            *inflight = inflight.saturating_sub(1);
            if *inflight == 0 {
                per_ip.remove(&ip);
            }
        }
    }
}

/// Lock-free session counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Sessions that ran to a confirmed matching key.
    pub completed: AtomicU64,
    /// Sessions that ended in a confirmed *mismatched* key.
    pub key_mismatches: AtomicU64,
    /// Sessions that failed (transport, protocol, timeout).
    pub failed: AtomicU64,
    /// Duplicate frames answered idempotently across all sessions.
    pub duplicate_frames: AtomicU64,
    /// MAC-failing or undecodable frames left unacknowledged.
    pub rejected_frames: AtomicU64,
    /// Cascade parity rounds absorbed across all sessions (rung 2).
    pub cascade_rounds: AtomicU64,
    /// Re-probe requests issued across all sessions (rung 3).
    pub reprobes: AtomicU64,
    /// Blocks that exhausted the escalation ladder.
    pub exhausted_blocks: AtomicU64,
    /// Parity bits revealed by Cascade recovery, summed over sessions.
    pub leaked_bits: AtomicU64,
    /// Connections evicted because they never completed the probe
    /// handshake within [`SessionParams::handshake_timeout`] (half-open
    /// or slowloris peers).
    pub handshake_timeouts: AtomicU64,
    /// Connections refused at accept time by the backpressure caps
    /// ([`ServerConfig::pending_cap`] / [`ServerConfig::per_ip_cap`]).
    pub rejected_overload: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions with a confirmed matching key.
    pub completed: u64,
    /// Sessions with a confirmed mismatched key.
    pub key_mismatches: u64,
    /// Sessions that failed outright.
    pub failed: u64,
    /// Duplicate frames answered idempotently.
    pub duplicate_frames: u64,
    /// Frames left unacknowledged.
    pub rejected_frames: u64,
    /// Cascade parity rounds absorbed (escalation rung 2).
    pub cascade_rounds: u64,
    /// Re-probe requests issued (escalation rung 3).
    pub reprobes: u64,
    /// Blocks that exhausted the escalation ladder.
    pub exhausted_blocks: u64,
    /// Parity bits revealed by Cascade recovery.
    pub leaked_bits: u64,
    /// Connections evicted at the handshake deadline.
    pub handshake_timeouts: u64,
    /// Connections refused by the backpressure caps.
    pub rejected_overload: u64,
}

impl ServerStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            key_mismatches: self.key_mismatches.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            duplicate_frames: self.duplicate_frames.load(Ordering::Relaxed),
            rejected_frames: self.rejected_frames.load(Ordering::Relaxed),
            cascade_rounds: self.cascade_rounds.load(Ordering::Relaxed),
            reprobes: self.reprobes.load(Ordering::Relaxed),
            exhausted_blocks: self.exhausted_blocks.load(Ordering::Relaxed),
            leaked_bits: self.leaked_bits.load(Ordering::Relaxed),
            handshake_timeouts: self.handshake_timeouts.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
        }
    }
}

/// A running server: either an accept thread + worker pool (blocking
/// mode) or a set of reactor shards.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// One waker per reactor shard, fired on shutdown so a shard blocked
    /// indefinitely in `Poller::wait` (the idle-CPU guarantee) still
    /// observes the flag promptly. Empty in blocking mode.
    reactor_wakers: Vec<crate::poll::Waker>,
    stats: Arc<ServerStats>,
    sessions: Arc<SessionTable>,
    lifecycle_stats: Arc<LifecycleStats>,
    group_plane: Arc<GroupPlane>,
}

impl Server {
    /// Bind and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind/socket-option failures.
    pub fn start(
        config: ServerConfig,
        reconciler: Arc<AutoencoderReconciler>,
    ) -> std::io::Result<Server> {
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "unresolvable addr")
            })?)?;
        listener.set_nonblocking(true)?;
        // std's bind hard-codes a backlog of 128; a fleet ramping to 10k
        // concurrent sessions overflows it and eats 1s+ SYN-retransmit
        // stalls on every connect past the queue. Re-arm with a deeper
        // queue (best-effort — some kernels clamp to `somaxconn`).
        {
            use std::os::unix::io::AsRawFd;
            let _ = crate::poll::widen_backlog(listener.as_raw_fd(), 4096);
        }
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let sessions = Arc::new(SessionTable::new());
        let (conn_tx, conn_rx) = mpsc::channel::<(TcpStream, IpAddr)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let session_ids = Arc::new(AtomicU32::new(1));
        let backpressure = Arc::new(Backpressure::default());
        let lifecycle_stats = Arc::new(LifecycleStats::default());
        // The RSU group master is pinned to the nonce seed so a seeded run
        // is reproducible end-to-end, group keys included.
        let group_plane = {
            let mut g = SplitMix64::new(config.nonce_seed ^ 0x6772_6f75_705f_6b65);
            let mut master = [0u8; 32];
            for chunk in master.chunks_exact_mut(8) {
                chunk.copy_from_slice(&g.next_u64().to_be_bytes());
            }
            Arc::new(GroupPlane::new(master))
        };

        let resolved = match config.mode {
            ServerMode::Auto if config.lifecycle.is_none() => ServerMode::Reactor,
            ServerMode::Auto => ServerMode::Blocking,
            explicit => explicit,
        };
        if resolved == ServerMode::Reactor {
            let shards = crate::reactor::Shared {
                shutdown: Arc::clone(&shutdown),
                stats: Arc::clone(&stats),
                sessions: Arc::clone(&sessions),
                session_ids: Arc::clone(&session_ids),
                backpressure: Arc::clone(&backpressure),
                lifecycle_stats: Arc::clone(&lifecycle_stats),
                group_plane: Arc::clone(&group_plane),
            };
            let (workers, reactor_wakers) =
                crate::reactor::spawn_shards(listener, config, reconciler, shards)?;
            return Ok(Server {
                local_addr,
                shutdown,
                accept_thread: None,
                workers,
                reactor_wakers,
                stats,
                sessions,
                lifecycle_stats,
                group_plane,
            });
        }

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let backpressure = Arc::clone(&backpressure);
            let max = config.max_sessions;
            let pending_cap = config.pending_cap;
            let per_ip_cap = config.per_ip_cap;
            std::thread::Builder::new()
                .name("vk-accept".into())
                .spawn(move || {
                    let mut accepted = 0u64;
                    while !shutdown.load(Ordering::Relaxed) {
                        if max.is_some_and(|m| accepted >= m) {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                // Admission control first: a refused
                                // connection is closed on the spot and never
                                // counts toward the session bound, so a
                                // flood cannot starve the honest quota.
                                if !backpressure.admit(peer.ip(), pending_cap, per_ip_cap) {
                                    stats.rejected_overload.fetch_add(1, Ordering::Relaxed);
                                    telemetry::counter("server.rejected_overload", 1);
                                    drop(stream);
                                    continue;
                                }
                                accepted += 1;
                                stats.accepted.fetch_add(1, Ordering::Relaxed);
                                telemetry::counter("server.accepted", 1);
                                if conn_tx.send((stream, peer.ip())).is_err() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(e) => {
                                telemetry::counter("server.accept_errors", 1);
                                eprintln!("vk-server: accept error: {e}");
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    }
                    // Dropping the sender lets workers drain and exit.
                })?
        };

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let stats = Arc::clone(&stats);
            let sessions = Arc::clone(&sessions);
            let session_ids = Arc::clone(&session_ids);
            let reconciler = Arc::clone(&reconciler);
            let lifecycle_stats = Arc::clone(&lifecycle_stats);
            let group_plane = Arc::clone(&group_plane);
            let backpressure = Arc::clone(&backpressure);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("vk-worker-{i}"))
                    .spawn(move || loop {
                        let (stream, peer_ip) = {
                            // A poisoned lock means a sibling worker panicked
                            // mid-recv; shut this worker down rather than
                            // cascading the panic.
                            let Ok(rx) = conn_rx.lock() else { break };
                            match rx.recv() {
                                Ok(conn) => conn,
                                Err(_) => break, // accept loop gone, queue drained
                            }
                        };
                        backpressure.dequeued();
                        handle_connection(
                            stream,
                            &config,
                            &reconciler,
                            &session_ids,
                            &stats,
                            &sessions,
                            &lifecycle_stats,
                            &group_plane,
                        );
                        backpressure.release(peer_ip);
                    })?,
            );
        }

        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            reactor_wakers: Vec::new(),
            stats,
            sessions,
            lifecycle_stats,
            group_plane,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared session counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Handle on the live counters, for wiring an
    /// [`AdminServer`](crate::admin::AdminServer) to this server.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Handle on the live/recent session table the workers maintain, for
    /// the admin `/sessions` route.
    pub fn session_table(&self) -> Arc<SessionTable> {
        Arc::clone(&self.sessions)
    }

    /// Handle on the lifecycle-plane counters (all zero unless
    /// [`ServerConfig::lifecycle`] is set).
    pub fn lifecycle_stats(&self) -> Arc<LifecycleStats> {
        Arc::clone(&self.lifecycle_stats)
    }

    /// Handle on the shared platoon group-key coordinator.
    pub fn group_plane(&self) -> Arc<GroupPlane> {
        Arc::clone(&self.group_plane)
    }

    /// Stop accepting, let in-flight sessions finish, join every thread,
    /// and return the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown.store(true, Ordering::Relaxed);
        for waker in &self.reactor_wakers {
            waker.wake();
        }
        self.join_threads();
        self.stats.snapshot()
    }

    /// Wait for the server to exit on its own — only meaningful with
    /// `max_sessions` set (otherwise this blocks until `shutdown` is
    /// flagged by another handle). Returns the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        self.join_threads();
        self.stats.snapshot()
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped handle must not leave detached threads accepting
        // connections forever.
        self.shutdown.store(true, Ordering::Relaxed);
        for waker in &self.reactor_wakers {
            waker.wake();
        }
        self.join_threads();
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    config: &ServerConfig,
    reconciler: &Arc<AutoencoderReconciler>,
    session_ids: &AtomicU32,
    stats: &ServerStats,
    sessions: &SessionTable,
    lifecycle_stats: &LifecycleStats,
    group_plane: &GroupPlane,
) {
    let session_id = session_ids.fetch_add(1, Ordering::Relaxed);
    sessions.register(session_id);
    telemetry::gauge("server.sessions_live", sessions.live_len() as f64);
    let nonce_a = SplitMix64::new(config.nonce_seed ^ u64::from(session_id)).next_u64();
    let outcome = match TcpTransport::new(stream, config.poll) {
        Ok(transport) => match config.fault {
            Some(fault) if !fault.is_noop() => {
                // Derive a per-session fault seed so sessions do not all
                // replay the identical fault pattern.
                let fault = FaultConfig {
                    seed: SplitMix64::new(fault.seed ^ u64::from(session_id)).next_u64(),
                    ..fault
                };
                let mut t = FaultyTransport::new(transport, fault);
                serve_one(
                    &mut t,
                    reconciler,
                    session_id,
                    nonce_a,
                    config,
                    stats,
                    lifecycle_stats,
                    group_plane,
                )
            }
            _ => {
                let mut t = transport;
                serve_one(
                    &mut t,
                    reconciler,
                    session_id,
                    nonce_a,
                    config,
                    stats,
                    lifecycle_stats,
                    group_plane,
                )
            }
        },
        Err(e) => {
            eprintln!("vk-server: socket setup failed: {e}");
            Err(SessionError::Transport(vehicle_key::TransportError::Io(
                format!("socket setup failed: {e}"),
            )))
        }
    };
    record_outcome(config, session_id, stats, sessions, &outcome);
}

/// Record a session's terminal result: the admin session table entry, the
/// failure/timeout/attack counters, the flight-recorder post-mortem, and
/// the live-session gauge. Success counters (`completed` and friends) are
/// *not* touched here — [`accumulate`] owns those — so the two serving
/// cores split the bookkeeping identically.
pub(crate) fn record_outcome(
    config: &ServerConfig,
    session_id: u32,
    stats: &ServerStats,
    sessions: &SessionTable,
    outcome: &Result<ServeOutcome, SessionError>,
) {
    match outcome {
        Ok(o) => sessions.finish(session_id, |entry| {
            entry.state = if o.key_matched {
                "matched"
            } else {
                "mismatched"
            };
            entry.blocks = u64::from(o.blocks);
            entry.cascade_rounds = o.escalation.cascade_rounds;
            entry.reprobes = o.escalation.reprobes;
            entry.leaked_bits = o.leaked_bits as u64;
        }),
        Err(e) => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("server.sessions_failed", 1);
            if *e == SessionError::Timeout("handshake") {
                stats.handshake_timeouts.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("server.handshake_timeouts", 1);
            }
            if let Some(kind) = attack_kind(e) {
                telemetry::counter("server.attack_aborts", 1);
                if telemetry::enabled() {
                    telemetry::mark("server.attack_abort")
                        .field("session_id", u64::from(session_id))
                        .field("attack_kind", kind)
                        .emit();
                }
            }
            if telemetry::enabled() {
                telemetry::mark("server.session_error")
                    .field("session_id", u64::from(session_id))
                    .field("error", e.to_string())
                    .emit();
            }
            dump_flight(config, session_id, e);
            sessions.finish(session_id, |entry| {
                entry.state = "failed";
                entry.error = Some(e.to_string());
            });
        }
    }
    telemetry::gauge("server.sessions_live", sessions.live_len() as f64);
}

/// Map a session error to a flight-recorder dump reason: only the typed
/// aborts that indicate the protocol itself gave up (as opposed to a peer
/// vanishing) earn a post-mortem.
pub(crate) fn flight_abort_reason(error: &SessionError) -> Option<&'static str> {
    match error {
        SessionError::Protocol(ProtocolError::RecoveryExhausted(_)) => Some("recovery_exhausted"),
        SessionError::Protocol(ProtocolError::DeadlineExpired(_)) => Some("deadline_expired"),
        SessionError::Protocol(ProtocolError::EntropyExhausted) => Some("entropy_exhausted"),
        _ => None,
    }
}

/// Classify a typed abort that points at *hostile* traffic rather than a
/// faulty peer or channel. The labels land on flight-recorder dumps (the
/// `attack_kind` annotation) and the `server.attack_aborts` counter, so a
/// post-mortem can tell a Mallory run from fault-injection noise.
pub(crate) fn attack_kind(error: &SessionError) -> Option<&'static str> {
    match error {
        // A first frame that decodes but is not a probe: deliberate
        // injection (corruption fails the decode and is retried instead).
        SessionError::Protocol(ProtocolError::Malformed("expected probe")) => {
            Some("probe_injection")
        }
        // Replayed or cross-wired frames past the rejection budget.
        SessionError::Protocol(ProtocolError::Malformed("unexpected message for server")) => {
            Some("protocol_violation")
        }
        // Persistently MAC-failing syndromes: tampered or replayed frames.
        SessionError::Protocol(ProtocolError::Malformed("syndrome MAC mismatch")) => {
            Some("frame_tamper")
        }
        // Forged lifecycle control frames exhausted the lifecycle budget.
        SessionError::Protocol(ProtocolError::Malformed(
            "lifecycle rejection budget exhausted",
        )) => Some("lifecycle_forgery"),
        // A stream of undecodable frames exhausted the garbage budget —
        // sustained corruption at that volume is a flood, not a channel.
        SessionError::Protocol(ProtocolError::Malformed("garbage flood")) => Some("frame_tamper"),
        _ => None,
    }
}

pub(crate) fn dump_flight(config: &ServerConfig, session_id: u32, error: &SessionError) {
    let Some(recorder) = &config.flight else {
        return;
    };
    // Protocol give-ups keep their typed reason; hostile-traffic aborts
    // (which are not protocol failures) dump under a generic reason with
    // the attack kind annotated.
    let attack = attack_kind(error);
    let reason = match (flight_abort_reason(error), attack) {
        (Some(reason), _) => reason,
        (None, Some(_)) => "hostile_traffic",
        (None, None) => return,
    };
    let doc = recorder.dump_json_annotated(u64::from(session_id), reason, attack);
    let path =
        std::path::Path::new(&config.flight_dir).join(format!("flightrec-{session_id}.json"));
    match std::fs::create_dir_all(&config.flight_dir)
        .and_then(|()| std::fs::write(&path, format!("{doc}\n")))
    {
        Ok(()) => {
            telemetry::counter("server.flight_dumps", 1);
            if telemetry::enabled() {
                telemetry::mark("server.flight_dump")
                    .field("session_id", u64::from(session_id))
                    .field("reason", reason)
                    .field("path", path.display().to_string())
                    .emit();
            }
        }
        Err(e) => eprintln!("vk-server: flight-recorder dump failed: {e}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_one<T: Transport>(
    transport: &mut T,
    reconciler: &Arc<AutoencoderReconciler>,
    session_id: u32,
    nonce_a: u64,
    config: &ServerConfig,
    stats: &ServerStats,
    lifecycle_stats: &LifecycleStats,
    group_plane: &GroupPlane,
) -> Result<ServeOutcome, SessionError> {
    let (outcome, handoff) = serve_session_keyed(
        transport,
        reconciler,
        session_id,
        nonce_a,
        &config.params,
        config.lifecycle.is_some(),
    )?;
    accumulate(stats, &outcome);
    if let (Some(lc), Some(handoff)) = (config.lifecycle.as_ref(), handoff) {
        // The key exchange is already confirmed and counted above; a
        // lifecycle failure afterwards is recorded in its own counters
        // (`LifecycleStats::errors`) without retroactively failing the
        // session.
        let fresh_seed =
            SplitMix64::new(config.nonce_seed ^ (u64::from(session_id) << 32)).next_u64();
        if let Err(e) = serve_lifecycle(
            transport,
            session_id,
            &handoff,
            outcome.entropy_bits,
            outcome.leaked_bits,
            lc,
            &config.params,
            lc.group.then_some(group_plane),
            lifecycle_stats,
            fresh_seed,
        ) {
            // Hostile lifecycle traffic still earns its post-mortem even
            // though the (already confirmed) session is not failed.
            if attack_kind(&e).is_some() {
                telemetry::counter("server.attack_aborts", 1);
                dump_flight(config, session_id, &e);
            }
        }
    }
    Ok(outcome)
}

/// Fold a confirmed session's counters into the server totals. Shared by
/// both serving cores so a completed session is counted identically
/// whichever core ran it.
pub(crate) fn accumulate(stats: &ServerStats, outcome: &ServeOutcome) {
    stats
        .duplicate_frames
        .fetch_add(outcome.duplicate_frames, Ordering::Relaxed);
    stats
        .rejected_frames
        .fetch_add(outcome.rejected_frames, Ordering::Relaxed);
    stats
        .cascade_rounds
        .fetch_add(outcome.escalation.cascade_rounds, Ordering::Relaxed);
    stats
        .reprobes
        .fetch_add(outcome.escalation.reprobes, Ordering::Relaxed);
    stats
        .exhausted_blocks
        .fetch_add(outcome.escalation.exhausted, Ordering::Relaxed);
    stats
        .leaked_bits
        .fetch_add(outcome.leaked_bits as u64, Ordering::Relaxed);
    if outcome.key_matched {
        stats.completed.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.key_mismatches.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet, FleetConfig};
    use crate::lifecycle::{ClientLifecycleCfg, RekeyPolicy};
    use crate::session::RetryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reconcile::AutoencoderTrainer;
    use telemetry::{Json, Sink};

    /// Full stack over loopback TCP: key exchange hands off into the
    /// lifecycle plane, every client pushes authenticated app traffic,
    /// the budget forces mid-session rekeys, the platoon converges on
    /// group keys, and graceful departures rotate the group epoch.
    #[test]
    fn lifecycle_fleet_over_tcp_full_stack() {
        let reconciler = Arc::new({
            let mut rng = StdRng::seed_from_u64(7001);
            AutoencoderTrainer::default()
                .with_steps(6000)
                .train(&mut rng)
        });
        let params = SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        };
        let lifecycle = LifecycleConfig {
            // Budget of four frames at 32 bits each: six app frames force
            // at least one rotation per session.
            rekey: RekeyPolicy {
                entropy_budget_bits: 128,
                frame_cost_bits: 32,
                ..RekeyPolicy::default()
            },
            group: true,
            max_duration: Duration::from_secs(10),
        };
        let server = Server::start(
            ServerConfig {
                workers: 3,
                params,
                max_sessions: Some(3),
                lifecycle: Some(lifecycle),
                ..ServerConfig::default()
            },
            Arc::clone(&reconciler),
        )
        .expect("loopback server must start");
        let lifecycle_stats = server.lifecycle_stats();
        let plane = server.group_plane();
        let report = run_fleet(
            &FleetConfig {
                addr: server.local_addr().to_string(),
                sessions: 3,
                concurrency: 3,
                params,
                poll: Duration::from_millis(5),
                lifecycle: Some(ClientLifecycleCfg {
                    app_frames: 6,
                    hold: Duration::from_millis(250),
                    leave: true,
                    group: true,
                }),
                ..FleetConfig::default()
            },
            &reconciler,
        )
        .expect("loopback address resolves");
        let stats = server.join();

        assert_eq!(report.ok, 3, "{report:?}");
        assert_eq!(stats.completed, 3);
        let lc = report.lifecycle.expect("lifecycle aggregates present");
        assert_eq!(lc.completed, 3);
        assert_eq!(lc.app_frames_acked, 18);
        assert!(lc.rekeys >= 3, "one rotation per session: {lc:?}");
        assert!(lc.group_installs >= 3, "{lc:?}");
        assert_eq!(lc.left, 3);
        assert_eq!(lifecycle_stats.sessions.load(Ordering::Relaxed), 3);
        assert_eq!(lifecycle_stats.graceful_leaves.load(Ordering::Relaxed), 3);
        assert_eq!(lifecycle_stats.app_frames.load(Ordering::Relaxed), 18);
        assert_eq!(plane.epoch(), 4, "three departures from epoch 1");
        assert_eq!(plane.member_count(), 0);
    }

    #[test]
    fn typed_aborts_map_to_dump_reasons() {
        let typed = [
            (
                SessionError::Protocol(ProtocolError::RecoveryExhausted(3)),
                "recovery_exhausted",
            ),
            (
                SessionError::Protocol(ProtocolError::DeadlineExpired(1)),
                "deadline_expired",
            ),
            (
                SessionError::Protocol(ProtocolError::EntropyExhausted),
                "entropy_exhausted",
            ),
        ];
        for (error, reason) in typed {
            assert_eq!(flight_abort_reason(&error), Some(reason), "{error:?}");
        }
        let untyped = [
            SessionError::Transport(vehicle_key::TransportError::Closed),
            SessionError::Protocol(ProtocolError::MacMismatch),
            SessionError::Timeout("probe"),
        ];
        for error in untyped {
            assert_eq!(flight_abort_reason(&error), None, "{error:?}");
        }
    }

    #[test]
    fn attack_kinds_classify_hostile_aborts_only() {
        let hostile = [
            (
                ProtocolError::Malformed("expected probe"),
                "probe_injection",
            ),
            (
                ProtocolError::Malformed("unexpected message for server"),
                "protocol_violation",
            ),
            (
                ProtocolError::Malformed("syndrome MAC mismatch"),
                "frame_tamper",
            ),
            (
                ProtocolError::Malformed("lifecycle rejection budget exhausted"),
                "lifecycle_forgery",
            ),
            (ProtocolError::Malformed("garbage flood"), "frame_tamper"),
        ];
        for (error, kind) in hostile {
            assert_eq!(
                attack_kind(&SessionError::Protocol(error.clone())),
                Some(kind),
                "{error:?}"
            );
        }
        let benign = [
            SessionError::Transport(vehicle_key::TransportError::Closed),
            SessionError::Protocol(ProtocolError::RecoveryExhausted(2)),
            SessionError::Timeout("handshake"),
        ];
        for error in benign {
            assert_eq!(attack_kind(&error), None, "{error:?}");
        }
    }

    #[test]
    fn backpressure_caps_pending_and_per_ip() {
        let bp = Backpressure::default();
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        // Per-IP cap of 2: the third concurrent connection is refused.
        assert!(bp.admit(ip, None, Some(2)));
        assert!(bp.admit(ip, None, Some(2)));
        assert!(!bp.admit(ip, None, Some(2)));
        // Another source is unaffected.
        let other: IpAddr = "10.0.0.2".parse().unwrap();
        assert!(bp.admit(other, None, Some(2)));
        // Releasing a slot readmits the first source.
        bp.release(ip);
        assert!(bp.admit(ip, None, Some(2)));
        // Pending cap: four queued (none dequeued) refuses the fifth;
        // draining below the cap readmits.
        assert!(!bp.admit(other, Some(3), None));
        bp.dequeued();
        bp.dequeued();
        assert!(bp.admit(other, Some(3), None));
    }

    #[test]
    fn hostile_abort_dump_carries_the_attack_kind() {
        let dir = std::env::temp_dir().join(format!("vk-attack-dump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(1, 8));
        let config = ServerConfig {
            flight: Some(Arc::clone(&recorder)),
            flight_dir: dir.display().to_string(),
            ..ServerConfig::default()
        };
        dump_flight(
            &config,
            11,
            &SessionError::Protocol(ProtocolError::Malformed("expected probe")),
        );
        let text = std::fs::read_to_string(dir.join("flightrec-11.json")).expect("dump written");
        let doc = Json::parse(text.trim()).expect("valid json");
        assert_eq!(
            doc.get("reason").and_then(Json::as_str),
            Some("hostile_traffic")
        );
        assert_eq!(
            doc.get("attack_kind").and_then(Json::as_str),
            Some("probe_injection")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_dump_lands_only_on_typed_aborts() {
        let dir = std::env::temp_dir().join(format!("vk-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(1, 8));
        recorder.emit(&telemetry::Event {
            ts_us: 1,
            kind: telemetry::EventKind::Mark,
            name: "server.session_stalled".into(),
            span: None,
            parent: None,
            elapsed_us: None,
            value: None,
            fields: Vec::new(),
        });
        let config = ServerConfig {
            flight: Some(Arc::clone(&recorder)),
            flight_dir: dir.display().to_string(),
            ..ServerConfig::default()
        };
        // A transport failure is not a typed abort: no post-mortem.
        dump_flight(
            &config,
            6,
            &SessionError::Transport(vehicle_key::TransportError::Closed),
        );
        assert!(!dir.join("flightrec-6.json").exists());
        // A typed abort dumps the retained history.
        dump_flight(
            &config,
            7,
            &SessionError::Protocol(ProtocolError::RecoveryExhausted(2)),
        );
        let text = std::fs::read_to_string(dir.join("flightrec-7.json")).expect("dump written");
        let doc = Json::parse(text.trim()).expect("valid json");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("flightrec"));
        assert_eq!(doc.get("session").and_then(Json::as_u64), Some(7));
        assert_eq!(
            doc.get("reason").and_then(Json::as_str),
            Some("recovery_exhausted")
        );
        assert_eq!(
            doc.get("events").and_then(Json::items).map(<[Json]>::len),
            Some(1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
