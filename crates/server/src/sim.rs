//! Deterministic simulation of the correlated key material a session's two
//! endpoints hold.
//!
//! Over a real LoRa link the endpoints measure reciprocal channel state and
//! quantize it into *almost*-agreeing bit strings; over TCP there is no
//! physical channel, so the server and the load generator derive that
//! material deterministically from the values both sides already share —
//! the session id and the two handshake nonces. Bob's key is pseudorandom;
//! Alice's is Bob's with `error_bits` distinct positions flipped, standing
//! in for the residual channel-estimation mismatch the reconciler exists
//! to repair. Both sides compute the pair independently and keep only
//! their own half, so a genuine protocol failure (lost syndrome, MAC
//! mismatch, failed correction) shows up as a key mismatch exactly as it
//! would in deployment.

use quantize::BitString;

/// SplitMix64 — the small, seedable, dependency-free PRNG used everywhere
/// this crate needs determinism (key material, nonces, fault injection).
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Mix the session identity into one seed. Both endpoints know all three
/// inputs after the probe handshake.
fn session_seed(session_id: u32, nonce_a: u64, nonce_b: u64) -> u64 {
    let mut mix =
        SplitMix64::new(u64::from(session_id) ^ nonce_a.rotate_left(17) ^ nonce_b.rotate_left(43));
    mix.next_u64()
}

/// Derive `(k_alice, k_bob)` for a simulated session: `key_bits` of
/// pseudorandom key with `error_bits` distinct disagreeing positions.
///
/// # Panics
///
/// Panics if `error_bits > key_bits`.
pub fn derive_session_keys(
    session_id: u32,
    nonce_a: u64,
    nonce_b: u64,
    key_bits: usize,
    error_bits: usize,
) -> (BitString, BitString) {
    assert!(error_bits <= key_bits, "more errors than key bits");
    let mut rng = SplitMix64::new(session_seed(session_id, nonce_a, nonce_b));
    let mut k_bob = BitString::new();
    for _ in 0..key_bits {
        k_bob.push(rng.next_u64() & 1 == 1);
    }
    let mut k_alice = k_bob.clone();
    let mut flipped = std::collections::HashSet::new();
    while flipped.len() < error_bits {
        let p = rng.below(key_bits);
        if flipped.insert(p) {
            k_alice.set(p, !k_alice.get(p));
        }
    }
    (k_alice, k_bob)
}

/// Derive fresh `(k_alice, k_bob)` material for one re-probed block
/// (escalation rung 3 — see `vehicle_key::recovery`).
///
/// Deterministic in the session identity plus the block and attempt
/// numbers, so both endpoints independently compute the same pair while
/// every attempt still yields a genuinely fresh "measurement". Each bit
/// disagrees independently with probability `error_rate`: a re-probe is no
/// cleaner on average than the original channel, it just rolls new dice —
/// which is exactly what re-measuring a coherence-time-limited channel
/// buys in deployment.
pub fn derive_block_keys(
    session_id: u32,
    nonce_a: u64,
    nonce_b: u64,
    block: u32,
    attempt: u32,
    seg_bits: usize,
    error_rate: f64,
) -> (BitString, BitString) {
    let mut rng = SplitMix64::new(
        session_seed(session_id, nonce_a, nonce_b)
            ^ (u64::from(block) << 32)
            ^ u64::from(attempt).rotate_left(11)
            ^ 0x5EED_B10C,
    );
    let mut k_bob = BitString::new();
    for _ in 0..seg_bits {
        k_bob.push(rng.next_u64() & 1 == 1);
    }
    let mut k_alice = k_bob.clone();
    for p in 0..seg_bits {
        if rng.next_f64() < error_rate {
            k_alice.set(p, !k_alice.get(p));
        }
    }
    (k_alice, k_bob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_derive_identical_pairs() {
        let a = derive_session_keys(7, 11, 22, 128, 3);
        let b = derive_session_keys(7, 11, 22, 128, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn exactly_the_requested_hamming_distance() {
        for errors in [0, 1, 3, 16] {
            let (ka, kb) = derive_session_keys(1, 2, 3, 128, errors);
            assert_eq!(ka.hamming(&kb), errors);
            assert_eq!(ka.len(), 128);
        }
    }

    #[test]
    fn different_sessions_differ() {
        let (_, kb1) = derive_session_keys(1, 2, 3, 128, 0);
        let (_, kb2) = derive_session_keys(2, 2, 3, 128, 0);
        assert_ne!(kb1, kb2);
    }

    #[test]
    fn block_reprobes_are_deterministic_and_fresh_per_attempt() {
        let a = derive_block_keys(7, 11, 22, 1, 1, 64, 0.05);
        let b = derive_block_keys(7, 11, 22, 1, 1, 64, 0.05);
        assert_eq!(a, b, "both endpoints must derive the same re-probe");
        let c = derive_block_keys(7, 11, 22, 1, 2, 64, 0.05);
        assert_ne!(a.1, c.1, "a new attempt must re-measure");
        let (ka, kb) = derive_block_keys(7, 11, 22, 1, 1, 64, 0.0);
        assert_eq!(ka, kb, "zero error rate gives agreeing material");
    }

    #[test]
    fn splitmix_floats_are_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
