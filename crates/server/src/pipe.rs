//! Thread-safe in-memory duplex transport.
//!
//! The core's `DuplexQueue` is single-threaded (both endpoints borrow the
//! same queue); tests that want a *concurrent* exchange — one thread per
//! endpoint, as in the real server — use [`PipeTransport::pair`], which is
//! two crossed `mpsc` channels. `recv` blocks for a bounded poll window
//! like the TCP transport, and a hung-up peer surfaces as
//! [`TransportError::Closed`].

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;
use vehicle_key::{Transport, TransportError};

/// One endpoint of an in-memory duplex link.
#[derive(Debug)]
pub struct PipeTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    poll: Duration,
}

impl PipeTransport {
    /// Create a connected pair. `poll` bounds how long `recv` blocks
    /// before reporting "no frame yet".
    pub fn pair(poll: Duration) -> (PipeTransport, PipeTransport) {
        let (a_tx, a_rx) = channel();
        let (b_tx, b_rx) = channel();
        (
            PipeTransport {
                tx: a_tx,
                rx: b_rx,
                poll,
            },
            PipeTransport {
                tx: b_tx,
                rx: a_rx,
                poll,
            },
        )
    }
}

impl Transport for PipeTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.recv_timeout(self.poll) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_between_threads() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(100));
        let t = std::thread::spawn(move || {
            b.send(b"ping").unwrap();
            loop {
                if let Some(f) = b.recv().unwrap() {
                    return f;
                }
            }
        });
        let got = loop {
            if let Some(f) = a.recv().unwrap() {
                break f;
            }
        };
        assert_eq!(got, b"ping");
        a.send(b"pong").unwrap();
        assert_eq!(t.join().unwrap(), b"pong");
    }

    #[test]
    fn hangup_is_closed_and_timeout_is_none() {
        let (mut a, b) = PipeTransport::pair(Duration::from_millis(10));
        assert_eq!(a.recv(), Ok(None));
        drop(b);
        assert_eq!(a.recv(), Err(TransportError::Closed));
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
    }
}
