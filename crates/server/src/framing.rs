//! Length-prefixed framing over TCP.
//!
//! Wire format: each frame is a 4-byte big-endian length `n` followed by
//! `n` bytes of payload (one encoded protocol
//! [`Message`](vehicle_key::Message)). Frames longer than
//! [`MAX_FRAME_LEN`] are rejected before any allocation of the stated
//! size, so a malicious or corrupted length prefix cannot balloon memory.
//!
//! [`FrameDecoder`] is a pure incremental decoder (bytes in, frames out)
//! so partial reads — the normal case on a socket with a read timeout —
//! never lose data. [`TcpTransport`] pairs it with a `TcpStream` to
//! implement the core [`Transport`] trait: `recv` polls for up to the
//! configured timeout and returns `Ok(None)` when no complete frame
//! arrived, which is what the retry layer in [`session`](crate::session)
//! keys off.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vehicle_key::{Transport, TransportError};

/// Upper bound on a frame's payload length. The largest legitimate frame
/// is a syndrome (tens of i16 code values plus a 32-byte MAC), far below
/// this; anything bigger is garbage or an attack.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Prefix a payload with its big-endian u32 length.
///
/// # Panics
///
/// Panics if `frame` exceeds [`MAX_FRAME_LEN`]; senders control their own
/// frame sizes, so this is a programming error, not an I/O condition.
pub fn encode_frame(frame: &[u8]) -> Vec<u8> {
    assert!(
        frame.len() <= MAX_FRAME_LEN,
        "frame of {} bytes exceeds MAX_FRAME_LEN",
        frame.len()
    );
    // The assert above bounds the length well under u32::MAX; a lying
    // caller saturates rather than truncates.
    let len = u32::try_from(frame.len()).unwrap_or(u32::MAX);
    let mut out = Vec::with_capacity(4 + frame.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(frame);
    out
}

/// Incremental frame decoder: feed it byte chunks as they arrive, pop
/// complete frames out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Create an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete frame data).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the length prefix exceeds
    /// [`MAX_FRAME_LEN`] — the stream is unsynchronized or hostile and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let Some(prefix) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(*prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::Io(format!(
                "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        let Some(body) = self.buf.get(4..4 + len) else {
            return Ok(None);
        };
        let frame = body.to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

/// [`Transport`] over a `TcpStream` with length-prefixed frames.
///
/// `recv` blocks for at most the configured poll timeout; `Ok(None)` means
/// no complete frame arrived in that window. A clean peer close surfaces
/// as [`TransportError::Closed`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    chunk: [u8; 4096],
}

impl TcpTransport {
    /// Wrap a connected stream, setting its read timeout to `poll` (used
    /// as the `recv` polling window) and disabling Nagle so small protocol
    /// frames are not batched.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream, poll: Duration) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(poll))?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(),
            chunk: [0u8; 4096],
        })
    }

    /// The underlying stream (e.g. for `peer_addr`).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

fn io_error(e: std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => TransportError::Closed,
        _ => TransportError::Io(e.to_string()),
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream
            .write_all(&encode_frame(frame))
            .map_err(io_error)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(Some(frame));
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(TransportError::Closed),
                // vk-lint: allow(wire-safety, "Read contract guarantees n <= chunk.len()")
                Ok(n) => self.decoder.push(&self.chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_error(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_decode_round_trips() {
        let mut dec = FrameDecoder::new();
        for payload in [&b""[..], &b"x"[..], &[0u8; 1000][..]] {
            dec.push(&encode_frame(payload));
            assert_eq!(dec.next_frame().unwrap().as_deref(), Some(payload));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn partial_delivery_reassembles() {
        let frame = encode_frame(b"hello world");
        let mut dec = FrameDecoder::new();
        for chunk in frame.chunks(3) {
            dec.push(chunk);
        }
        assert_eq!(
            dec.next_frame().unwrap().as_deref(),
            Some(&b"hello world"[..])
        );
    }

    #[test]
    fn back_to_back_frames_in_one_chunk() {
        let mut bytes = encode_frame(b"a");
        bytes.extend_from_slice(&encode_frame(b"bb"));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"bb"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(TransportError::Io(_))));
    }
}
