//! Length-prefixed framing over TCP.
//!
//! Wire format: each frame is a 4-byte big-endian length `n` followed by
//! `n` bytes of payload (one encoded protocol
//! [`Message`](vehicle_key::Message)). Frames longer than
//! [`MAX_FRAME_LEN`] are rejected before any allocation of the stated
//! size, so a malicious or corrupted length prefix cannot balloon memory.
//!
//! [`FrameDecoder`] is a pure incremental decoder (bytes in, frames out)
//! so partial reads — the normal case on a socket with a read timeout —
//! never lose data. [`TcpTransport`] pairs it with a `TcpStream` to
//! implement the core [`Transport`] trait: `recv` polls for up to the
//! configured timeout and returns `Ok(None)` when no complete frame
//! arrived, which is what the retry layer in [`session`](crate::session)
//! keys off.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vehicle_key::{Transport, TransportError};

/// Upper bound on a frame's payload length. The largest legitimate frame
/// is a syndrome (tens of i16 code values plus a 32-byte MAC), far below
/// this; anything bigger is garbage or an attack.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Prefix a payload with its big-endian u32 length.
///
/// # Panics
///
/// Panics if `frame` exceeds [`MAX_FRAME_LEN`]; senders control their own
/// frame sizes, so this is a programming error, not an I/O condition.
pub fn encode_frame(frame: &[u8]) -> Vec<u8> {
    assert!(
        frame.len() <= MAX_FRAME_LEN,
        "frame of {} bytes exceeds MAX_FRAME_LEN",
        frame.len()
    );
    // The assert above bounds the length well under u32::MAX; a lying
    // caller saturates rather than truncates.
    let len = u32::try_from(frame.len()).unwrap_or(u32::MAX);
    let mut out = Vec::with_capacity(4 + frame.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(frame);
    out
}

/// Incremental frame decoder: feed it byte chunks as they arrive, pop
/// complete frames out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Create an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete frame data).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the length prefix exceeds
    /// [`MAX_FRAME_LEN`] — the stream is unsynchronized or hostile and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let Some(prefix) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(*prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::Io(format!(
                "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        let Some(body) = self.buf.get(4..4 + len) else {
            return Ok(None);
        };
        let frame = body.to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

/// Reusable zero-copy reassembly buffer for the readiness-driven reactor.
///
/// [`FrameDecoder`] copies twice per frame (socket → chunk array → its
/// own `Vec`, then `to_vec` per frame); fine for a thread-per-connection
/// server, wasteful at 10k concurrent sessions. `FrameBuf` reads the
/// socket *directly into* a per-session buffer that survives for the
/// connection's lifetime, and hands frames out as borrowed slices —
/// [`Message::decode`](vehicle_key::Message::decode) runs straight off
/// the receive buffer, only once the length prefix is satisfied.
///
/// Consumed bytes are reclaimed lazily: when the buffer fully drains (the
/// overwhelmingly common case — protocol frames are small and arrive
/// whole) the cursor resets without moving a byte; a long tail behind a
/// partial frame is compacted with a single `copy_within` once the dead
/// prefix outgrows the live data.
///
/// The wire format and the oversized-prefix rejection are identical to
/// [`FrameDecoder`]; property tests in `tests/proptests.rs` pin the two
/// to byte-equal behaviour under arbitrary chunking.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    start: usize,
}

/// Read size per [`FrameBuf::fill_from`] call — one socket read's worth
/// of spare capacity, appended to whatever partial frame is buffered.
const READ_CHUNK: usize = 4096;

impl FrameBuf {
    /// An empty buffer (allocates on first use, then reuses capacity).
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Append bytes arriving from somewhere other than a reader (tests,
    /// in-memory feeds).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One `read` from `r` directly into the buffer's tail. Returns the
    /// byte count — `Ok(0)` is end-of-stream. `WouldBlock`/`Interrupted`
    /// are the caller's to handle (the reactor's read loop keys off
    /// them), so they propagate untranslated.
    ///
    /// # Errors
    ///
    /// Propagates the reader's error.
    pub fn fill_from<R: std::io::Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        let live = self.buf.len();
        self.buf.resize(live + READ_CHUNK, 0);
        // vk-lint: allow(wire-safety, "Read contract guarantees n <= the slice just reserved")
        let result = r.read(&mut self.buf[live..]);
        let n = *result.as_ref().unwrap_or(&0);
        self.buf.truncate(live + n.min(READ_CHUNK));
        result
    }

    /// Drop consumed bytes when they dominate the buffer. Amortized O(1):
    /// each retained byte moves at most once per time the cursor passes
    /// it.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > READ_CHUNK && self.start >= self.buf.len() - self.start {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
    }

    /// The byte range of the next complete frame's payload, advancing the
    /// cursor past it. Prefer [`next_frame`](FrameBuf::next_frame); the
    /// range form exists for callers that need to end the borrow early.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the length prefix exceeds
    /// [`MAX_FRAME_LEN`] — unsynchronized or hostile stream; drop the
    /// connection.
    pub fn next_frame_range(&mut self) -> Result<Option<std::ops::Range<usize>>, TransportError> {
        let Some(prefix) = self
            .buf
            .get(self.start..)
            .and_then(|b| b.first_chunk::<4>())
        else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(*prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::Io(format!(
                "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        let body = self.start + 4..self.start + 4 + len;
        if body.end > self.buf.len() {
            return Ok(None);
        }
        self.start = body.end;
        Ok(Some(body))
    }

    /// Borrow a range previously returned by
    /// [`next_frame_range`](FrameBuf::next_frame_range). Returns an empty
    /// slice for a range the buffer no longer covers (a compaction has
    /// happened in between — ranges are only valid until the next
    /// `fill_from`/`push`).
    pub fn slice(&self, range: std::ops::Range<usize>) -> &[u8] {
        self.buf.get(range).unwrap_or(&[])
    }

    /// The next complete frame as a borrowed slice, advancing past it.
    ///
    /// # Errors
    ///
    /// Same as [`next_frame_range`](FrameBuf::next_frame_range).
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, TransportError> {
        match self.next_frame_range()? {
            Some(range) => Ok(Some(self.slice(range))),
            None => Ok(None),
        }
    }
}

/// [`Transport`] over a `TcpStream` with length-prefixed frames.
///
/// `recv` blocks for at most the configured poll timeout; `Ok(None)` means
/// no complete frame arrived in that window. A clean peer close surfaces
/// as [`TransportError::Closed`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    chunk: [u8; 4096],
}

impl TcpTransport {
    /// Wrap a connected stream, setting its read timeout to `poll` (used
    /// as the `recv` polling window) and disabling Nagle so small protocol
    /// frames are not batched.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream, poll: Duration) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(poll))?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(),
            chunk: [0u8; 4096],
        })
    }

    /// The underlying stream (e.g. for `peer_addr`).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

fn io_error(e: std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => TransportError::Closed,
        _ => TransportError::Io(e.to_string()),
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream
            .write_all(&encode_frame(frame))
            .map_err(io_error)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(Some(frame));
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(TransportError::Closed),
                // vk-lint: allow(wire-safety, "Read contract guarantees n <= chunk.len()")
                Ok(n) => self.decoder.push(&self.chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_error(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_decode_round_trips() {
        let mut dec = FrameDecoder::new();
        for payload in [&b""[..], &b"x"[..], &[0u8; 1000][..]] {
            dec.push(&encode_frame(payload));
            assert_eq!(dec.next_frame().unwrap().as_deref(), Some(payload));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn partial_delivery_reassembles() {
        let frame = encode_frame(b"hello world");
        let mut dec = FrameDecoder::new();
        for chunk in frame.chunks(3) {
            dec.push(chunk);
        }
        assert_eq!(
            dec.next_frame().unwrap().as_deref(),
            Some(&b"hello world"[..])
        );
    }

    #[test]
    fn back_to_back_frames_in_one_chunk() {
        let mut bytes = encode_frame(b"a");
        bytes.extend_from_slice(&encode_frame(b"bb"));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"bb"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(TransportError::Io(_))));
    }

    #[test]
    fn framebuf_round_trips_and_matches_the_decoder() {
        let mut fb = FrameBuf::new();
        for payload in [&b""[..], &b"x"[..], &[7u8; 1000][..]] {
            fb.push(&encode_frame(payload));
            assert_eq!(fb.next_frame().unwrap(), Some(payload));
        }
        assert_eq!(fb.next_frame().unwrap(), None);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn framebuf_single_byte_chunks_reassemble() {
        let frame = encode_frame(b"hello world");
        let mut fb = FrameBuf::new();
        for b in &frame {
            assert_eq!(fb.next_frame().unwrap(), None);
            fb.push(std::slice::from_ref(b));
        }
        assert_eq!(fb.next_frame().unwrap(), Some(&b"hello world"[..]));
    }

    #[test]
    fn framebuf_reads_directly_from_a_reader() {
        let mut wire = encode_frame(b"one");
        wire.extend_from_slice(&encode_frame(b"two"));
        let mut src = &wire[..];
        let mut fb = FrameBuf::new();
        let n = fb.fill_from(&mut src).unwrap();
        assert_eq!(n, wire.len());
        assert_eq!(fb.next_frame().unwrap(), Some(&b"one"[..]));
        assert_eq!(fb.next_frame().unwrap(), Some(&b"two"[..]));
        assert_eq!(fb.next_frame().unwrap(), None);
        // End of stream reads zero.
        assert_eq!(fb.fill_from(&mut src).unwrap(), 0);
    }

    #[test]
    fn framebuf_reuses_capacity_after_draining() {
        let mut fb = FrameBuf::new();
        fb.push(&encode_frame(&[1u8; 900]));
        assert!(fb.next_frame().unwrap().is_some());
        let mut src = &b""[..];
        let _ = fb.fill_from(&mut src); // triggers the drain-reset compaction
        let cap = fb.buf.capacity();
        for _ in 0..50 {
            fb.push(&encode_frame(&[2u8; 900]));
            assert!(fb.next_frame().unwrap().is_some());
            let _ = fb.fill_from(&mut src);
        }
        assert_eq!(fb.buf.capacity(), cap, "steady state must not reallocate");
    }

    #[test]
    fn framebuf_compacts_long_dead_prefixes() {
        let mut fb = FrameBuf::new();
        // Burn through enough frames to build a dead prefix past the
        // compaction threshold while a partial frame is pending.
        for i in 0..10u8 {
            fb.push(&encode_frame(&[i; 800]));
        }
        let partial = encode_frame(b"tail");
        fb.push(&partial[..5]); // length prefix + 1 byte, incomplete
        for i in 0..10u8 {
            assert_eq!(fb.next_frame().unwrap(), Some(&[i; 800][..]));
        }
        assert_eq!(fb.next_frame().unwrap(), None);
        // A reader fill compacts; the pending partial frame survives.
        let rest = &partial[5..];
        let mut src = rest;
        fb.fill_from(&mut src).unwrap();
        assert_eq!(fb.next_frame().unwrap(), Some(&b"tail"[..]));
    }

    #[test]
    fn framebuf_rejects_oversized_prefix_like_the_decoder() {
        let mut fb = FrameBuf::new();
        fb.push(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(fb.next_frame(), Err(TransportError::Io(_))));
    }

    #[test]
    fn framebuf_range_form_survives_until_the_next_fill() {
        let mut fb = FrameBuf::new();
        fb.push(&encode_frame(b"abc"));
        let range = fb.next_frame_range().unwrap().expect("complete frame");
        assert_eq!(fb.slice(range.clone()), b"abc");
        // After a fill the range may be stale; the accessor degrades to
        // empty rather than returning unrelated bytes past the buffer.
        let big = 1usize << 40;
        assert_eq!(fb.slice(big..big + 3), b"");
    }
}
