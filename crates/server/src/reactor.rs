//! The readiness-driven serving core: N shard threads, each multiplexing
//! thousands of non-blocking connections over one [`Poller`] and driving
//! every deadline from one [`TimerWheel`].
//!
//! The blocking core ([`crate::server`]) spends one OS thread per live
//! session and wakes its accept loop on a 5 ms sleep; both put a hard
//! ceiling (and a permanent idle cost) on concurrency. The reactor
//! removes both:
//!
//! * **Accept** is a readiness source like any other: shard 0 registers
//!   the listener with its poller and drains `accept` until `WouldBlock`
//!   when — and only when — the kernel reports a pending connection. An
//!   idle server makes *zero* syscalls: every shard blocks in
//!   `epoll_wait`/`poll` with an infinite timeout until a socket, a
//!   timer, or a shutdown waker fires.
//! * **Sessions** are [`SessionCore`] state machines keyed by a
//!   shard-local connection token. Shard 0 distributes accepted streams
//!   round-robin over per-shard channels and rings the target shard's
//!   waker; from then on the connection's frames, timers, and teardown
//!   all happen on its shard thread with no cross-thread handoff.
//! * **Deadlines** (handshake/session budgets, the stall watchdog, the
//!   post-confirmation linger) arm a hierarchical timer wheel at the
//!   instant [`SessionCore::next_deadline`] reports. Re-arming on every
//!   dispatch is O(1); cancellation is lazy via per-connection
//!   generation counters, so a stale pop is recognised and dropped.
//! * **Frames** reassemble incrementally in a per-connection
//!   [`FrameBuf`]: bytes land in a reused buffer, `Message::decode` runs
//!   only when a length prefix is satisfied, and outbound frames wait in
//!   a per-connection byte queue flushed on writability.
//!
//! Everything the blocking core records — admission control, the stats
//! counters, the admin session table, flight-recorder post-mortems,
//! attack classification — goes through the same
//! [`accumulate`]/[`record_outcome`] helpers, so the two cores are
//! behaviourally interchangeable and the whole adversary suite runs
//! against either.
//!
//! Lifecycle sessions ([`ServerConfig::lifecycle`]) hand off to a
//! dedicated blocking thread after the key confirms: the lifecycle plane
//! is a blocking loop by design, and confirmed sessions are long-lived
//! and few relative to handshakes. `ServerMode::Auto` therefore prefers
//! the blocking core when a lifecycle plane is configured; an explicit
//! `ServerMode::Reactor` still serves it via the handoff threads.

use crate::admin::SessionTable;
use crate::fault::{FaultConfig, FaultLens};
use crate::framing::{encode_frame, FrameBuf, TcpTransport};
use crate::lifecycle::{serve_lifecycle, GroupPlane, LifecycleStats};
use crate::poll::{Event, Interest, Poller, Token, Waker};
use crate::server::{
    accumulate, attack_kind, dump_flight, record_outcome, Backpressure, ServerConfig, ServerStats,
};
use crate::session::{ServeOutcome, SessionCore, SessionError, SessionHandoff};
use crate::sim::SplitMix64;
use crate::wheel::{Expired, TimerWheel};
use reconcile::AutoencoderReconciler;
use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vehicle_key::TransportError;

/// Token reserved for the listener on shard 0.
const LISTENER: Token = Token(u64::MAX);
/// Token reserved for every shard's wakers.
const WAKER: Token = Token(u64::MAX - 1);

/// Handles every shard shares with the [`crate::server::Server`] facade.
#[derive(Clone)]
pub(crate) struct Shared {
    pub(crate) shutdown: Arc<std::sync::atomic::AtomicBool>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) sessions: Arc<SessionTable>,
    pub(crate) session_ids: Arc<AtomicU32>,
    pub(crate) backpressure: Arc<Backpressure>,
    pub(crate) lifecycle_stats: Arc<LifecycleStats>,
    pub(crate) group_plane: Arc<GroupPlane>,
}

/// One live connection owned by a shard.
struct Conn {
    stream: TcpStream,
    peer_ip: IpAddr,
    core: SessionCore,
    /// Incremental inbound reassembly; reused across reads.
    buf: FrameBuf,
    /// Encoded outbound bytes not yet accepted by the socket.
    outbound: Vec<u8>,
    /// What the poller currently watches for this socket.
    interest: Interest,
    /// Per-session outbound fault injection, when configured.
    lens: Option<FaultLens>,
    /// Timer generation: bumped on every I/O dispatch so outstanding
    /// wheel entries from before the dispatch become stale pops.
    gen: u64,
}

/// Spin up the reactor: one shard thread per `config.workers`, shard 0
/// owning the listener. Returns the shard join handles and one shutdown
/// waker per shard.
pub(crate) fn spawn_shards(
    listener: TcpListener,
    config: ServerConfig,
    reconciler: Arc<AutoencoderReconciler>,
    shared: Shared,
) -> std::io::Result<(Vec<JoinHandle<()>>, Vec<Waker>)> {
    let nshards = config.workers.max(1);
    let mut pollers = Vec::with_capacity(nshards);
    let mut server_wakers = Vec::with_capacity(nshards);
    let mut peer_wakers = Vec::with_capacity(nshards);
    let mut senders = Vec::with_capacity(nshards);
    let mut receivers = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let mut poller = Poller::new()?;
        let waker = poller.add_waker(WAKER)?;
        server_wakers.push(waker.try_clone()?);
        peer_wakers.push(waker);
        pollers.push(poller);
        let (tx, rx) = mpsc::channel::<(TcpStream, IpAddr)>();
        senders.push(tx);
        receivers.push(rx);
    }
    if let Some(p0) = pollers.first_mut() {
        p0.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    }
    telemetry::counter(
        "server.reactor_shards",
        u64::try_from(nshards).unwrap_or(u64::MAX),
    );

    let mut handles = Vec::with_capacity(nshards);
    let mut listener = Some(listener);
    let mut senders = Some(senders);
    let mut peer_wakers = Some(peer_wakers);
    for (id, (poller, rx)) in pollers.into_iter().zip(receivers).enumerate().rev() {
        // Built in reverse so shard 0 — which takes the listener, the
        // senders, and the peer wakers — pops them last.
        let shard = Shard {
            id,
            poller,
            wheel: TimerWheel::new(Instant::now()),
            conns: HashMap::new(),
            next_token: 0,
            rx,
            rx_closed: false,
            config: config.clone(),
            reconciler: Arc::clone(&reconciler),
            shared: shared.clone(),
            listener: if id == 0 { listener.take() } else { None },
            senders: if id == 0 {
                senders.take().unwrap_or_default()
            } else {
                Vec::new()
            },
            peer_wakers: if id == 0 {
                peer_wakers.take().unwrap_or_default()
            } else {
                Vec::new()
            },
            accepted: 0,
            rr: 0,
            lifecycle_threads: Vec::new(),
            events: Vec::new(),
            expired: Vec::new(),
            frames: Vec::new(),
            emitted: Vec::new(),
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("vk-shard-{id}"))
                .spawn(move || shard.run())?,
        );
    }
    handles.reverse();
    Ok((handles, server_wakers))
}

struct Shard {
    id: usize,
    poller: Poller,
    wheel: TimerWheel,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    rx: mpsc::Receiver<(TcpStream, IpAddr)>,
    rx_closed: bool,
    config: ServerConfig,
    reconciler: Arc<AutoencoderReconciler>,
    shared: Shared,
    /// Shard 0 only: the accept source, dropped when accepting ends.
    listener: Option<TcpListener>,
    /// Shard 0 only: distribution channels to every shard (own included).
    senders: Vec<mpsc::Sender<(TcpStream, IpAddr)>>,
    /// Shard 0 only: wakers for every shard, rung on distribution and
    /// once more when the senders drop so peers observe the disconnect.
    peer_wakers: Vec<Waker>,
    accepted: u64,
    /// Round-robin cursor over `senders`.
    rr: usize,
    /// Blocking lifecycle handoffs in flight; joined before shard exit.
    lifecycle_threads: Vec<JoinHandle<()>>,
    // Reused scratch buffers.
    events: Vec<Event>,
    expired: Vec<Expired>,
    frames: Vec<Vec<u8>>,
    emitted: Vec<Vec<u8>>,
}

impl Shard {
    fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::Relaxed) && self.listener.is_some() {
                self.stop_accepting();
            }
            self.drain_incoming();
            if self.rx_closed && self.conns.is_empty() && self.listener.is_none() {
                break;
            }
            let timeout = self
                .wheel
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            let mut events = std::mem::take(&mut self.events);
            // vk-lint: allow(reactor-blocking, "the shard's one sanctioned block: Poller::wait with the wheel's next deadline as timeout")
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                telemetry::counter("server.reactor_wait_errors", 1);
                eprintln!("vk-server: shard {} poll error: {e}", self.id);
                // vk-lint: allow(reactor-blocking, "error backoff: a persistently failing poller would otherwise spin the core at 100%")
                std::thread::sleep(Duration::from_millis(10));
            }
            let now = Instant::now();
            for ev in &events {
                match ev.token {
                    LISTENER => self.accept_burst(),
                    WAKER => {}
                    Token(t) => self.dispatch_io(t, ev.readable, ev.writable, now),
                }
            }
            self.events = events;
            let mut expired = std::mem::take(&mut self.expired);
            self.wheel.advance(now, &mut expired);
            for (Token(t), gen) in expired.drain(..) {
                self.dispatch_tick(t, gen, now);
            }
            self.expired = expired;
        }
        for handle in self.lifecycle_threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Shard 0: drain the accept queue until the kernel runs dry, then go
    /// back to sleep — no polling, no accept-loop thread.
    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    if !self.shared.backpressure.admit(
                        peer.ip(),
                        self.config.pending_cap,
                        self.config.per_ip_cap,
                    ) {
                        self.shared
                            .stats
                            .rejected_overload
                            .fetch_add(1, Ordering::Relaxed);
                        telemetry::counter("server.rejected_overload", 1);
                        drop(stream);
                        continue;
                    }
                    self.accepted += 1;
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("server.accepted", 1);
                    let target = self.rr % self.senders.len().max(1);
                    self.rr = self.rr.wrapping_add(1);
                    let delivered = self
                        .senders
                        .get(target)
                        .is_some_and(|tx| tx.send((stream, peer.ip())).is_ok());
                    if delivered {
                        if let Some(waker) = self.peer_wakers.get(target) {
                            waker.wake();
                        }
                    } else {
                        // The target shard died; the stream is gone with
                        // the failed send. Release its admission slots.
                        self.shared.backpressure.dequeued();
                        self.shared.backpressure.release(peer.ip());
                    }
                    if self.config.max_sessions.is_some_and(|m| self.accepted >= m) {
                        self.stop_accepting();
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    telemetry::counter("server.accept_errors", 1);
                    eprintln!("vk-server: accept error: {e}");
                    return;
                }
            }
        }
    }

    /// Stop accepting: close the listener, drop every distribution
    /// sender (peers see the disconnect), and ring every shard so one
    /// blocked in an indefinite wait re-checks its exit condition.
    fn stop_accepting(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        self.senders.clear();
        for waker in &self.peer_wakers {
            waker.wake();
        }
    }

    fn drain_incoming(&mut self) {
        loop {
            match self.rx.try_recv() {
                Ok((stream, ip)) => self.setup_conn(stream, ip),
                Err(mpsc::TryRecvError::Empty) => return,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.rx_closed = true;
                    return;
                }
            }
        }
    }

    /// Adopt one accepted stream: session id, admin-table entry,
    /// non-blocking registration, session core, first timer.
    fn setup_conn(&mut self, stream: TcpStream, peer_ip: IpAddr) {
        self.shared.backpressure.dequeued();
        let session_id = self.shared.session_ids.fetch_add(1, Ordering::Relaxed);
        self.shared.sessions.register(session_id);
        telemetry::gauge(
            "server.sessions_live",
            self.shared.sessions.live_len() as f64,
        );
        if let Err(e) = stream
            .set_nonblocking(true)
            .and_then(|()| stream.set_nodelay(true))
        {
            let err =
                SessionError::Transport(TransportError::Io(format!("socket setup failed: {e}")));
            record_outcome(
                &self.config,
                session_id,
                &self.shared.stats,
                &self.shared.sessions,
                &Err(err),
            );
            self.shared.backpressure.release(peer_ip);
            return;
        }
        let now = Instant::now();
        let nonce_a = SplitMix64::new(self.config.nonce_seed ^ u64::from(session_id)).next_u64();
        let core = SessionCore::new(
            &self.reconciler,
            session_id,
            nonce_a,
            &self.config.params,
            self.config.lifecycle.is_some(),
            now,
        );
        let lens = self.config.fault.filter(|f| !f.is_noop()).map(|fault| {
            FaultLens::new(FaultConfig {
                seed: SplitMix64::new(fault.seed ^ u64::from(session_id)).next_u64(),
                ..fault
            })
        });
        let token = self.next_token;
        self.next_token += 1;
        if let Err(e) = self
            .poller
            .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
        {
            let err = SessionError::Transport(TransportError::Io(format!(
                "poller registration failed: {e}"
            )));
            record_outcome(
                &self.config,
                session_id,
                &self.shared.stats,
                &self.shared.sessions,
                &Err(err),
            );
            self.shared.backpressure.release(peer_ip);
            return;
        }
        let deadline = core.next_deadline();
        self.wheel.schedule(Token(token), 0, deadline);
        self.conns.insert(
            token,
            Conn {
                stream,
                peer_ip,
                core,
                buf: FrameBuf::new(),
                outbound: Vec::new(),
                interest: Interest::READABLE,
                lens,
                gen: 0,
            },
        );
    }

    /// Socket readiness for one connection: flush on writable, read to
    /// `WouldBlock` on readable, feed complete frames through the core,
    /// then re-arm interest and the timer.
    fn dispatch_io(&mut self, token: u64, readable: bool, writable: bool, now: Instant) {
        let mut frames = std::mem::take(&mut self.frames);
        let mut emitted = std::mem::take(&mut self.emitted);
        let mut terminal: Option<SessionError> = None;
        let mut eof = false;
        let disposition = {
            let Some(conn) = self.conns.get_mut(&token) else {
                self.frames = frames;
                self.emitted = emitted;
                return;
            };
            if writable {
                if let Err(e) = flush_outbound(conn) {
                    terminal = Some(SessionError::Transport(TransportError::Io(e.to_string())));
                }
            }
            if readable && terminal.is_none() {
                loop {
                    match conn.buf.fill_from(&mut conn.stream) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(_) => {
                            if let Err(e) = pump_frames(conn, now, &mut frames, &mut emitted) {
                                terminal = Some(e);
                                break;
                            }
                            if conn.core.is_finished() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => {
                            terminal =
                                Some(SessionError::Transport(TransportError::Io(e.to_string())));
                            break;
                        }
                    }
                }
            }
            if terminal.is_none() && !conn.outbound.is_empty() {
                if let Err(e) = flush_outbound(conn) {
                    terminal = Some(SessionError::Transport(TransportError::Io(e.to_string())));
                }
            }
            if eof && terminal.is_none() && !conn.core.is_finished() {
                if let Err(e) = conn.core.on_closed() {
                    terminal = Some(e);
                }
            }
            conn.gen += 1;
            Disposition {
                finished: conn.core.is_finished(),
                fd: conn.stream.as_raw_fd(),
                gen: conn.gen,
                deadline: conn.core.next_deadline(),
                want: if conn.outbound.is_empty() {
                    Interest::READABLE
                } else {
                    Interest::BOTH
                },
                have: conn.interest,
            }
        };
        self.frames = frames;
        self.emitted = emitted;
        if let Some(e) = terminal {
            self.finish_conn(token, Err(e));
            return;
        }
        if disposition.finished {
            self.complete_conn(token);
            return;
        }
        if eof {
            // `on_closed` returned Ok without finishing: the core was
            // already done. Nothing further can arrive; tear down quietly.
            self.finish_conn(token, Err(SessionError::Transport(TransportError::Closed)));
            return;
        }
        if disposition.want != disposition.have {
            let _ = self
                .poller
                .reregister(disposition.fd, Token(token), disposition.want);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = disposition.want;
            }
        }
        self.wheel
            .schedule(Token(token), disposition.gen, disposition.deadline);
    }

    /// A timer popped for `token` at generation `gen`; stale generations
    /// are lazily-cancelled entries and are dropped on the floor.
    fn dispatch_tick(&mut self, token: u64, gen: u64, now: Instant) {
        let (result, finished, deadline) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.gen != gen {
                return;
            }
            let result = conn.core.on_tick(now);
            (result, conn.core.is_finished(), conn.core.next_deadline())
        };
        match result {
            Err(e) => self.finish_conn(token, Err(e)),
            Ok(()) if finished => self.complete_conn(token),
            Ok(()) => self.wheel.schedule(Token(token), gen, deadline),
        }
    }

    /// Tear down a connection with a terminal result, routing the stats,
    /// admin-table, and post-mortem bookkeeping through the same helpers
    /// the blocking core uses.
    fn finish_conn(&mut self, token: u64, result: Result<ServeOutcome, SessionError>) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if let Ok(outcome) = &result {
            accumulate(&self.shared.stats, outcome);
        }
        record_outcome(
            &self.config,
            conn.core.session_id(),
            &self.shared.stats,
            &self.shared.sessions,
            &result,
        );
        self.shared.backpressure.release(conn.peer_ip);
    }

    /// A session ran to completion: count it, flush the tail of the
    /// outbound queue, and either close or hand off to the lifecycle
    /// plane on a dedicated blocking thread.
    fn complete_conn(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let session_id = conn.core.session_id();
        let Some((outcome, handoff)) = conn.core.take_finished() else {
            self.shared.backpressure.release(conn.peer_ip);
            return;
        };
        accumulate(&self.shared.stats, &outcome);
        record_outcome(
            &self.config,
            session_id,
            &self.shared.stats,
            &self.shared.sessions,
            &Ok(outcome),
        );
        // The confirm reply (and any linger-window duplicates) may still
        // be queued; switch to blocking with a bounded timeout so the
        // final bytes reach the peer before the socket drops.
        if !conn.outbound.is_empty() {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(2)));
            // vk-lint: allow(reactor-blocking, "teardown flush, bounded by the 2s write timeout set on the line above")
            let _ = conn.stream.write_all(conn.outbound.as_slice());
            conn.outbound.clear();
        }
        match (self.config.lifecycle.clone(), handoff) {
            (Some(lc), Some(handoff)) => {
                let _ = conn.stream.set_nonblocking(false);
                let config = self.config.clone();
                let shared = self.shared.clone();
                let peer_ip = conn.peer_ip;
                let stream = conn.stream;
                let spawned = std::thread::Builder::new()
                    .name(format!("vk-lifecycle-{session_id}"))
                    .spawn(move || {
                        serve_handoff(
                            stream, session_id, &handoff, &outcome, &lc, &config, &shared,
                        );
                        shared.backpressure.release(peer_ip);
                    });
                match spawned {
                    Ok(handle) => self.lifecycle_threads.push(handle),
                    Err(e) => {
                        eprintln!("vk-server: lifecycle handoff spawn failed: {e}");
                        self.shared.backpressure.release(peer_ip);
                    }
                }
            }
            _ => self.shared.backpressure.release(conn.peer_ip),
        }
    }
}

/// Interest/timer state computed while the connection was mutably
/// borrowed, applied after the borrow ends.
struct Disposition {
    finished: bool,
    fd: std::os::unix::io::RawFd,
    gen: u64,
    deadline: Instant,
    want: Interest,
    have: Interest,
}

/// Drain every complete frame out of the connection's reassembly buffer
/// through its session core, queueing replies (trace extension appended,
/// fault lens applied, length-prefix framed) onto the outbound buffer.
fn pump_frames(
    conn: &mut Conn,
    now: Instant,
    frames: &mut Vec<Vec<u8>>,
    emitted: &mut Vec<Vec<u8>>,
) -> Result<(), SessionError> {
    loop {
        let Some(range) = conn.buf.next_frame_range()? else {
            return Ok(());
        };
        let was_handshaken = conn.core.handshaken();
        frames.clear();
        let res = conn.core.on_frame(conn.buf.slice(range), now, frames);
        {
            // Trace scope for this dispatch only: guards cannot outlive
            // the call because the thread-local trace stack is shared by
            // every session on this shard.
            let _trace_guard = conn
                .core
                .trace()
                .filter(|_| telemetry::enabled())
                .map(|ctx| telemetry::push_trace(ctx.trace_id, "alice"));
            if !was_handshaken && conn.core.handshaken() && telemetry::enabled() {
                // One short-lived span marks the handshake on the alice
                // track and records the client's span as remote parent —
                // enough to stitch both peers into one exported trace.
                let mut span = telemetry::span("server.session")
                    .field("session_id", u64::from(conn.core.session_id()));
                if let Some(ctx) = conn.core.trace() {
                    span = span.field("remote_parent", ctx.parent_span);
                }
                let _span_guard = span.enter();
            }
            let ext = crate::obs::outbound_extension();
            for frame in frames.drain(..) {
                queue_frame(conn, frame, ext.as_deref(), emitted);
            }
        }
        res?;
        if conn.core.is_finished() {
            return Ok(());
        }
    }
}

/// Frame one reply onto the connection's outbound byte queue: append the
/// trace extension, run the fault lens (matching the blocking core's
/// `FaultyTransport` byte-for-byte), then length-prefix each emission.
fn queue_frame(
    conn: &mut Conn,
    mut frame: Vec<u8>,
    ext: Option<&[u8]>,
    emitted: &mut Vec<Vec<u8>>,
) {
    if let Some(ext) = ext {
        frame.extend_from_slice(ext);
    }
    match &mut conn.lens {
        Some(lens) => {
            emitted.clear();
            lens.apply(&frame, emitted);
            for wire in emitted.drain(..) {
                conn.outbound.extend_from_slice(&encode_frame(&wire));
            }
        }
        None => conn.outbound.extend_from_slice(&encode_frame(&frame)),
    }
}

/// Write queued outbound bytes until done or the socket pushes back.
fn flush_outbound(conn: &mut Conn) -> std::io::Result<()> {
    while !conn.outbound.is_empty() {
        match (&conn.stream).write(conn.outbound.as_slice()) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => {
                conn.outbound.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Run the blocking lifecycle plane over a confirmed session's stream —
/// the reactor's equivalent of the tail of the blocking core's
/// `serve_one`.
fn serve_handoff(
    stream: TcpStream,
    session_id: u32,
    handoff: &SessionHandoff,
    outcome: &ServeOutcome,
    lc: &crate::lifecycle::LifecycleConfig,
    config: &ServerConfig,
    shared: &Shared,
) {
    let mut transport = match TcpTransport::new(stream, config.poll) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vk-server: lifecycle socket setup failed: {e}");
            return;
        }
    };
    let fresh_seed = SplitMix64::new(config.nonce_seed ^ (u64::from(session_id) << 32)).next_u64();
    if let Err(e) = serve_lifecycle(
        &mut transport,
        session_id,
        handoff,
        outcome.entropy_bits,
        outcome.leaked_bits,
        lc,
        &config.params,
        lc.group.then_some(&*shared.group_plane),
        &shared.lifecycle_stats,
        fresh_seed,
    ) {
        if attack_kind(&e).is_some() {
            telemetry::counter("server.attack_aborts", 1);
            dump_flight(config, session_id, &e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerMode};
    use crate::session::{run_bob_session, RetryPolicy, SessionParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reconcile::AutoencoderTrainer;
    use std::io::Read;
    use std::sync::OnceLock;

    fn model() -> &'static Arc<AutoencoderReconciler> {
        static MODEL: OnceLock<Arc<AutoencoderReconciler>> = OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(7001);
            Arc::new(
                AutoencoderTrainer::default()
                    .with_steps(6000)
                    .train(&mut rng),
            )
        })
    }

    fn fast_params() -> SessionParams {
        SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        }
    }

    fn run_client(addr: std::net::SocketAddr, nonce_b: u64) -> crate::session::BobOutcome {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut transport =
            TcpTransport::new(stream, Duration::from_millis(10)).expect("transport");
        run_bob_session(&mut transport, model(), nonce_b, &fast_params()).expect("client session")
    }

    #[test]
    fn reactor_serves_sequential_sessions_to_matching_keys() {
        let server = Server::start(
            crate::server::ServerConfig {
                mode: ServerMode::Reactor,
                workers: 2,
                params: fast_params(),
                max_sessions: Some(3),
                ..crate::server::ServerConfig::default()
            },
            model().clone(),
        )
        .expect("reactor server starts");
        let addr = server.local_addr();
        for i in 0..3u64 {
            let outcome = run_client(addr, 0xAB0 + i);
            assert!(outcome.key_matched, "session {i} must match");
        }
        let stats = server.join();
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn reactor_multiplexes_concurrent_sessions_on_one_shard() {
        let server = Server::start(
            crate::server::ServerConfig {
                mode: ServerMode::Reactor,
                workers: 1,
                params: fast_params(),
                max_sessions: Some(8),
                ..crate::server::ServerConfig::default()
            },
            model().clone(),
        )
        .expect("reactor server starts");
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|i| scope.spawn(move || run_client(addr, 0xC0DE + i)))
                .collect();
            for handle in handles {
                assert!(handle.join().expect("client thread").key_matched);
            }
        });
        let stats = server.join();
        assert_eq!(stats.completed, 8, "{stats:?}");
    }

    #[test]
    fn reactor_evicts_a_silent_connection_at_the_handshake_deadline() {
        let server = Server::start(
            crate::server::ServerConfig {
                mode: ServerMode::Reactor,
                workers: 1,
                params: SessionParams {
                    handshake_timeout: Duration::from_millis(120),
                    ..fast_params()
                },
                max_sessions: Some(1),
                ..crate::server::ServerConfig::default()
            },
            model().clone(),
        )
        .expect("reactor server starts");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // Say nothing; the reactor's timer wheel must evict us.
        let started = Instant::now();
        let mut sink = [0u8; 16];
        let n = stream.read(&mut sink).unwrap_or(0);
        assert_eq!(n, 0, "server must close, not answer");
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "eviction too slow: {:?}",
            started.elapsed()
        );
        let stats = server.join();
        assert_eq!(stats.handshake_timeouts, 1, "{stats:?}");
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn reactor_applies_outbound_fault_injection() {
        // A lossy server side still converges thanks to client retries —
        // and the fault path (FaultLens on the reactor's outbound queue)
        // is exercised end-to-end.
        let server = Server::start(
            crate::server::ServerConfig {
                mode: ServerMode::Reactor,
                workers: 1,
                params: fast_params(),
                fault: Some(FaultConfig {
                    drop: 0.10,
                    duplicate: 0.10,
                    seed: 99,
                    ..FaultConfig::default()
                }),
                max_sessions: Some(2),
                ..crate::server::ServerConfig::default()
            },
            model().clone(),
        )
        .expect("reactor server starts");
        let addr = server.local_addr();
        for i in 0..2u64 {
            let outcome = run_client(addr, 0xFA17 + i);
            assert!(outcome.key_matched, "session {i} must survive the faults");
        }
        let stats = server.join();
        assert_eq!(stats.completed, 2, "{stats:?}");
    }

    /// CPU ticks (utime + stime, in `_SC_CLK_TCK` units) burned by the
    /// `vk-shard-*` threads of this process whose task ids are NOT in
    /// `before` — i.e. shards spawned after the `before` snapshot was
    /// taken. Returns the per-thread totals, smallest first.
    #[cfg(target_os = "linux")]
    fn new_shard_cpu_ticks(before: &std::collections::HashSet<String>) -> Vec<u64> {
        let mut ticks = Vec::new();
        for entry in std::fs::read_dir("/proc/self/task").expect("read task dir") {
            let entry = entry.expect("task entry");
            let tid = entry.file_name().to_string_lossy().into_owned();
            if before.contains(&tid) {
                continue;
            }
            let comm = std::fs::read_to_string(entry.path().join("comm")).unwrap_or_default();
            if !comm.starts_with("vk-shard") {
                continue;
            }
            let stat = std::fs::read_to_string(entry.path().join("stat")).unwrap_or_default();
            // Fields after the parenthesised comm: state is field 3, so
            // utime (field 14) and stime (field 15) sit at offsets 11/12.
            let Some(tail) = stat.rsplit(')').next() else {
                continue;
            };
            let fields: Vec<&str> = tail.split_whitespace().collect();
            if fields.len() > 12 {
                let utime: u64 = fields[11].parse().unwrap_or(0);
                let stime: u64 = fields[12].parse().unwrap_or(0);
                ticks.push(utime + stime);
            }
        }
        ticks.sort_unstable();
        ticks
    }

    /// The satellite smoke check for retiring the accept loop's 5 ms
    /// sleep: an idle reactor server must burn ~0% CPU. Every shard —
    /// including shard 0, which owns the listener as just another
    /// readiness source — blocks in `Poller::wait` with no timeout, so
    /// over an idle window the shard threads should accrue essentially
    /// no clock ticks. Tick accounting is per-thread, so concurrent
    /// tests in the same process cannot pollute the measurement; shards
    /// they spawn are excluded by the `before` snapshot, and any that
    /// race in during the window only ADD entries, which the
    /// smallest-`WORKERS` selection below ignores.
    #[cfg(target_os = "linux")]
    #[test]
    fn idle_reactor_burns_no_cpu() {
        const WORKERS: usize = 3;
        let before: std::collections::HashSet<String> = std::fs::read_dir("/proc/self/task")
            .expect("read task dir")
            .map(|e| {
                e.expect("task entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        let server = Server::start(
            crate::server::ServerConfig {
                mode: ServerMode::Reactor,
                workers: WORKERS,
                params: fast_params(),
                ..crate::server::ServerConfig::default()
            },
            model().clone(),
        )
        .expect("reactor server starts");
        std::thread::sleep(Duration::from_millis(400));
        let ticks = new_shard_cpu_ticks(&before);
        let stats = server.shutdown();
        assert!(
            ticks.len() >= WORKERS,
            "expected at least {WORKERS} fresh shard threads, saw {ticks:?}"
        );
        // Our shards are the idle ones: take the WORKERS smallest totals.
        // 5 ticks = 50 ms of CPU over a 400 ms window — far below what the
        // old 5 ms accept-poll loop burned, and generous enough for a
        // loaded CI box.
        let burned: u64 = ticks[..WORKERS].iter().sum();
        assert!(
            burned <= 5,
            "idle shards burned {burned} clock ticks over 400 ms ({ticks:?})"
        );
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn auto_mode_picks_the_reactor_without_lifecycle_and_blocking_with() {
        let plain = crate::server::ServerConfig::default();
        assert!(plain.lifecycle.is_none());
        let server = Server::start(plain, model().clone()).expect("server starts");
        // The reactor registers shutdown wakers; exercise the prompt-
        // shutdown path it enables (an idle blocked shard must exit).
        let started = Instant::now();
        let stats = server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "idle reactor shutdown stalled: {:?}",
            started.elapsed()
        );
        assert_eq!(stats.accepted, 0);
    }
}
