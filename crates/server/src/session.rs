//! Per-session state machines for the networked exchange.
//!
//! The wire flow extends the core protocol with a handshake and per-block
//! acknowledgements so it survives an unreliable transport:
//!
//! ```text
//! Bob (client)                          Alice (server)
//! ------------                          --------------
//! Probe{0, seq, nonce_b}      ──►
//!                             ◄──       ProbeReply{sid, seq, nonce_a}
//! Syndrome{sid, block=k, …}   ──►       (correct block k)
//!                             ◄──       Ack{sid, seq=k}
//!     … one per block, retransmitted until acked …
//! Confirm{sid, HMAC(K_Bob)}   ──►       (verify against K_Alice)
//!                             ◄──       Confirm{sid, HMAC(K_Alice)}
//! ```
//!
//! Every client→server message is retransmitted with exponential backoff
//! until its reply arrives ([`RetryPolicy`]); the server is idempotent
//! about duplicates — a re-delivered syndrome or confirmation is answered
//! again without being re-processed, while the driver's replay rejection
//! still guards the state itself. A corrupted syndrome fails its MAC, is
//! *not* acknowledged and is *not* marked as seen, so the clean
//! retransmission repairs the block. Key material on both ends comes from
//! [`sim::derive_session_keys`](crate::sim::derive_session_keys).
//!
//! When a block's MAC still fails on *clean* material, the server climbs
//! the escalation ladder of `vehicle_key::recovery` instead of acking:
//! it answers the syndrome with a [`Message::CascadeParity`] round or a
//! [`Message::ReprobeRequest`], and the client replies in kind — answering
//! parity queries over its block (each answered round is public leakage
//! both sides debit from the amplification budget) or re-deriving fresh
//! block material via [`sim::derive_block_keys`](crate::sim::derive_block_keys).
//! Escalation traffic follows the same discipline as the ack path: the
//! client retransmits its latest message until the server's next
//! instruction arrives, and the server answers duplicates idempotently.
//!
//! # Event-driven cores
//!
//! Both sides are implemented as poll-shaped state machines so the same
//! logic serves two execution styles:
//!
//! * [`SessionCore`] (server) and [`BobCore`] (client) consume decoded
//!   frames via `on_frame`, advance their clocks via `on_tick`, and queue
//!   outbound frames into a caller-supplied buffer. They never block and
//!   never touch a socket, which is what lets the reactor
//!   ([`crate::reactor`]) multiplex thousands of them on a few threads,
//!   with a timer wheel firing `on_tick` at each core's `next_deadline`.
//! * [`serve_session`] / [`run_bob_session`] are thin blocking wrappers
//!   that drive a core over one [`Transport`] — the compatibility surface
//!   the pipe-based tests, the adversary suite, and the lifecycle plane
//!   are written against. The wrappers poll the transport, feed the core,
//!   and flush whatever it queued, so their observable wire behavior is
//!   exactly the pre-reactor one.

use crate::sim::{derive_block_keys, derive_session_keys};
use reconcile::{AutoencoderReconciler, SharedReconciler};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::TraceContext;
use vehicle_key::{
    AliceDriver, Disposition, EscalationCounters, Message, ProtocolError, RecoveryPolicy, Session,
    Transport, TransportError,
};
use vk_crypto::amplify::amplify_with_leakage;

/// Undecodable frames a session absorbs before aborting typed
/// (`Malformed("garbage flood")`). Honest corruption resolves within the
/// retry policy — a handful of mangled frames per stormy session — while
/// a hostile peer streaming raw garbage would otherwise pin a worker
/// until the session deadline without ever tripping the (smaller)
/// rejection budget, which only counts frames that *decode*.
pub const GARBAGE_BUDGET: u64 = 64;

/// Retransmission policy for the client side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per message (beyond the first send).
    pub max_retries: u32,
    /// Wait for a reply this long before the first retransmission.
    pub ack_timeout: Duration,
    /// Multiply the wait by this factor after every retransmission.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            ack_timeout: Duration::from_millis(250),
            backoff: 1.5,
        }
    }
}

/// Parameters both endpoints of a session must agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionParams {
    /// Simulated key length in bits (whole reconciler blocks are used).
    pub key_bits: usize,
    /// Disagreeing bit positions injected into the simulated key pair.
    ///
    /// The default (three flips) deliberately exceeds what the one-shot
    /// autoencoder decode corrects every time, so the escalation ladder
    /// ([`RecoveryPolicy`]) sees real traffic under the default
    /// configuration. Session failures at the default therefore exercise
    /// *both* the wire machinery and the recovery rungs; set it to 1 to
    /// confine failures to the transport layer, or raise it further to
    /// stress the ladder until it exhausts.
    pub error_bits: usize,
    /// Client retransmission policy (the server only uses `ack_timeout`
    /// and `max_retries` to bound how long it tolerates a silent or
    /// persistently failing peer).
    pub retry: RetryPolicy,
    /// Hard wall-clock bound on one session, handshake to confirmation.
    pub session_timeout: Duration,
    /// Bound on how long a freshly accepted connection may sit without
    /// completing its probe handshake. A peer that connects and then goes
    /// silent (or trickles bytes — slowloris) is evicted after this long
    /// with [`SessionError::Timeout`]`("handshake")` instead of pinning a
    /// worker for the full `session_timeout`.
    pub handshake_timeout: Duration,
    /// Escalation ladder budgets for blocks whose MAC check fails after
    /// decoding (both endpoints must enable/disable recovery together —
    /// a server that escalates against a client that only understands
    /// acks strands the session in retransmissions).
    pub recovery: RecoveryPolicy,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            key_bits: 128,
            error_bits: 3,
            retry: RetryPolicy::default(),
            session_timeout: Duration::from_secs(30),
            handshake_timeout: Duration::from_secs(5),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Why a session failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The byte pipe failed underneath the session.
    Transport(TransportError),
    /// The peer sent something protocol-invalid beyond repair.
    Protocol(ProtocolError),
    /// A reply did not arrive within the retry budget, or the session
    /// exceeded its wall-clock bound. The label names the awaited step.
    Timeout(&'static str),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Transport(e) => write!(f, "transport: {e}"),
            SessionError::Protocol(e) => write!(f, "protocol: {e}"),
            SessionError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Transport(e) => Some(e),
            SessionError::Protocol(e) => Some(e),
            SessionError::Timeout(_) => None,
        }
    }
}

impl From<TransportError> for SessionError {
    fn from(e: TransportError) -> Self {
        SessionError::Transport(e)
    }
}

impl From<ProtocolError> for SessionError {
    fn from(e: ProtocolError) -> Self {
        SessionError::Protocol(e)
    }
}

/// What the server side carries out of a *matched* session when the
/// caller asked for a key handoff: the confirmed root for the lifecycle
/// plane, plus the encoded confirmation reply so the post-handoff loop
/// can keep re-answering duplicate `Confirm` frames whose ack was lost.
#[derive(Clone)]
pub struct SessionHandoff {
    /// The confirmed 128-bit session key.
    pub root: [u8; 16],
    /// The encoded `Confirm` reply, for idempotent re-answers.
    pub confirm_reply: Vec<u8>,
}

impl fmt::Debug for SessionHandoff {
    // The root is key material: deliberately absent from the debug form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandoff")
            .field("confirm_reply_len", &self.confirm_reply.len())
            .finish()
    }
}

/// Server-side result of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// The session id the server assigned.
    pub session_id: u32,
    /// Syndrome blocks accepted.
    pub blocks: u32,
    /// Duplicate frames answered idempotently (a proxy for how lossy the
    /// reverse path was).
    pub duplicate_frames: u64,
    /// Syndrome frames that failed their MAC (corruption, or a divergent
    /// key) and were left unacknowledged.
    pub rejected_frames: u64,
    /// Whether the peers ended up holding the same key.
    pub key_matched: bool,
    /// How far the escalation ladder climbed across the session's blocks.
    pub escalation: EscalationCounters,
    /// Parity bits revealed by Cascade recovery, debited from the
    /// amplification input.
    pub leaked_bits: usize,
    /// Effective entropy (bits) fed into the final key after the leakage
    /// debit.
    pub entropy_bits: usize,
}

/// Client-side result of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BobOutcome {
    /// The session id the server assigned.
    pub session_id: u32,
    /// Whether the server's confirmation matched ours.
    pub key_matched: bool,
    /// Total retransmissions across all steps.
    pub retransmissions: u32,
    /// Syndrome blocks sent.
    pub blocks: u32,
    /// Parity bits this client revealed answering Cascade rounds.
    pub leaked_bits: usize,
    /// Distinct Cascade parity rounds answered.
    pub cascade_rounds: u32,
    /// Distinct re-probe requests served.
    pub reprobes: u32,
    /// Effective entropy (bits) fed into the final key after the leakage
    /// debit.
    pub entropy_bits: usize,
}

/// Post-handshake server state: the protocol driver plus everything the
/// dispatch loop needs that only exists once the probe has arrived.
struct Running {
    driver: AliceDriver,
    session: Session,
    probe_seq: u32,
    probe_reply: Vec<u8>,
    nonce_b: u64,
    seg: usize,
    error_rate: f64,
}

enum Phase {
    AwaitProbe,
    Running(Box<Running>),
    Done,
}

/// The server (Alice) side of one session as a non-blocking state
/// machine.
///
/// The core consumes raw inbound frames ([`SessionCore::on_frame`]) and
/// clock ticks ([`SessionCore::on_tick`]), queues outbound frames into
/// the caller's buffer, and reports completion through
/// [`SessionCore::take_finished`]. It owns every piece of per-session
/// policy the blocking loop used to enforce inline: the handshake and
/// session deadlines, the garbage and rejection budgets, the stall
/// watchdog, duplicate idempotency, the escalation ladder, and the
/// post-confirmation linger window. Callers own the I/O: the blocking
/// wrapper ([`serve_session`]) polls one transport, the reactor
/// multiplexes many sockets and calls `on_tick` when the timer wheel
/// fires at [`SessionCore::next_deadline`].
///
/// Any `Err` from `on_frame`/`on_tick`/`on_closed` is terminal: the core
/// moves to its done state and must be discarded.
pub struct SessionCore {
    session_id: u32,
    nonce_a: u64,
    params: SessionParams,
    handoff: bool,
    model: SharedReconciler,
    deadline: Instant,
    handshake_deadline: Instant,
    phase: Phase,
    handshaken: bool,
    outcome: ServeOutcome,
    confirm_reply: Option<Vec<u8>>,
    linger_until: Option<Instant>,
    rung_timer: RungTimer,
    undecodable: u64,
    last_progress: Instant,
    last_state: (u32, EscalationCounters, bool),
    stall_flagged: bool,
    inbound_trace: Option<TraceContext>,
    finished: Option<(ServeOutcome, Option<SessionHandoff>)>,
}

impl SessionCore {
    /// A fresh server-side session awaiting its probe. `now` anchors the
    /// handshake and session deadlines.
    pub fn new(
        reconciler: impl Into<SharedReconciler>,
        session_id: u32,
        nonce_a: u64,
        params: &SessionParams,
        handoff: bool,
        now: Instant,
    ) -> Self {
        SessionCore {
            session_id,
            nonce_a,
            params: *params,
            handoff,
            model: reconciler.into(),
            deadline: now + params.session_timeout,
            handshake_deadline: now + params.handshake_timeout.min(params.session_timeout),
            phase: Phase::AwaitProbe,
            handshaken: false,
            outcome: ServeOutcome {
                session_id,
                blocks: 0,
                duplicate_frames: 0,
                rejected_frames: 0,
                key_matched: false,
                escalation: EscalationCounters::default(),
                leaked_bits: 0,
                entropy_bits: 0,
            },
            confirm_reply: None,
            linger_until: None,
            rung_timer: RungTimer::default(),
            undecodable: 0,
            last_progress: now,
            last_state: (0, EscalationCounters::default(), false),
            stall_flagged: false,
            inbound_trace: None,
            finished: None,
        }
    }

    /// The session id this core serves.
    pub fn session_id(&self) -> u32 {
        self.session_id
    }

    /// Whether the probe handshake has completed.
    pub fn handshaken(&self) -> bool {
        self.handshaken
    }

    /// The trace context the client's probe advertised, if any.
    pub fn trace(&self) -> Option<TraceContext> {
        self.inbound_trace
    }

    /// Counters accumulated so far (for abort reporting before
    /// [`SessionCore::take_finished`] would have fired).
    pub fn outcome(&self) -> &ServeOutcome {
        &self.outcome
    }

    /// Whether the session has ended successfully and the result is
    /// waiting in [`SessionCore::take_finished`].
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The completed outcome (at most once).
    pub fn take_finished(&mut self) -> Option<(ServeOutcome, Option<SessionHandoff>)> {
        self.finished.take()
    }

    /// When [`SessionCore::on_tick`] next needs to run: the nearest of
    /// the handshake/session deadlines, the linger expiry, and the stall
    /// watchdog. Drives the reactor's timer wheel; a blocking caller can
    /// ignore it and tick every poll iteration.
    pub fn next_deadline(&self) -> Instant {
        match &self.phase {
            Phase::AwaitProbe => self.handshake_deadline.min(self.deadline),
            Phase::Running(_) => {
                let mut d = self.linger_until.unwrap_or(self.deadline);
                if !self.stall_flagged {
                    // +1ms so a tick scheduled exactly at the watchdog
                    // boundary lands strictly past it (the check is `>`).
                    d = d.min(
                        self.last_progress
                            + self.params.recovery.block_deadline
                            + Duration::from_millis(1),
                    );
                }
                d
            }
            Phase::Done => self.deadline,
        }
    }

    fn finish(&mut self, handoff: Option<SessionHandoff>) {
        self.finished = Some((self.outcome, handoff));
        self.phase = Phase::Done;
    }

    /// Advance the session's clocks to `now`: enforce the handshake,
    /// session, and linger deadlines and run the stall watchdog.
    ///
    /// # Errors
    ///
    /// [`SessionError::Timeout`] when a deadline expired; terminal.
    pub fn on_tick(&mut self, now: Instant) -> Result<(), SessionError> {
        if self.finished.is_some() {
            return Ok(());
        }
        match self.phase {
            Phase::Done => return Ok(()),
            Phase::AwaitProbe => {
                if now >= self.handshake_deadline {
                    self.phase = Phase::Done;
                    return Err(SessionError::Timeout("handshake"));
                }
                if now >= self.deadline {
                    self.phase = Phase::Done;
                    return Err(SessionError::Timeout("probe"));
                }
                return Ok(());
            }
            Phase::Running(_) => {}
        }
        if let Some(t) = self.linger_until {
            // Confirmation answered; stay only to re-answer duplicates of
            // the client's final messages whose replies may have been lost.
            if now >= t {
                self.finish(None);
                return Ok(());
            }
        } else if now >= self.deadline {
            self.phase = Phase::Done;
            return Err(SessionError::Timeout("syndromes"));
        }
        // Stall watchdog: "progress" is block-level — an accepted block, a
        // ladder step, or the confirmation. Retransmissions and duplicates
        // do not count, so a session grinding on one block past its
        // `block_deadline` budget is flagged exactly once per stall
        // episode.
        let state = (
            self.outcome.blocks,
            self.outcome.escalation,
            self.confirm_reply.is_some(),
        );
        if state != self.last_state {
            self.last_state = state;
            self.last_progress = now;
            self.stall_flagged = false;
        } else if !self.stall_flagged
            && now.saturating_duration_since(self.last_progress)
                > self.params.recovery.block_deadline
        {
            self.stall_flagged = true;
            let recovering = match &self.phase {
                Phase::Running(run) => run.driver.recovering_block(),
                _ => None,
            };
            telemetry::counter("server.stalls", 1);
            telemetry::mark("server.session_stalled")
                .field("session_id", u64::from(self.session_id))
                .field("block", recovering.map_or(-1i64, i64::from))
                .field(
                    "stalled_ms",
                    u64::try_from(
                        now.saturating_duration_since(self.last_progress)
                            .as_millis(),
                    )
                    .unwrap_or(u64::MAX),
                )
                .emit();
        }
        Ok(())
    }

    /// The peer hung up.
    ///
    /// # Errors
    ///
    /// [`SessionError::Transport`]`(Closed)` unless the session was in
    /// its post-confirmation linger — there a hangup is the normal end.
    pub fn on_closed(&mut self) -> Result<(), SessionError> {
        if self.finished.is_some() || matches!(self.phase, Phase::Done) {
            return Ok(());
        }
        if self.linger_until.is_some() {
            self.finish(None);
            return Ok(());
        }
        self.phase = Phase::Done;
        Err(SessionError::Transport(TransportError::Closed))
    }

    /// Feed one inbound frame; replies are queued into `out` (encoded,
    /// without trace extension — the caller appends its own).
    ///
    /// # Errors
    ///
    /// [`SessionError`] when the peer misbehaves beyond the budgets;
    /// terminal.
    pub fn on_frame(
        &mut self,
        frame: &[u8],
        now: Instant,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), SessionError> {
        if self.finished.is_some() || matches!(self.phase, Phase::Done) {
            return Ok(());
        }
        if matches!(self.phase, Phase::AwaitProbe) {
            return self.on_handshake_frame(frame, out);
        }
        let res = self.on_session_frame(frame, now, out);
        if res.is_err() {
            self.phase = Phase::Done;
        }
        res
    }

    fn on_handshake_frame(
        &mut self,
        frame: &[u8],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), SessionError> {
        match Message::decode(frame) {
            Ok(Message::Probe { seq, nonce, .. }) => {
                self.inbound_trace = crate::obs::extract_trace(frame);
                let reply = Message::ProbeReply {
                    session_id: self.session_id,
                    seq,
                    nonce: self.nonce_a,
                }
                .encode()
                .to_vec();
                let (k_alice, _) = derive_session_keys(
                    self.session_id,
                    self.nonce_a,
                    nonce,
                    self.params.key_bits,
                    self.params.error_bits,
                );
                let driver = AliceDriver::new(
                    self.session_id,
                    self.model.clone(),
                    self.nonce_a,
                    nonce,
                    k_alice,
                )
                .with_policy(self.params.recovery);
                let session =
                    Session::new(self.session_id, self.model.clone(), self.nonce_a, nonce);
                out.push(reply.clone());
                self.phase = Phase::Running(Box::new(Running {
                    driver,
                    session,
                    probe_seq: seq,
                    probe_reply: reply,
                    nonce_b: nonce,
                    seg: self.model.key_len(),
                    error_rate: self.params.error_bits as f64 / self.params.key_bits.max(1) as f64,
                }));
                self.handshaken = true;
                Ok(())
            }
            Ok(_) => {
                self.phase = Phase::Done;
                Err(ProtocolError::Malformed("expected probe").into())
            }
            Err(_) => Ok(()), // corrupted frame pre-handshake: let the client retry
        }
    }

    fn on_session_frame(
        &mut self,
        frame: &[u8],
        now: Instant,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), SessionError> {
        let msg = match Message::decode(frame) {
            Ok(msg) => msg,
            Err(_) => {
                // Undecodable (likely corrupted) frame: no ack, the client
                // will retransmit. Honest corruption stays far below
                // [`GARBAGE_BUDGET`] because retransmission resolves each
                // frame within the retry policy; a peer streaming pure
                // garbage aborts typed instead of pinning this worker
                // until the session deadline.
                self.outcome.rejected_frames += 1;
                telemetry::counter("server.rejected_frames", 1);
                self.undecodable += 1;
                if self.undecodable > GARBAGE_BUDGET {
                    return Err(ProtocolError::Malformed("garbage flood").into());
                }
                return Ok(());
            }
        };
        let Phase::Running(run) = &mut self.phase else {
            return Ok(());
        };
        let mut finish: Option<Option<SessionHandoff>> = None;
        match msg {
            Message::Probe { seq, .. } if seq == run.probe_seq => {
                // Our ProbeReply was lost; answer again.
                self.outcome.duplicate_frames += 1;
                out.push(run.probe_reply.clone());
            }
            Message::Syndrome {
                session_id: sid,
                block,
                ref code,
                ref mac,
            } => {
                let disposition = run.driver.handle_syndrome(sid, block, code, mac);
                reply_for_disposition(
                    &mut run.driver,
                    self.session_id,
                    block,
                    disposition,
                    &mut self.outcome,
                    &mut self.rung_timer,
                    &self.params,
                    out,
                )?;
            }
            Message::CascadeParityReply {
                session_id: sid,
                block,
                round,
                ref parities,
            } => {
                let disposition = run.driver.handle_cascade_reply(sid, block, round, parities);
                reply_for_disposition(
                    &mut run.driver,
                    self.session_id,
                    block,
                    disposition,
                    &mut self.outcome,
                    &mut self.rung_timer,
                    &self.params,
                    out,
                )?;
            }
            Message::ReprobeReply {
                session_id: sid,
                block,
                attempt,
                ref code,
                ref mac,
            } => {
                // Re-measure our side of the block for this attempt; the
                // client derived its half from the same shared identity.
                let (fresh_k_alice, _) = derive_block_keys(
                    self.session_id,
                    self.nonce_a,
                    run.nonce_b,
                    block,
                    attempt,
                    run.seg,
                    run.error_rate,
                );
                let disposition =
                    run.driver
                        .handle_reprobe_reply(sid, block, attempt, code, mac, &fresh_k_alice);
                reply_for_disposition(
                    &mut run.driver,
                    self.session_id,
                    block,
                    disposition,
                    &mut self.outcome,
                    &mut self.rung_timer,
                    &self.params,
                    out,
                )?;
            }
            Message::Confirm { .. } => match &self.confirm_reply {
                Some(reply) => {
                    self.outcome.duplicate_frames += 1;
                    out.push(reply.clone());
                }
                None => {
                    self.outcome.key_matched = run.driver.handle_message(&msg).is_ok();
                    telemetry::counter(
                        if self.outcome.key_matched {
                            "server.sessions_matched"
                        } else {
                            "server.sessions_mismatched"
                        },
                        1,
                    );
                    // Send our own confirmation either way: on a mismatch
                    // the client sees differing checks and records the
                    // failure symmetrically.
                    let (key, entropy) = run
                        .driver
                        .final_key_with_entropy()
                        .ok_or(ProtocolError::ConfirmMismatch)?;
                    self.outcome.escalation = run.driver.counters();
                    self.outcome.leaked_bits = run.driver.leaked_bits();
                    self.outcome.entropy_bits = entropy;
                    let reply = Message::Confirm {
                        session_id: self.session_id,
                        check: run.session.confirm_check(&key),
                    }
                    .encode()
                    .to_vec();
                    out.push(reply.clone());
                    if self.handoff && self.outcome.key_matched {
                        // The lifecycle plane takes over from here; it
                        // re-answers duplicate Confirm frames itself, so
                        // skipping the linger loses no idempotency.
                        finish = Some(Some(SessionHandoff {
                            root: key,
                            confirm_reply: reply,
                        }));
                    } else {
                        self.confirm_reply = Some(reply);
                        self.linger_until = Some(now + 2 * self.params.retry.ack_timeout);
                    }
                }
            },
            // Anything else reaching the server (a reply meant for the
            // client, a probe for another handshake, an out-of-sequence
            // probe falling through the guard above) is either corruption
            // or a hostile peer: withhold any reply and let the bounded
            // rejection budget decide, exactly like a MAC failure. The
            // variants are named so a new wire message is a compile-time
            // and lint-time event, not a silent drop.
            Message::Probe { .. }
            | Message::ProbeReply { .. }
            | Message::Ack { .. }
            | Message::CascadeParity { .. }
            | Message::ReprobeRequest { .. } => {
                reject_frame(
                    &mut self.outcome,
                    &self.params,
                    "unexpected message for server",
                )?;
            }
        }
        if let Some(handoff) = finish {
            self.finish(handoff);
        }
        Ok(())
    }
}

/// Run the server (Alice) side of one session over an established
/// transport. `nonce_a` is the server's fresh handshake nonce.
///
/// # Errors
///
/// [`SessionError`] when the transport fails, the peer misbehaves beyond
/// the retry budget, or the session times out.
pub fn serve_session<T: Transport>(
    transport: &mut T,
    reconciler: &Arc<AutoencoderReconciler>,
    session_id: u32,
    nonce_a: u64,
    params: &SessionParams,
) -> Result<ServeOutcome, SessionError> {
    serve_session_keyed(transport, reconciler, session_id, nonce_a, params, false)
        .map(|(outcome, _)| outcome)
}

/// [`serve_session`], but when `handoff` is set and the confirmation
/// matches, the function returns *immediately after sending the server's
/// confirmation* with the confirmed key in a [`SessionHandoff`] — instead
/// of lingering for duplicate frames. The caller is expected to keep the
/// connection alive (the lifecycle plane re-answers duplicate `Confirm`
/// frames from the handoff), so no replay window is lost.
///
/// # Errors
///
/// [`SessionError`], exactly as [`serve_session`].
pub fn serve_session_keyed<T: Transport>(
    transport: &mut T,
    reconciler: &Arc<AutoencoderReconciler>,
    session_id: u32,
    nonce_a: u64,
    params: &SessionParams,
    handoff: bool,
) -> Result<(ServeOutcome, Option<SessionHandoff>), SessionError> {
    let mut core = SessionCore::new(
        reconciler,
        session_id,
        nonce_a,
        params,
        handoff,
        Instant::now(),
    );
    let mut out: Vec<Vec<u8>> = Vec::new();
    // The session span opens only once the probe arrives, so it can join
    // the trace the client's frame extension advertises and both peers
    // export under one trace id. The guards live here (not in the core)
    // because traces are thread-scoped: the blocking wrapper owns its
    // thread for the whole session, which the reactor does not.
    let mut _trace_guard: Option<telemetry::TraceGuard> = None;
    let mut _span_guard: Option<telemetry::SpanGuard<'static>> = None;
    loop {
        core.on_tick(Instant::now())?;
        if let Some(result) = core.take_finished() {
            return Ok(result);
        }
        // vk-lint: allow(reactor-blocking, "thread-per-connection compat driver, not shard code; the transport's own recv timeout bounds the wait")
        match transport.recv() {
            Ok(Some(frame)) => {
                let was_handshaken = core.handshaken();
                let res = core.on_frame(&frame, Instant::now(), &mut out);
                if !was_handshaken && core.handshaken() {
                    let ctx = core.trace();
                    _trace_guard = ctx
                        .filter(|_| telemetry::enabled())
                        .map(|c| telemetry::push_trace(c.trace_id, "alice"));
                    let mut span = telemetry::span("server.session")
                        .field("session_id", u64::from(session_id));
                    if let Some(c) = ctx {
                        span = span.field("remote_parent", c.parent_span);
                    }
                    _span_guard = Some(span.enter());
                }
                for f in out.drain(..) {
                    crate::obs::send_traced(transport, &f)?;
                }
                res?;
                if let Some(result) = core.take_finished() {
                    return Ok(result);
                }
            }
            Ok(None) => {}
            Err(TransportError::Closed) => {
                core.on_closed()?;
                if let Some(result) = core.take_finished() {
                    return Ok(result);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Wall-clock timer for one block's trip through the escalation ladder:
/// started when a block escalates, resolved when it is finally accepted.
/// The elapsed time lands in a per-rung histogram chosen by which rung's
/// recovery counter advanced — `server.recovery.decode_ms`,
/// `server.recovery.cascade_ms`, or `server.recovery.reprobe_ms` — the
/// per-rung latency breakdown `/metrics` exposes as quantiles.
#[derive(Debug, Default)]
struct RungTimer {
    active: Option<(u32, Instant, EscalationCounters)>,
}

impl RungTimer {
    fn on_escalated(&mut self, block: u32, counters: EscalationCounters) {
        if self.active.is_none() {
            self.active = Some((block, Instant::now(), counters));
        }
    }

    fn on_accepted(&mut self, block: u32, counters: &EscalationCounters) {
        let Some((started_block, started, before)) = self.active else {
            return;
        };
        if started_block != block {
            return;
        }
        self.active = None;
        if !telemetry::enabled() {
            return;
        }
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let rung = if counters.reprobe_recoveries > before.reprobe_recoveries {
            "server.recovery.reprobe_ms"
        } else if counters.cascade_recoveries > before.cascade_recoveries {
            "server.recovery.cascade_ms"
        } else {
            "server.recovery.decode_ms"
        };
        telemetry::histogram(rung, ms);
    }
}

/// Translate a driver disposition into wire traffic: ack accepted (or
/// already-seen) blocks, forward the outstanding escalation query for
/// blocks in recovery, and withhold any reply for rejected frames so the
/// client's retransmission repairs in-flight damage.
#[allow(clippy::too_many_arguments)]
fn reply_for_disposition(
    driver: &mut AliceDriver,
    session_id: u32,
    block: u32,
    disposition: Result<Disposition, ProtocolError>,
    outcome: &mut ServeOutcome,
    rung_timer: &mut RungTimer,
    params: &SessionParams,
    out: &mut Vec<Vec<u8>>,
) -> Result<(), SessionError> {
    let ack = |out: &mut Vec<Vec<u8>>| {
        out.push(
            Message::Ack {
                session_id,
                seq: block,
            }
            .encode()
            .to_vec(),
        );
    };
    match disposition {
        Ok(Disposition::Accepted) => {
            outcome.blocks += 1;
            rung_timer.on_accepted(block, &driver.counters());
            ack(out);
        }
        Ok(Disposition::Escalated) => {
            outcome.escalation = driver.counters();
            rung_timer.on_escalated(block, outcome.escalation);
            if let Some(query) = driver.pending_recovery() {
                out.push(query.encode().to_vec());
                telemetry::counter("server.escalation_queries", 1);
            }
        }
        Ok(Disposition::Duplicate) => {
            outcome.duplicate_frames += 1;
            telemetry::counter("server.duplicate_frames", 1);
            if driver.recovering_block() == Some(block) {
                // A stale reply raced our outstanding query: re-send it.
                if let Some(query) = driver.pending_recovery() {
                    out.push(query.encode().to_vec());
                }
            } else {
                ack(out);
            }
        }
        // MAC failure with escalation disabled, or a malformed frame
        // (corruption can flip ids and payloads past the decoder): no
        // reply, bounded by the rejection budget.
        Err(ProtocolError::MacMismatch) => {
            reject_frame(outcome, params, "syndrome MAC mismatch")?;
        }
        Err(ProtocolError::Malformed(what)) => {
            reject_frame(outcome, params, what)?;
        }
        // The ladder ran out (or timed out): the session fails with the
        // typed reason.
        Err(e) => {
            outcome.escalation = driver.counters();
            return Err(e.into());
        }
    }
    Ok(())
}

/// Count one withheld frame; past the rejection budget the session aborts
/// (a peer persistently sending garbage is not worth serving).
fn reject_frame(
    outcome: &mut ServeOutcome,
    params: &SessionParams,
    what: &'static str,
) -> Result<(), SessionError> {
    outcome.rejected_frames += 1;
    telemetry::counter("server.rejected_frames", 1);
    if outcome.rejected_frames > u64::from(params.retry.max_retries) {
        return Err(ProtocolError::Malformed(what).into());
    }
    Ok(())
}

/// The outbound request the client is currently retransmitting, with the
/// retry engine's state: [`request_with_retry`]'s loop variables, made
/// explicit so a poll-driven caller can resume them at any `now`.
struct RequestState {
    frame: Vec<u8>,
    what: &'static str,
    attempt: u32,
    wait: Duration,
    resend_at: Instant,
}

/// Per-block client state while syndromes are in flight.
struct BobRun {
    session_id: u32,
    nonce_a: u64,
    session: Session,
    k_bob: quantize::BitString,
    seg: usize,
    blocks: u32,
    error_rate: f64,
    block: u32,
    kb: quantize::BitString,
    bob_bits: quantize::BitString,
    leaked_bits: usize,
    cascade_rounds: u32,
    reprobes: u32,
    // Rounds already answered (and attempts already served): duplicates
    // of the server's queries are re-answered without re-counting the
    // leakage — mirroring the absorb-once accounting on Alice's side.
    answered_rounds: HashSet<u32>,
    served_attempts: HashSet<u32>,
}

enum BobPhase {
    Idle,
    Probe,
    Blocks(Box<BobRun>),
    Confirm {
        session_id: u32,
        check: [u8; 32],
        key: [u8; 16],
        blocks: u32,
        leaked_bits: usize,
        cascade_rounds: u32,
        reprobes: u32,
        entropy_bits: usize,
    },
    Done,
}

/// The client (Bob) side of one session as a non-blocking state machine —
/// the event-driven mirror of [`SessionCore`], used by the pooled fleet
/// load generator to hold thousands of client sessions on a few threads.
///
/// [`BobCore::start`] queues the probe; [`BobCore::on_frame`] consumes
/// server replies and queues the next request; [`BobCore::on_tick`]
/// drives the retransmission engine (same budgets and backoff as the
/// blocking [`RetryPolicy`] path — `next_deadline` says when the next
/// retransmission is due). Every `Err` is terminal.
pub struct BobCore {
    model: SharedReconciler,
    nonce_b: u64,
    params: SessionParams,
    retransmissions: u32,
    request: RequestState,
    phase: BobPhase,
    finished: Option<(BobOutcome, Option<[u8; 16]>)>,
}

impl BobCore {
    /// A fresh client-side session; call [`BobCore::start`] to emit the
    /// probe and arm the retry engine.
    pub fn new(
        reconciler: impl Into<SharedReconciler>,
        nonce_b: u64,
        params: &SessionParams,
    ) -> Self {
        BobCore {
            model: reconciler.into(),
            nonce_b,
            params: *params,
            retransmissions: 0,
            request: RequestState {
                frame: Vec::new(),
                what: "probe reply",
                attempt: 0,
                wait: params.retry.ack_timeout,
                resend_at: Instant::now() + params.retry.ack_timeout,
            },
            phase: BobPhase::Idle,
            finished: None,
        }
    }

    /// The deterministic trace id this client advertises (derived from
    /// its handshake nonce, exactly like the blocking path).
    pub fn trace_id(&self) -> u128 {
        crate::obs::trace_id_for_nonce(self.nonce_b)
    }

    /// Whether the session has completed and the outcome is waiting in
    /// [`BobCore::take_finished`].
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The completed outcome (at most once).
    pub fn take_finished(&mut self) -> Option<(BobOutcome, Option<[u8; 16]>)> {
        self.finished.take()
    }

    /// When the next retransmission is due — the timer-wheel deadline.
    pub fn next_deadline(&self) -> Instant {
        self.request.resend_at
    }

    /// Queue the opening probe and arm its retransmission timer.
    pub fn start(&mut self, now: Instant, out: &mut Vec<Vec<u8>>) {
        let probe = Message::Probe {
            session_id: 0,
            seq: 0,
            nonce: self.nonce_b,
        }
        .encode()
        .to_vec();
        self.phase = BobPhase::Probe;
        self.arm(probe, "probe reply", now, out);
    }

    /// Begin a fresh request: send `frame` now and reset the retry
    /// engine, exactly like entering [`request_with_retry`] anew.
    fn arm(&mut self, frame: Vec<u8>, what: &'static str, now: Instant, out: &mut Vec<Vec<u8>>) {
        out.push(frame.clone());
        self.request = RequestState {
            frame,
            what,
            attempt: 0,
            wait: self.params.retry.ack_timeout,
            resend_at: now + self.params.retry.ack_timeout,
        };
    }

    /// Advance the retry engine to `now`, queueing a retransmission when
    /// the current wait expired.
    ///
    /// # Errors
    ///
    /// [`SessionError::Timeout`] naming the awaited step once the retry
    /// budget is exhausted; terminal.
    pub fn on_tick(&mut self, now: Instant, out: &mut Vec<Vec<u8>>) -> Result<(), SessionError> {
        if self.finished.is_some() || matches!(self.phase, BobPhase::Idle | BobPhase::Done) {
            return Ok(());
        }
        if now >= self.request.resend_at {
            if self.request.attempt >= self.params.retry.max_retries {
                self.phase = BobPhase::Done;
                return Err(SessionError::Timeout(self.request.what));
            }
            self.request.attempt += 1;
            self.retransmissions += 1;
            telemetry::counter("fleet.retransmissions", 1);
            out.push(self.request.frame.clone());
            self.request.wait = self.request.wait.mul_f64(self.params.retry.backoff);
            self.request.resend_at = now + self.request.wait;
        }
        Ok(())
    }

    /// Feed one inbound frame; non-matching or undecodable frames are
    /// ignored (the server may interleave duplicate replies to earlier
    /// steps), matching ones advance the session and queue the next
    /// request into `out`.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when the session cannot continue (entropy
    /// exhausted); terminal.
    pub fn on_frame(
        &mut self,
        frame: &[u8],
        now: Instant,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), SessionError> {
        if self.finished.is_some() {
            return Ok(());
        }
        let Ok(msg) = Message::decode(frame) else {
            return Ok(());
        };
        match self.phase {
            BobPhase::Idle | BobPhase::Done => Ok(()),
            BobPhase::Probe => {
                if let Message::ProbeReply {
                    session_id, nonce, ..
                } = msg
                {
                    self.on_probe_reply(session_id, nonce, now, out)
                } else {
                    Ok(())
                }
            }
            BobPhase::Blocks(_) => self.on_block_msg(&msg, now, out),
            BobPhase::Confirm { .. } => {
                self.on_confirm_msg(&msg);
                Ok(())
            }
        }
    }

    fn on_probe_reply(
        &mut self,
        session_id: u32,
        nonce_a: u64,
        now: Instant,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), SessionError> {
        let (_, k_bob) = derive_session_keys(
            session_id,
            nonce_a,
            self.nonce_b,
            self.params.key_bits,
            self.params.error_bits,
        );
        let session = Session::new(session_id, self.model.clone(), nonce_a, self.nonce_b);
        let seg = self.model.key_len();
        let blocks = u32::try_from(k_bob.len() / seg).unwrap_or(u32::MAX);
        let run = Box::new(BobRun {
            session_id,
            nonce_a,
            kb: if blocks > 0 {
                k_bob.slice(0, seg)
            } else {
                quantize::BitString::new()
            },
            session,
            k_bob,
            seg,
            blocks,
            error_rate: self.params.error_bits as f64 / self.params.key_bits.max(1) as f64,
            block: 0,
            bob_bits: quantize::BitString::new(),
            leaked_bits: 0,
            cascade_rounds: 0,
            reprobes: 0,
            answered_rounds: HashSet::new(),
            served_attempts: HashSet::new(),
        });
        if blocks == 0 {
            self.phase = BobPhase::Blocks(run);
            return self.to_confirm(now, out);
        }
        let frame = run
            .session
            .bob_syndrome_message(0, &run.kb)
            .encode()
            .to_vec();
        self.phase = BobPhase::Blocks(run);
        self.arm(frame, "syndrome ack", now, out);
        Ok(())
    }

    fn on_block_msg(
        &mut self,
        msg: &Message,
        now: Instant,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), SessionError> {
        let BobPhase::Blocks(run) = &mut self.phase else {
            return Ok(());
        };
        match msg {
            Message::Ack { seq, .. } if *seq == run.block => {
                run.bob_bits.extend(&run.kb);
                run.block += 1;
                if run.block == run.blocks {
                    return self.to_confirm(now, out);
                }
                run.kb = run.k_bob.slice(run.block as usize * run.seg, run.seg);
                run.answered_rounds.clear();
                run.served_attempts.clear();
                let frame = run
                    .session
                    .bob_syndrome_message(run.block, &run.kb)
                    .encode()
                    .to_vec();
                self.arm(frame, "syndrome ack", now, out);
            }
            Message::CascadeParity {
                block: b,
                round,
                queries,
                ..
            } if *b == run.block => {
                // Positions are block-relative; anything out of range is
                // in-flight corruption — ignore the round, re-issue the
                // outstanding request, and let the server's retransmission
                // deliver the round intact.
                let qs: Vec<Vec<usize>> = queries
                    .iter()
                    .map(|q| q.iter().map(|&p| usize::from(p)).collect())
                    .collect();
                if qs.iter().flatten().any(|&p| p >= run.kb.len()) {
                    let frame = self.request.frame.clone();
                    let what = self.request.what;
                    self.arm(frame, what, now, out);
                    return Ok(());
                }
                let answers = reconcile::cascade::parities(&run.kb, &qs);
                if run.answered_rounds.insert(*round) {
                    run.leaked_bits += answers.len();
                    run.cascade_rounds += 1;
                    telemetry::counter("fleet.cascade_rounds", 1);
                }
                let frame = Message::CascadeParityReply {
                    session_id: run.session_id,
                    block: run.block,
                    round: *round,
                    parities: answers,
                }
                .encode()
                .to_vec();
                self.arm(frame, "syndrome ack", now, out);
            }
            Message::ReprobeRequest {
                block: b, attempt, ..
            } if *b == run.block => {
                // Re-measure the block: fresh material for this attempt,
                // derived from the shared session identity exactly like
                // the server's half.
                let (_, fresh) = derive_block_keys(
                    run.session_id,
                    run.nonce_a,
                    self.nonce_b,
                    run.block,
                    *attempt,
                    run.seg,
                    run.error_rate,
                );
                run.kb = fresh;
                if run.served_attempts.insert(*attempt) {
                    run.reprobes += 1;
                    telemetry::counter("fleet.reprobes", 1);
                }
                let (code, mac) = run.session.bob_code_and_mac(&run.kb);
                let frame = Message::ReprobeReply {
                    session_id: run.session_id,
                    block: run.block,
                    attempt: *attempt,
                    code,
                    mac,
                }
                .encode()
                .to_vec();
                self.arm(frame, "syndrome ack", now, out);
            }
            // Frames for other blocks or the wrong direction: ignored, but
            // named — a new wire message must be triaged here explicitly
            // rather than vanish into a wildcard.
            Message::Ack { .. }
            | Message::CascadeParity { .. }
            | Message::ReprobeRequest { .. }
            | Message::Probe { .. }
            | Message::ProbeReply { .. }
            | Message::Syndrome { .. }
            | Message::CascadeParityReply { .. }
            | Message::ReprobeReply { .. }
            | Message::Confirm { .. } => {}
        }
        Ok(())
    }

    fn to_confirm(&mut self, now: Instant, out: &mut Vec<Vec<u8>>) -> Result<(), SessionError> {
        let BobPhase::Blocks(run) = std::mem::replace(&mut self.phase, BobPhase::Done) else {
            return Ok(());
        };
        // Every parity bit revealed during recovery is public knowledge
        // now — debit it from the amplification input, as the server does
        // on its side.
        let (bob_key, entropy_bits) =
            match amplify_with_leakage(&run.bob_bits.to_bools(), run.leaked_bits) {
                Some(v) => v,
                None => {
                    return Err(SessionError::Protocol(ProtocolError::EntropyExhausted));
                }
            };
        let check = run.session.confirm_check(&bob_key);
        let frame = Message::Confirm {
            session_id: run.session_id,
            check,
        }
        .encode()
        .to_vec();
        self.phase = BobPhase::Confirm {
            session_id: run.session_id,
            check,
            key: bob_key,
            blocks: run.blocks,
            leaked_bits: run.leaked_bits,
            cascade_rounds: run.cascade_rounds,
            reprobes: run.reprobes,
            entropy_bits,
        };
        self.arm(frame, "server confirmation", now, out);
        Ok(())
    }

    fn on_confirm_msg(&mut self, msg: &Message) {
        let BobPhase::Confirm {
            session_id,
            check,
            key,
            blocks,
            leaked_bits,
            cascade_rounds,
            reprobes,
            entropy_bits,
        } = &self.phase
        else {
            return;
        };
        let Message::Confirm {
            check: server_check,
            ..
        } = msg
        else {
            return;
        };
        let key_matched = server_check == check;
        let outcome = BobOutcome {
            session_id: *session_id,
            key_matched,
            retransmissions: self.retransmissions,
            blocks: *blocks,
            leaked_bits: *leaked_bits,
            cascade_rounds: *cascade_rounds,
            reprobes: *reprobes,
            entropy_bits: *entropy_bits,
        };
        let key = *key;
        self.finished = Some((outcome, key_matched.then_some(key)));
        self.phase = BobPhase::Done;
    }
}

/// Run the client (Bob) side of one session over an established transport.
/// `nonce_b` is the client's fresh handshake nonce.
///
/// # Errors
///
/// [`SessionError`] when the transport fails or any step exhausts its
/// retry budget.
pub fn run_bob_session<T: Transport>(
    transport: &mut T,
    reconciler: &Arc<AutoencoderReconciler>,
    nonce_b: u64,
    params: &SessionParams,
) -> Result<BobOutcome, SessionError> {
    run_bob_session_keyed(transport, reconciler, nonce_b, params).map(|(outcome, _)| outcome)
}

/// [`run_bob_session`], additionally returning the confirmed 128-bit key
/// when the server's confirmation matched — the client-side half of the
/// lifecycle handoff.
///
/// # Errors
///
/// [`SessionError`], exactly as [`run_bob_session`].
pub fn run_bob_session_keyed<T: Transport>(
    transport: &mut T,
    reconciler: &Arc<AutoencoderReconciler>,
    nonce_b: u64,
    params: &SessionParams,
) -> Result<(BobOutcome, Option<[u8; 16]>), SessionError> {
    // The client originates the session's trace: a deterministic id from
    // its handshake nonce, activated before the session span opens so the
    // span (and every outbound frame) carries it.
    let _trace = telemetry::enabled()
        .then(|| telemetry::push_trace(crate::obs::trace_id_for_nonce(nonce_b), "bob"));
    let _span = telemetry::span("fleet.session").enter();
    let mut core = BobCore::new(reconciler, nonce_b, params);
    let mut out: Vec<Vec<u8>> = Vec::new();
    core.start(Instant::now(), &mut out);
    loop {
        for f in out.drain(..) {
            crate::obs::send_traced(transport, &f)?;
        }
        if let Some(result) = core.take_finished() {
            return Ok(result);
        }
        // vk-lint: allow(reactor-blocking, "thread-per-connection compat driver, not shard code; recv polls with the transport's own timeout")
        match transport.recv() {
            Ok(Some(frame)) => core.on_frame(&frame, Instant::now(), &mut out)?,
            Ok(None) => {
                core.on_tick(Instant::now(), &mut out)?;
                // recv polls with the transport's own timeout; yield so a
                // queue-backed transport doesn't spin.
                std::thread::yield_now();
            }
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::PipeTransport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reconcile::AutoencoderTrainer;
    use std::sync::OnceLock;

    pub(crate) fn model() -> &'static Arc<AutoencoderReconciler> {
        static MODEL: OnceLock<Arc<AutoencoderReconciler>> = OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(7001);
            Arc::new(
                AutoencoderTrainer::default()
                    .with_steps(6000)
                    .train(&mut rng),
            )
        })
    }

    fn fast_params() -> SessionParams {
        SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        }
    }

    #[test]
    fn clean_pipe_session_matches_keys() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let server =
            std::thread::spawn(move || serve_session(&mut a, model(), 77, 1234, &params).unwrap());
        let bob = run_bob_session(&mut b, model(), 5678, &params).unwrap();
        let alice = server.join().unwrap();
        assert!(bob.key_matched, "client saw mismatched confirmation");
        assert!(alice.key_matched, "server saw mismatched confirmation");
        assert_eq!(alice.session_id, 77);
        assert_eq!(bob.session_id, 77);
        assert_eq!(bob.blocks, 2);
        assert_eq!(alice.blocks, 2);
        assert_eq!(bob.retransmissions, 0);
    }

    #[test]
    fn escalation_recovers_heavy_errors_and_both_sides_agree_on_leakage() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        // 10 disagreeing bits in 128 defeat the one-shot decode with near
        // certainty; only the ladder (cascade parities, then re-probes)
        // gets this session to a key.
        let params = SessionParams {
            error_bits: 10,
            ..fast_params()
        };
        let server =
            std::thread::spawn(move || serve_session(&mut a, model(), 31, 900, &params).unwrap());
        let bob = run_bob_session(&mut b, model(), 901, &params).unwrap();
        let alice = server.join().unwrap();
        assert!(bob.key_matched, "client saw mismatched confirmation");
        assert!(alice.key_matched, "server saw mismatched confirmation");
        assert!(
            alice.escalation.any(),
            "10 error bits must climb the ladder: {:?}",
            alice.escalation
        );
        assert_eq!(
            alice.leaked_bits, bob.leaked_bits,
            "endpoints disagree on revealed parity bits"
        );
        assert_eq!(
            alice.entropy_bits, bob.entropy_bits,
            "endpoints disagree on the amplification debit"
        );
        assert!(alice.entropy_bits <= 128 - alice.leaked_bits.min(128));
    }

    #[test]
    fn trace_context_stitches_both_peers() {
        use telemetry::{EventKind, Value};
        let sink = std::sync::Arc::new(telemetry::MemorySink::new());
        telemetry::install(sink.clone());
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let server =
            std::thread::spawn(move || serve_session(&mut a, model(), 88, 4321, &params).unwrap());
        let bob = run_bob_session(&mut b, model(), 8765, &params).unwrap();
        let alice = server.join().unwrap();
        telemetry::uninstall();
        assert!(bob.key_matched && alice.key_matched);
        // Both peers' session spans carry the client-derived trace id (the
        // global sink may hold events from concurrently running tests; the
        // unique id isolates this session's).
        let expected = Value::Str(telemetry::trace_hex(crate::obs::trace_id_for_nonce(8765)));
        let events = sink.events();
        let node_of = |span_name: &str| -> Option<Value> {
            events
                .iter()
                .find(|e| {
                    e.kind == EventKind::SpanEnd
                        && e.name == span_name
                        && e.field("trace") == Some(&expected)
                })
                .and_then(|e| e.field("node").cloned())
        };
        assert_eq!(node_of("fleet.session"), Some(Value::Str("bob".into())));
        assert_eq!(node_of("server.session"), Some(Value::Str("alice".into())));
        // The server recorded its remote causal parent from the probe.
        let remote_parent = events
            .iter()
            .find(|e| {
                e.kind == EventKind::SpanEnd
                    && e.name == "server.session"
                    && e.field("trace") == Some(&expected)
            })
            .and_then(|e| e.field("remote_parent"))
            .and_then(Value::as_u64);
        assert!(remote_parent.is_some_and(|p| p > 0), "{remote_parent:?}");
    }

    #[test]
    fn garbage_flood_past_the_budget_aborts_typed() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let server = std::thread::spawn(move || serve_session(&mut a, model(), 12, 77, &params));
        // A valid probe gets us past the handshake; everything after is
        // undecodable garbage that never resolves into a frame.
        let probe = Message::Probe {
            session_id: 0,
            seq: 0,
            nonce: 4242,
        }
        .encode();
        b.send(&probe).unwrap();
        for _ in 0..=GARBAGE_BUDGET {
            b.send(&[0xFF; 24]).unwrap();
        }
        let err = server.join().expect("server thread must not panic");
        assert_eq!(
            err.unwrap_err(),
            SessionError::Protocol(ProtocolError::Malformed("garbage flood"))
        );
    }

    #[test]
    fn half_open_peer_is_evicted_at_the_handshake_deadline() {
        let (mut a, _b) = PipeTransport::pair(Duration::from_millis(5));
        let params = SessionParams {
            handshake_timeout: Duration::from_millis(60),
            ..fast_params()
        };
        let started = Instant::now();
        let err = serve_session(&mut a, model(), 9, 1, &params).unwrap_err();
        assert_eq!(err, SessionError::Timeout("handshake"));
        assert!(
            started.elapsed() < params.session_timeout / 2,
            "eviction must not wait for the session budget"
        );
    }

    #[test]
    fn handshake_deadline_never_exceeds_the_session_budget() {
        let (mut a, _b) = PipeTransport::pair(Duration::from_millis(5));
        // A handshake budget above the session budget is clamped: the
        // session wall-clock stays the hard bound.
        let params = SessionParams {
            handshake_timeout: Duration::from_secs(300),
            session_timeout: Duration::from_millis(60),
            ..fast_params()
        };
        let started = Instant::now();
        let err = serve_session(&mut a, model(), 9, 1, &params).unwrap_err();
        assert_eq!(err, SessionError::Timeout("handshake"));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn unreconcilable_keys_surface_as_mismatch_not_success() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        // 40 disagreeing bits in 128 is far beyond the reconciler. The
        // server withholds acks for MAC-failing syndromes, so the client
        // exhausts its retries (or both sides report a mismatch).
        let params = SessionParams {
            error_bits: 40,
            retry: RetryPolicy {
                max_retries: 2,
                ack_timeout: Duration::from_millis(30),
                backoff: 1.2,
            },
            ..fast_params()
        };
        let server = std::thread::spawn(move || serve_session(&mut a, model(), 5, 42, &params));
        let bob = run_bob_session(&mut b, model(), 43, &params);
        let alice = server.join().unwrap();
        let client_ok = bob.as_ref().map(|o| o.key_matched).unwrap_or(false);
        let server_ok = alice.as_ref().map(|o| o.key_matched).unwrap_or(false);
        assert!(!client_ok, "client must not report success: {bob:?}");
        assert!(!server_ok, "server must not report success: {alice:?}");
    }

    #[test]
    fn cores_complete_a_session_without_any_transport() {
        // The event-driven cores exchange queued frames directly: the
        // purest form of the reactor's dispatch loop, with no sockets, no
        // pipes, and no threads.
        let params = fast_params();
        let now = Instant::now();
        let mut alice = SessionCore::new(model(), 501, 7070, &params, false, now);
        let mut bob = BobCore::new(model(), 7071, &params);
        let mut to_alice: Vec<Vec<u8>> = Vec::new();
        let mut to_bob: Vec<Vec<u8>> = Vec::new();
        bob.start(now, &mut to_alice);
        for _ in 0..200 {
            if bob.is_finished() && (alice.is_finished() || alice.linger_until.is_some()) {
                break;
            }
            for f in std::mem::take(&mut to_alice) {
                alice.on_frame(&f, now, &mut to_bob).unwrap();
            }
            for f in std::mem::take(&mut to_bob) {
                bob.on_frame(&f, now, &mut to_alice).unwrap();
            }
        }
        let (bob_out, bob_key) = bob.take_finished().expect("bob must finish");
        assert!(bob_out.key_matched);
        assert!(bob_key.is_some());
        assert_eq!(bob_out.blocks, 2);
        assert_eq!(bob_out.retransmissions, 0);
        // Alice lingers for duplicates; her linger expiry completes her.
        alice.on_tick(now + 3 * params.retry.ack_timeout).unwrap();
        let (alice_out, _) = alice.take_finished().expect("alice must finish");
        assert!(alice_out.key_matched);
        assert_eq!(alice_out.blocks, 2);
        assert_eq!(alice_out.session_id, 501);
    }

    #[test]
    fn bob_core_retransmits_on_ticks_and_times_out_typed() {
        let params = SessionParams {
            retry: RetryPolicy {
                max_retries: 3,
                ack_timeout: Duration::from_millis(10),
                backoff: 2.0,
            },
            ..fast_params()
        };
        let mut bob = BobCore::new(model(), 99, &params);
        let mut out: Vec<Vec<u8>> = Vec::new();
        let start = Instant::now();
        bob.start(start, &mut out);
        assert_eq!(out.len(), 1, "probe queued");
        let probe = out[0].clone();
        out.clear();
        // Walk time past each backoff window: 10ms, then 20ms, then 40ms.
        let mut t = start;
        for expected_wait in [10u64, 20, 40] {
            t += Duration::from_millis(expected_wait);
            bob.on_tick(t, &mut out).unwrap();
            assert_eq!(out.len(), 1, "one retransmission per expired window");
            assert_eq!(out[0], probe, "retransmits the same frame");
            out.clear();
        }
        // Budget exhausted: the next expiry is a typed timeout.
        t += Duration::from_millis(80);
        let err = bob.on_tick(t, &mut out).unwrap_err();
        assert_eq!(err, SessionError::Timeout("probe reply"));
    }

    #[test]
    fn session_core_deadlines_fire_in_order() {
        let params = SessionParams {
            handshake_timeout: Duration::from_millis(50),
            session_timeout: Duration::from_secs(10),
            ..fast_params()
        };
        let now = Instant::now();
        let mut core = SessionCore::new(model(), 1, 2, &params, false, now);
        assert!(core.next_deadline() <= now + Duration::from_millis(50));
        core.on_tick(now + Duration::from_millis(49)).unwrap();
        let err = core.on_tick(now + Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, SessionError::Timeout("handshake"));
    }
}
