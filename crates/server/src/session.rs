//! Per-session state machines for the networked exchange.
//!
//! The wire flow extends the core protocol with a handshake and per-block
//! acknowledgements so it survives an unreliable transport:
//!
//! ```text
//! Bob (client)                          Alice (server)
//! ------------                          --------------
//! Probe{0, seq, nonce_b}      ──►
//!                             ◄──       ProbeReply{sid, seq, nonce_a}
//! Syndrome{sid, block=k, …}   ──►       (correct block k)
//!                             ◄──       Ack{sid, seq=k}
//!     … one per block, retransmitted until acked …
//! Confirm{sid, HMAC(K_Bob)}   ──►       (verify against K_Alice)
//!                             ◄──       Confirm{sid, HMAC(K_Alice)}
//! ```
//!
//! Every client→server message is retransmitted with exponential backoff
//! until its reply arrives ([`RetryPolicy`]); the server is idempotent
//! about duplicates — a re-delivered syndrome or confirmation is answered
//! again without being re-processed, while the driver's replay rejection
//! still guards the state itself. A corrupted syndrome fails its MAC, is
//! *not* acknowledged and is *not* marked as seen, so the clean
//! retransmission repairs the block. Key material on both ends comes from
//! [`sim::derive_session_keys`](crate::sim::derive_session_keys).
//!
//! When a block's MAC still fails on *clean* material, the server climbs
//! the escalation ladder of `vehicle_key::recovery` instead of acking:
//! it answers the syndrome with a [`Message::CascadeParity`] round or a
//! [`Message::ReprobeRequest`], and the client replies in kind — answering
//! parity queries over its block (each answered round is public leakage
//! both sides debit from the amplification budget) or re-deriving fresh
//! block material via [`sim::derive_block_keys`](crate::sim::derive_block_keys).
//! Escalation traffic follows the same discipline as the ack path: the
//! client retransmits its latest message until the server's next
//! instruction arrives, and the server answers duplicates idempotently.

use crate::sim::{derive_block_keys, derive_session_keys};
use reconcile::AutoencoderReconciler;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};
use vehicle_key::{
    AliceDriver, Disposition, EscalationCounters, Message, ProtocolError, RecoveryPolicy, Session,
    Transport, TransportError,
};
use vk_crypto::amplify::amplify_with_leakage;

/// Undecodable frames a session absorbs before aborting typed
/// (`Malformed("garbage flood")`). Honest corruption resolves within the
/// retry policy — a handful of mangled frames per stormy session — while
/// a hostile peer streaming raw garbage would otherwise pin a worker
/// until the session deadline without ever tripping the (smaller)
/// rejection budget, which only counts frames that *decode*.
pub const GARBAGE_BUDGET: u64 = 64;

/// Retransmission policy for the client side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per message (beyond the first send).
    pub max_retries: u32,
    /// Wait for a reply this long before the first retransmission.
    pub ack_timeout: Duration,
    /// Multiply the wait by this factor after every retransmission.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            ack_timeout: Duration::from_millis(250),
            backoff: 1.5,
        }
    }
}

/// Parameters both endpoints of a session must agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionParams {
    /// Simulated key length in bits (whole reconciler blocks are used).
    pub key_bits: usize,
    /// Disagreeing bit positions injected into the simulated key pair.
    ///
    /// The default (three flips) deliberately exceeds what the one-shot
    /// autoencoder decode corrects every time, so the escalation ladder
    /// ([`RecoveryPolicy`]) sees real traffic under the default
    /// configuration. Session failures at the default therefore exercise
    /// *both* the wire machinery and the recovery rungs; set it to 1 to
    /// confine failures to the transport layer, or raise it further to
    /// stress the ladder until it exhausts.
    pub error_bits: usize,
    /// Client retransmission policy (the server only uses `ack_timeout`
    /// and `max_retries` to bound how long it tolerates a silent or
    /// persistently failing peer).
    pub retry: RetryPolicy,
    /// Hard wall-clock bound on one session, handshake to confirmation.
    pub session_timeout: Duration,
    /// Bound on how long a freshly accepted connection may sit without
    /// completing its probe handshake. A peer that connects and then goes
    /// silent (or trickles bytes — slowloris) is evicted after this long
    /// with [`SessionError::Timeout`]`("handshake")` instead of pinning a
    /// worker for the full `session_timeout`.
    pub handshake_timeout: Duration,
    /// Escalation ladder budgets for blocks whose MAC check fails after
    /// decoding (both endpoints must enable/disable recovery together —
    /// a server that escalates against a client that only understands
    /// acks strands the session in retransmissions).
    pub recovery: RecoveryPolicy,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            key_bits: 128,
            error_bits: 3,
            retry: RetryPolicy::default(),
            session_timeout: Duration::from_secs(30),
            handshake_timeout: Duration::from_secs(5),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Why a session failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The byte pipe failed underneath the session.
    Transport(TransportError),
    /// The peer sent something protocol-invalid beyond repair.
    Protocol(ProtocolError),
    /// A reply did not arrive within the retry budget, or the session
    /// exceeded its wall-clock bound. The label names the awaited step.
    Timeout(&'static str),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Transport(e) => write!(f, "transport: {e}"),
            SessionError::Protocol(e) => write!(f, "protocol: {e}"),
            SessionError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Transport(e) => Some(e),
            SessionError::Protocol(e) => Some(e),
            SessionError::Timeout(_) => None,
        }
    }
}

impl From<TransportError> for SessionError {
    fn from(e: TransportError) -> Self {
        SessionError::Transport(e)
    }
}

impl From<ProtocolError> for SessionError {
    fn from(e: ProtocolError) -> Self {
        SessionError::Protocol(e)
    }
}

/// What the server side carries out of a *matched* session when the
/// caller asked for a key handoff: the confirmed root for the lifecycle
/// plane, plus the encoded confirmation reply so the post-handoff loop
/// can keep re-answering duplicate `Confirm` frames whose ack was lost.
#[derive(Clone)]
pub struct SessionHandoff {
    /// The confirmed 128-bit session key.
    pub root: [u8; 16],
    /// The encoded `Confirm` reply, for idempotent re-answers.
    pub confirm_reply: Vec<u8>,
}

impl fmt::Debug for SessionHandoff {
    // The root is key material: deliberately absent from the debug form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandoff")
            .field("confirm_reply_len", &self.confirm_reply.len())
            .finish()
    }
}

/// Server-side result of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// The session id the server assigned.
    pub session_id: u32,
    /// Syndrome blocks accepted.
    pub blocks: u32,
    /// Duplicate frames answered idempotently (a proxy for how lossy the
    /// reverse path was).
    pub duplicate_frames: u64,
    /// Syndrome frames that failed their MAC (corruption, or a divergent
    /// key) and were left unacknowledged.
    pub rejected_frames: u64,
    /// Whether the peers ended up holding the same key.
    pub key_matched: bool,
    /// How far the escalation ladder climbed across the session's blocks.
    pub escalation: EscalationCounters,
    /// Parity bits revealed by Cascade recovery, debited from the
    /// amplification input.
    pub leaked_bits: usize,
    /// Effective entropy (bits) fed into the final key after the leakage
    /// debit.
    pub entropy_bits: usize,
}

/// Client-side result of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BobOutcome {
    /// The session id the server assigned.
    pub session_id: u32,
    /// Whether the server's confirmation matched ours.
    pub key_matched: bool,
    /// Total retransmissions across all steps.
    pub retransmissions: u32,
    /// Syndrome blocks sent.
    pub blocks: u32,
    /// Parity bits this client revealed answering Cascade rounds.
    pub leaked_bits: usize,
    /// Distinct Cascade parity rounds answered.
    pub cascade_rounds: u32,
    /// Distinct re-probe requests served.
    pub reprobes: u32,
    /// Effective entropy (bits) fed into the final key after the leakage
    /// debit.
    pub entropy_bits: usize,
}

/// Run the server (Alice) side of one session over an established
/// transport. `nonce_a` is the server's fresh handshake nonce.
///
/// # Errors
///
/// [`SessionError`] when the transport fails, the peer misbehaves beyond
/// the retry budget, or the session times out.
pub fn serve_session<T: Transport>(
    transport: &mut T,
    reconciler: &AutoencoderReconciler,
    session_id: u32,
    nonce_a: u64,
    params: &SessionParams,
) -> Result<ServeOutcome, SessionError> {
    serve_session_keyed(transport, reconciler, session_id, nonce_a, params, false)
        .map(|(outcome, _)| outcome)
}

/// [`serve_session`], but when `handoff` is set and the confirmation
/// matches, the function returns *immediately after sending the server's
/// confirmation* with the confirmed key in a [`SessionHandoff`] — instead
/// of lingering for duplicate frames. The caller is expected to keep the
/// connection alive (the lifecycle plane re-answers duplicate `Confirm`
/// frames from the handoff), so no replay window is lost.
///
/// # Errors
///
/// [`SessionError`], exactly as [`serve_session`].
pub fn serve_session_keyed<T: Transport>(
    transport: &mut T,
    reconciler: &AutoencoderReconciler,
    session_id: u32,
    nonce_a: u64,
    params: &SessionParams,
    handoff: bool,
) -> Result<(ServeOutcome, Option<SessionHandoff>), SessionError> {
    let deadline = Instant::now() + params.session_timeout;

    // Handshake: wait for the client's probe. The session span opens only
    // after it arrives, so the span can join the trace the client's frame
    // extension advertises and both peers export under one trace id. The
    // wait is bounded by the (much shorter) handshake deadline so a
    // half-open or slowloris connection cannot pin this worker for the
    // whole session budget.
    let handshake_deadline = Instant::now() + params.handshake_timeout.min(params.session_timeout);
    let (probe_seq, nonce_b, inbound_trace) = loop {
        if Instant::now() >= handshake_deadline {
            return Err(SessionError::Timeout("handshake"));
        }
        if Instant::now() >= deadline {
            return Err(SessionError::Timeout("probe"));
        }
        match transport.recv()? {
            Some(frame) => match Message::decode(&frame) {
                Ok(Message::Probe { seq, nonce, .. }) => {
                    break (seq, nonce, crate::obs::extract_trace(&frame))
                }
                Ok(_) => return Err(ProtocolError::Malformed("expected probe").into()),
                Err(_) => {} // corrupted frame pre-handshake: let the client retry
            },
            None => {}
        }
    };
    let _trace = inbound_trace
        .filter(|_| telemetry::enabled())
        .map(|ctx| telemetry::push_trace(ctx.trace_id, "alice"));
    let mut span = telemetry::span("server.session").field("session_id", u64::from(session_id));
    if let Some(ctx) = inbound_trace {
        span = span.field("remote_parent", ctx.parent_span);
    }
    let _span = span.enter();
    let reply = Message::ProbeReply {
        session_id,
        seq: probe_seq,
        nonce: nonce_a,
    }
    .encode();
    crate::obs::send_traced(transport, &reply)?;

    let (k_alice, _) = derive_session_keys(
        session_id,
        nonce_a,
        nonce_b,
        params.key_bits,
        params.error_bits,
    );
    let mut driver = AliceDriver::new(session_id, reconciler.clone(), nonce_a, nonce_b, k_alice)
        .with_policy(params.recovery);
    let session = Session::new(session_id, reconciler.clone(), nonce_a, nonce_b);
    let error_rate = params.error_bits as f64 / params.key_bits.max(1) as f64;

    let mut outcome = ServeOutcome {
        session_id,
        blocks: 0,
        duplicate_frames: 0,
        rejected_frames: 0,
        key_matched: false,
        escalation: EscalationCounters::default(),
        leaked_bits: 0,
        entropy_bits: 0,
    };
    let mut confirm_reply: Option<Vec<u8>> = None;
    let mut linger_until: Option<Instant> = None;
    let mut rung_timer = RungTimer::default();
    let mut undecodable = 0u64;

    // Stall watchdog: "progress" is block-level — an accepted block, a
    // ladder step, or the confirmation. Retransmissions and duplicates do
    // not count, so a session grinding on one block past its
    // `block_deadline` budget is flagged exactly once per stall episode.
    let mut last_progress = Instant::now();
    let mut last_state = (outcome.blocks, outcome.escalation, false);
    let mut stall_flagged = false;

    loop {
        if let Some(t) = linger_until {
            // Confirmation answered; stay only to re-answer duplicates of
            // the client's final messages whose replies may have been lost.
            if Instant::now() >= t {
                return Ok((outcome, None));
            }
        } else if Instant::now() >= deadline {
            return Err(SessionError::Timeout("syndromes"));
        }
        let state = (outcome.blocks, outcome.escalation, confirm_reply.is_some());
        if state != last_state {
            last_state = state;
            last_progress = Instant::now();
            stall_flagged = false;
        } else if !stall_flagged && last_progress.elapsed() > params.recovery.block_deadline {
            stall_flagged = true;
            telemetry::counter("server.stalls", 1);
            telemetry::mark("server.session_stalled")
                .field("session_id", u64::from(session_id))
                .field("block", driver.recovering_block().map_or(-1i64, i64::from))
                .field(
                    "stalled_ms",
                    u64::try_from(last_progress.elapsed().as_millis()).unwrap_or(u64::MAX),
                )
                .emit();
        }
        let frame = match transport.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            // Once the confirmation is out, the client hanging up is the
            // normal end of a session, not a failure.
            Err(TransportError::Closed) if linger_until.is_some() => return Ok((outcome, None)),
            Err(e) => return Err(e.into()),
        };
        let msg = match Message::decode(&frame) {
            Ok(msg) => msg,
            Err(_) => {
                // Undecodable (likely corrupted) frame: no ack, the client
                // will retransmit. Honest corruption stays far below
                // [`GARBAGE_BUDGET`] because retransmission resolves each
                // frame within the retry policy; a peer streaming pure
                // garbage aborts typed instead of pinning this worker
                // until the session deadline.
                outcome.rejected_frames += 1;
                telemetry::counter("server.rejected_frames", 1);
                undecodable += 1;
                if undecodable > GARBAGE_BUDGET {
                    return Err(ProtocolError::Malformed("garbage flood").into());
                }
                continue;
            }
        };
        match msg {
            Message::Probe { seq, .. } if seq == probe_seq => {
                // Our ProbeReply was lost; answer again.
                outcome.duplicate_frames += 1;
                crate::obs::send_traced(transport, &reply)?;
            }
            Message::Syndrome {
                session_id: sid,
                block,
                ref code,
                ref mac,
            } => {
                let disposition = driver.handle_syndrome(sid, block, code, mac);
                reply_for_disposition(
                    transport,
                    &mut driver,
                    session_id,
                    block,
                    disposition,
                    &mut outcome,
                    &mut rung_timer,
                    params,
                )?;
            }
            Message::CascadeParityReply {
                session_id: sid,
                block,
                round,
                ref parities,
            } => {
                let disposition = driver.handle_cascade_reply(sid, block, round, parities);
                reply_for_disposition(
                    transport,
                    &mut driver,
                    session_id,
                    block,
                    disposition,
                    &mut outcome,
                    &mut rung_timer,
                    params,
                )?;
            }
            Message::ReprobeReply {
                session_id: sid,
                block,
                attempt,
                ref code,
                ref mac,
            } => {
                // Re-measure our side of the block for this attempt; the
                // client derived its half from the same shared identity.
                let (fresh_k_alice, _) = derive_block_keys(
                    session_id,
                    nonce_a,
                    nonce_b,
                    block,
                    attempt,
                    reconciler.key_len(),
                    error_rate,
                );
                let disposition =
                    driver.handle_reprobe_reply(sid, block, attempt, code, mac, &fresh_k_alice);
                reply_for_disposition(
                    transport,
                    &mut driver,
                    session_id,
                    block,
                    disposition,
                    &mut outcome,
                    &mut rung_timer,
                    params,
                )?;
            }
            Message::Confirm { .. } => {
                let reply = match &confirm_reply {
                    Some(reply) => {
                        outcome.duplicate_frames += 1;
                        reply.clone()
                    }
                    None => {
                        outcome.key_matched = driver.handle_message(&msg).is_ok();
                        telemetry::counter(
                            if outcome.key_matched {
                                "server.sessions_matched"
                            } else {
                                "server.sessions_mismatched"
                            },
                            1,
                        );
                        // Send our own confirmation either way: on a
                        // mismatch the client sees differing checks and
                        // records the failure symmetrically.
                        let (key, entropy) = driver
                            .final_key_with_entropy()
                            .ok_or(ProtocolError::ConfirmMismatch)?;
                        outcome.escalation = driver.counters();
                        outcome.leaked_bits = driver.leaked_bits();
                        outcome.entropy_bits = entropy;
                        let reply = Message::Confirm {
                            session_id,
                            check: session.confirm_check(&key),
                        }
                        .encode()
                        .to_vec();
                        if handoff && outcome.key_matched {
                            // The lifecycle plane takes over from here; it
                            // re-answers duplicate Confirm frames itself,
                            // so skipping the linger loses no idempotency.
                            crate::obs::send_traced(transport, &reply)?;
                            return Ok((
                                outcome,
                                Some(SessionHandoff {
                                    root: key,
                                    confirm_reply: reply,
                                }),
                            ));
                        }
                        confirm_reply = Some(reply.clone());
                        linger_until = Some(Instant::now() + 2 * params.retry.ack_timeout);
                        reply
                    }
                };
                crate::obs::send_traced(transport, &reply)?;
            }
            // Anything else reaching the server (a reply meant for the
            // client, a probe for another handshake) is either corruption
            // or a hostile peer: withhold any reply and let the bounded
            // rejection budget decide, exactly like a MAC failure.
            _ => {
                reject_frame(&mut outcome, params, "unexpected message for server")?;
            }
        }
    }
}

/// Wall-clock timer for one block's trip through the escalation ladder:
/// started when a block escalates, resolved when it is finally accepted.
/// The elapsed time lands in a per-rung histogram chosen by which rung's
/// recovery counter advanced — `server.recovery.decode_ms`,
/// `server.recovery.cascade_ms`, or `server.recovery.reprobe_ms` — the
/// per-rung latency breakdown `/metrics` exposes as quantiles.
#[derive(Debug, Default)]
struct RungTimer {
    active: Option<(u32, Instant, EscalationCounters)>,
}

impl RungTimer {
    fn on_escalated(&mut self, block: u32, counters: EscalationCounters) {
        if self.active.is_none() {
            self.active = Some((block, Instant::now(), counters));
        }
    }

    fn on_accepted(&mut self, block: u32, counters: &EscalationCounters) {
        let Some((started_block, started, before)) = self.active else {
            return;
        };
        if started_block != block {
            return;
        }
        self.active = None;
        if !telemetry::enabled() {
            return;
        }
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let rung = if counters.reprobe_recoveries > before.reprobe_recoveries {
            "server.recovery.reprobe_ms"
        } else if counters.cascade_recoveries > before.cascade_recoveries {
            "server.recovery.cascade_ms"
        } else {
            "server.recovery.decode_ms"
        };
        telemetry::histogram(rung, ms);
    }
}

/// Translate a driver disposition into wire traffic: ack accepted (or
/// already-seen) blocks, forward the outstanding escalation query for
/// blocks in recovery, and withhold any reply for rejected frames so the
/// client's retransmission repairs in-flight damage.
fn reply_for_disposition<T: Transport>(
    transport: &mut T,
    driver: &mut AliceDriver,
    session_id: u32,
    block: u32,
    disposition: Result<Disposition, ProtocolError>,
    outcome: &mut ServeOutcome,
    rung_timer: &mut RungTimer,
    params: &SessionParams,
) -> Result<(), SessionError> {
    let ack = |transport: &mut T| {
        crate::obs::send_traced(
            transport,
            &Message::Ack {
                session_id,
                seq: block,
            }
            .encode(),
        )
    };
    match disposition {
        Ok(Disposition::Accepted) => {
            outcome.blocks += 1;
            rung_timer.on_accepted(block, &driver.counters());
            ack(transport)?;
        }
        Ok(Disposition::Escalated) => {
            outcome.escalation = driver.counters();
            rung_timer.on_escalated(block, outcome.escalation);
            if let Some(query) = driver.pending_recovery() {
                let frame = query.encode();
                crate::obs::send_traced(transport, &frame)?;
                telemetry::counter("server.escalation_queries", 1);
            }
        }
        Ok(Disposition::Duplicate) => {
            outcome.duplicate_frames += 1;
            telemetry::counter("server.duplicate_frames", 1);
            if driver.recovering_block() == Some(block) {
                // A stale reply raced our outstanding query: re-send it.
                if let Some(query) = driver.pending_recovery() {
                    let frame = query.encode();
                    crate::obs::send_traced(transport, &frame)?;
                }
            } else {
                ack(transport)?;
            }
        }
        // MAC failure with escalation disabled, or a malformed frame
        // (corruption can flip ids and payloads past the decoder): no
        // reply, bounded by the rejection budget.
        Err(ProtocolError::MacMismatch) => {
            reject_frame(outcome, params, "syndrome MAC mismatch")?;
        }
        Err(ProtocolError::Malformed(what)) => {
            reject_frame(outcome, params, what)?;
        }
        // The ladder ran out (or timed out): the session fails with the
        // typed reason.
        Err(e) => {
            outcome.escalation = driver.counters();
            return Err(e.into());
        }
    }
    Ok(())
}

/// Count one withheld frame; past the rejection budget the session aborts
/// (a peer persistently sending garbage is not worth serving).
fn reject_frame(
    outcome: &mut ServeOutcome,
    params: &SessionParams,
    what: &'static str,
) -> Result<(), SessionError> {
    outcome.rejected_frames += 1;
    telemetry::counter("server.rejected_frames", 1);
    if outcome.rejected_frames > u64::from(params.retry.max_retries) {
        return Err(ProtocolError::Malformed(what).into());
    }
    Ok(())
}

/// Send `frame` and poll for the reply `accept` recognizes, retransmitting
/// per `policy`. Non-matching frames are handed to `stray` (the server may
/// interleave duplicate replies to earlier steps).
fn request_with_retry<T: Transport, R>(
    transport: &mut T,
    frame: &[u8],
    policy: &RetryPolicy,
    what: &'static str,
    retransmissions: &mut u32,
    mut accept: impl FnMut(&Message) -> Option<R>,
) -> Result<R, SessionError> {
    let mut wait = policy.ack_timeout;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            *retransmissions += 1;
            telemetry::counter("fleet.retransmissions", 1);
        }
        crate::obs::send_traced(transport, frame)?;
        let deadline = Instant::now() + wait;
        while Instant::now() < deadline {
            match transport.recv()? {
                Some(reply) => {
                    if let Ok(msg) = Message::decode(&reply) {
                        if let Some(r) = accept(&msg) {
                            return Ok(r);
                        }
                    }
                }
                // recv polls with the transport's own timeout; yield so a
                // queue-backed transport doesn't spin.
                None => std::thread::yield_now(),
            }
        }
        wait = wait.mul_f64(policy.backoff);
    }
    Err(SessionError::Timeout(what))
}

/// Run the client (Bob) side of one session over an established transport.
/// `nonce_b` is the client's fresh handshake nonce.
///
/// # Errors
///
/// [`SessionError`] when the transport fails or any step exhausts its
/// retry budget.
pub fn run_bob_session<T: Transport>(
    transport: &mut T,
    reconciler: &AutoencoderReconciler,
    nonce_b: u64,
    params: &SessionParams,
) -> Result<BobOutcome, SessionError> {
    run_bob_session_keyed(transport, reconciler, nonce_b, params).map(|(outcome, _)| outcome)
}

/// [`run_bob_session`], additionally returning the confirmed 128-bit key
/// when the server's confirmation matched — the client-side half of the
/// lifecycle handoff.
///
/// # Errors
///
/// [`SessionError`], exactly as [`run_bob_session`].
pub fn run_bob_session_keyed<T: Transport>(
    transport: &mut T,
    reconciler: &AutoencoderReconciler,
    nonce_b: u64,
    params: &SessionParams,
) -> Result<(BobOutcome, Option<[u8; 16]>), SessionError> {
    // The client originates the session's trace: a deterministic id from
    // its handshake nonce, activated before the session span opens so the
    // span (and every outbound frame) carries it.
    let _trace = telemetry::enabled()
        .then(|| telemetry::push_trace(crate::obs::trace_id_for_nonce(nonce_b), "bob"));
    let _span = telemetry::span("fleet.session").enter();
    let mut retransmissions = 0u32;

    // Handshake.
    let probe = Message::Probe {
        session_id: 0,
        seq: 0,
        nonce: nonce_b,
    }
    .encode();
    let (session_id, nonce_a) = request_with_retry(
        transport,
        &probe,
        &params.retry,
        "probe reply",
        &mut retransmissions,
        |msg| match msg {
            Message::ProbeReply {
                session_id, nonce, ..
            } => Some((*session_id, *nonce)),
            _ => None,
        },
    )?;

    let (_, k_bob) = derive_session_keys(
        session_id,
        nonce_a,
        nonce_b,
        params.key_bits,
        params.error_bits,
    );
    let session = Session::new(session_id, reconciler.clone(), nonce_a, nonce_b);
    let seg = reconciler.key_len();
    let blocks = u32::try_from(k_bob.len() / seg).unwrap_or(u32::MAX);
    let error_rate = params.error_bits as f64 / params.key_bits.max(1) as f64;

    /// The server's next instruction for the block in flight.
    enum BlockStep {
        Acked,
        Cascade { round: u32, queries: Vec<Vec<u16>> },
        Reprobe { attempt: u32 },
    }

    // Syndromes, each retransmitted until its ack arrives — possibly via
    // the escalation ladder: the server may answer with parity queries or
    // a re-probe request instead of the ack, and the block is only done
    // once the ack lands.
    let mut bob_bits = quantize::BitString::new();
    let mut leaked_bits = 0usize;
    let mut cascade_rounds = 0u32;
    let mut reprobes = 0u32;
    for block in 0..blocks {
        let mut kb = k_bob.slice(block as usize * seg, seg);
        let mut frame = session.bob_syndrome_message(block, &kb).encode();
        // Rounds already answered (and attempts already served): duplicates
        // of the server's queries are re-answered without re-counting the
        // leakage — mirroring the absorb-once accounting on Alice's side.
        let mut answered_rounds = std::collections::HashSet::new();
        let mut served_attempts = std::collections::HashSet::new();
        loop {
            let step = request_with_retry(
                transport,
                &frame,
                &params.retry,
                "syndrome ack",
                &mut retransmissions,
                |msg| match msg {
                    Message::Ack { seq, .. } if *seq == block => Some(BlockStep::Acked),
                    Message::CascadeParity {
                        block: b,
                        round,
                        queries,
                        ..
                    } if *b == block => Some(BlockStep::Cascade {
                        round: *round,
                        queries: queries.clone(),
                    }),
                    Message::ReprobeRequest {
                        block: b, attempt, ..
                    } if *b == block => Some(BlockStep::Reprobe { attempt: *attempt }),
                    _ => None,
                },
            )?;
            match step {
                BlockStep::Acked => break,
                BlockStep::Cascade { round, queries } => {
                    // Positions are block-relative; anything out of range is
                    // in-flight corruption — ignore the round and let the
                    // server's retransmission deliver it intact.
                    let qs: Vec<Vec<usize>> = queries
                        .iter()
                        .map(|q| q.iter().map(|&p| usize::from(p)).collect())
                        .collect();
                    if qs.iter().flatten().any(|&p| p >= kb.len()) {
                        continue;
                    }
                    let answers = reconcile::cascade::parities(&kb, &qs);
                    if answered_rounds.insert(round) {
                        leaked_bits += answers.len();
                        cascade_rounds += 1;
                        telemetry::counter("fleet.cascade_rounds", 1);
                    }
                    frame = Message::CascadeParityReply {
                        session_id,
                        block,
                        round,
                        parities: answers,
                    }
                    .encode();
                }
                BlockStep::Reprobe { attempt } => {
                    // Re-measure the block: fresh material for this attempt,
                    // derived from the shared session identity exactly like
                    // the server's half.
                    let (_, fresh) = derive_block_keys(
                        session_id, nonce_a, nonce_b, block, attempt, seg, error_rate,
                    );
                    kb = fresh;
                    if served_attempts.insert(attempt) {
                        reprobes += 1;
                        telemetry::counter("fleet.reprobes", 1);
                    }
                    let (code, mac) = session.bob_code_and_mac(&kb);
                    frame = Message::ReprobeReply {
                        session_id,
                        block,
                        attempt,
                        code,
                        mac,
                    }
                    .encode();
                }
            }
        }
        bob_bits.extend(&kb);
    }

    // Confirmation exchange. Every parity bit revealed during recovery is
    // public knowledge now — debit it from the amplification input, as the
    // server does on its side.
    let (bob_key, entropy_bits) = amplify_with_leakage(&bob_bits.to_bools(), leaked_bits)
        .ok_or(SessionError::Protocol(ProtocolError::EntropyExhausted))?;
    let check = session.confirm_check(&bob_key);
    let confirm = Message::Confirm { session_id, check }.encode();
    let key_matched = request_with_retry(
        transport,
        &confirm,
        &params.retry,
        "server confirmation",
        &mut retransmissions,
        |msg| match msg {
            Message::Confirm {
                check: server_check,
                ..
            } => Some(*server_check == check),
            _ => None,
        },
    )?;

    Ok((
        BobOutcome {
            session_id,
            key_matched,
            retransmissions,
            blocks,
            leaked_bits,
            cascade_rounds,
            reprobes,
            entropy_bits,
        },
        key_matched.then_some(bob_key),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::PipeTransport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reconcile::AutoencoderTrainer;
    use std::sync::OnceLock;

    pub(crate) fn model() -> &'static AutoencoderReconciler {
        static MODEL: OnceLock<AutoencoderReconciler> = OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(7001);
            AutoencoderTrainer::default()
                .with_steps(6000)
                .train(&mut rng)
        })
    }

    fn fast_params() -> SessionParams {
        SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        }
    }

    #[test]
    fn clean_pipe_session_matches_keys() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let server =
            std::thread::spawn(move || serve_session(&mut a, model(), 77, 1234, &params).unwrap());
        let bob = run_bob_session(&mut b, model(), 5678, &params).unwrap();
        let alice = server.join().unwrap();
        assert!(bob.key_matched, "client saw mismatched confirmation");
        assert!(alice.key_matched, "server saw mismatched confirmation");
        assert_eq!(alice.session_id, 77);
        assert_eq!(bob.session_id, 77);
        assert_eq!(bob.blocks, 2);
        assert_eq!(alice.blocks, 2);
        assert_eq!(bob.retransmissions, 0);
    }

    #[test]
    fn escalation_recovers_heavy_errors_and_both_sides_agree_on_leakage() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        // 10 disagreeing bits in 128 defeat the one-shot decode with near
        // certainty; only the ladder (cascade parities, then re-probes)
        // gets this session to a key.
        let params = SessionParams {
            error_bits: 10,
            ..fast_params()
        };
        let server =
            std::thread::spawn(move || serve_session(&mut a, model(), 31, 900, &params).unwrap());
        let bob = run_bob_session(&mut b, model(), 901, &params).unwrap();
        let alice = server.join().unwrap();
        assert!(bob.key_matched, "client saw mismatched confirmation");
        assert!(alice.key_matched, "server saw mismatched confirmation");
        assert!(
            alice.escalation.any(),
            "10 error bits must climb the ladder: {:?}",
            alice.escalation
        );
        assert_eq!(
            alice.leaked_bits, bob.leaked_bits,
            "endpoints disagree on revealed parity bits"
        );
        assert_eq!(
            alice.entropy_bits, bob.entropy_bits,
            "endpoints disagree on the amplification debit"
        );
        assert!(alice.entropy_bits <= 128 - alice.leaked_bits.min(128));
    }

    #[test]
    fn trace_context_stitches_both_peers() {
        use telemetry::{EventKind, Value};
        let sink = std::sync::Arc::new(telemetry::MemorySink::new());
        telemetry::install(sink.clone());
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let server =
            std::thread::spawn(move || serve_session(&mut a, model(), 88, 4321, &params).unwrap());
        let bob = run_bob_session(&mut b, model(), 8765, &params).unwrap();
        let alice = server.join().unwrap();
        telemetry::uninstall();
        assert!(bob.key_matched && alice.key_matched);
        // Both peers' session spans carry the client-derived trace id (the
        // global sink may hold events from concurrently running tests; the
        // unique id isolates this session's).
        let expected = Value::Str(telemetry::trace_hex(crate::obs::trace_id_for_nonce(8765)));
        let events = sink.events();
        let node_of = |span_name: &str| -> Option<Value> {
            events
                .iter()
                .find(|e| {
                    e.kind == EventKind::SpanEnd
                        && e.name == span_name
                        && e.field("trace") == Some(&expected)
                })
                .and_then(|e| e.field("node").cloned())
        };
        assert_eq!(node_of("fleet.session"), Some(Value::Str("bob".into())));
        assert_eq!(node_of("server.session"), Some(Value::Str("alice".into())));
        // The server recorded its remote causal parent from the probe.
        let remote_parent = events
            .iter()
            .find(|e| {
                e.kind == EventKind::SpanEnd
                    && e.name == "server.session"
                    && e.field("trace") == Some(&expected)
            })
            .and_then(|e| e.field("remote_parent"))
            .and_then(Value::as_u64);
        assert!(remote_parent.is_some_and(|p| p > 0), "{remote_parent:?}");
    }

    #[test]
    fn garbage_flood_past_the_budget_aborts_typed() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        let params = fast_params();
        let server = std::thread::spawn(move || serve_session(&mut a, model(), 12, 77, &params));
        // A valid probe gets us past the handshake; everything after is
        // undecodable garbage that never resolves into a frame.
        let probe = Message::Probe {
            session_id: 0,
            seq: 0,
            nonce: 4242,
        }
        .encode();
        b.send(&probe).unwrap();
        for _ in 0..=GARBAGE_BUDGET {
            b.send(&[0xFF; 24]).unwrap();
        }
        let err = server.join().expect("server thread must not panic");
        assert_eq!(
            err.unwrap_err(),
            SessionError::Protocol(ProtocolError::Malformed("garbage flood"))
        );
    }

    #[test]
    fn half_open_peer_is_evicted_at_the_handshake_deadline() {
        let (mut a, _b) = PipeTransport::pair(Duration::from_millis(5));
        let params = SessionParams {
            handshake_timeout: Duration::from_millis(60),
            ..fast_params()
        };
        let started = Instant::now();
        let err = serve_session(&mut a, model(), 9, 1, &params).unwrap_err();
        assert_eq!(err, SessionError::Timeout("handshake"));
        assert!(
            started.elapsed() < params.session_timeout / 2,
            "eviction must not wait for the session budget"
        );
    }

    #[test]
    fn handshake_deadline_never_exceeds_the_session_budget() {
        let (mut a, _b) = PipeTransport::pair(Duration::from_millis(5));
        // A handshake budget above the session budget is clamped: the
        // session wall-clock stays the hard bound.
        let params = SessionParams {
            handshake_timeout: Duration::from_secs(300),
            session_timeout: Duration::from_millis(60),
            ..fast_params()
        };
        let started = Instant::now();
        let err = serve_session(&mut a, model(), 9, 1, &params).unwrap_err();
        assert_eq!(err, SessionError::Timeout("handshake"));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn unreconcilable_keys_surface_as_mismatch_not_success() {
        let (mut a, mut b) = PipeTransport::pair(Duration::from_millis(5));
        // 40 disagreeing bits in 128 is far beyond the reconciler. The
        // server withholds acks for MAC-failing syndromes, so the client
        // exhausts its retries (or both sides report a mismatch).
        let params = SessionParams {
            error_bits: 40,
            retry: RetryPolicy {
                max_retries: 2,
                ack_timeout: Duration::from_millis(30),
                backoff: 1.2,
            },
            ..fast_params()
        };
        let server = std::thread::spawn(move || serve_session(&mut a, model(), 5, 42, &params));
        let bob = run_bob_session(&mut b, model(), 43, &params);
        let alice = server.join().unwrap();
        let client_ok = bob.as_ref().map(|o| o.key_matched).unwrap_or(false);
        let server_ok = alice.as_ref().map(|o| o.key_matched).unwrap_or(false);
        assert!(!client_ok, "client must not report success: {bob:?}");
        assert!(!server_ok, "server must not report success: {alice:?}");
    }
}
