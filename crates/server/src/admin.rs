//! The admin plane: a second listener serving live operational state over
//! a hand-rolled slice of HTTP/1.0.
//!
//! Three routes, all read-only:
//!
//! * `/healthz` — liveness probe, always `ok`;
//! * `/metrics` — Prometheus text exposition of every counter, gauge, and
//!   histogram in the telemetry registry, plus the server's own
//!   [`ServerStats`](crate::server::ServerStats) atomics;
//! * `/sessions` — JSON of the live session table: per-session state,
//!   block counts, escalation rung counts, and leakage debits.
//!
//! The HTTP support is deliberately minimal (GET only, bounded request
//! size, `Connection: close` on every response) because the crate is
//! std-only and the endpoint exists for `curl` and a scraper, not for
//! browsers. Nothing served here ever includes key material: the metrics
//! path renders aggregated numbers and the session table carries outcome
//! metadata only.

use crate::server::ServerStats;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::Json;

/// Finished sessions retained for `/sessions` after leaving the live map.
const RECENT_CAP: usize = 64;

/// Largest request head we will buffer before giving up on a client.
const MAX_REQUEST_BYTES: usize = 4096;

/// One session as the admin plane sees it.
#[derive(Debug, Clone)]
pub struct SessionEntry {
    /// The server-assigned session id.
    pub session_id: u32,
    /// `"active"`, `"matched"`, `"mismatched"`, or `"failed"`.
    pub state: &'static str,
    /// Key blocks accepted so far.
    pub blocks: u64,
    /// Cascade parity rounds absorbed (escalation rung 2).
    pub cascade_rounds: u64,
    /// Re-probe requests issued (escalation rung 3).
    pub reprobes: u64,
    /// Parity bits revealed to recovery, debited against the key budget.
    pub leaked_bits: u64,
    /// The terminal error, for `"failed"` sessions.
    pub error: Option<String>,
}

impl SessionEntry {
    fn new(session_id: u32) -> SessionEntry {
        SessionEntry {
            session_id,
            state: "active",
            blocks: 0,
            cascade_rounds: 0,
            reprobes: 0,
            leaked_bits: 0,
            error: None,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("session".into(), Json::UInt(u64::from(self.session_id))),
            ("state".into(), Json::Str(self.state.into())),
            ("blocks".into(), Json::UInt(self.blocks)),
            ("cascade_rounds".into(), Json::UInt(self.cascade_rounds)),
            ("reprobes".into(), Json::UInt(self.reprobes)),
            ("leaked_bits".into(), Json::UInt(self.leaked_bits)),
            (
                "error".into(),
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[derive(Debug, Default)]
struct TableInner {
    live: BTreeMap<u32, SessionEntry>,
    recent: VecDeque<SessionEntry>,
}

/// Shared registry of in-flight and recently finished sessions, written by
/// the worker threads and read by the `/sessions` route.
#[derive(Debug, Default)]
pub struct SessionTable {
    inner: Mutex<TableInner>,
}

impl SessionTable {
    /// Fresh, empty table.
    pub fn new() -> SessionTable {
        SessionTable::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a session as live.
    pub fn register(&self, session_id: u32) {
        let mut inner = self.lock();
        inner.live.insert(session_id, SessionEntry::new(session_id));
    }

    /// Apply `update` to a live session's entry (no-op if unknown).
    pub fn update(&self, session_id: u32, update: impl FnOnce(&mut SessionEntry)) {
        let mut inner = self.lock();
        if let Some(entry) = inner.live.get_mut(&session_id) {
            update(entry);
        }
    }

    /// Retire a session from the live map into the bounded recent list,
    /// applying `finalize` to stamp its terminal state first.
    pub fn finish(&self, session_id: u32, finalize: impl FnOnce(&mut SessionEntry)) {
        let mut inner = self.lock();
        let mut entry = inner
            .live
            .remove(&session_id)
            .unwrap_or_else(|| SessionEntry::new(session_id));
        finalize(&mut entry);
        if inner.recent.len() >= RECENT_CAP {
            inner.recent.pop_front();
        }
        inner.recent.push_back(entry);
    }

    /// Live session count (for gauges and tests).
    pub fn live_len(&self) -> usize {
        self.lock().live.len()
    }

    /// The `/sessions` document.
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        Json::Obj(vec![
            ("live".into(), Json::UInt(inner.live.len() as u64)),
            (
                "sessions".into(),
                Json::Arr(inner.live.values().map(SessionEntry::to_json).collect()),
            ),
            (
                "recent".into(),
                Json::Arr(inner.recent.iter().map(SessionEntry::to_json).collect()),
            ),
        ])
    }
}

/// The running admin endpoint: one accept/serve thread on its own port.
#[derive(Debug)]
pub struct AdminServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind/socket-option failures.
    pub fn start(
        addr: &str,
        stats: Arc<ServerStats>,
        sessions: Arc<SessionTable>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "unresolvable admin addr")
        })?)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("vk-admin".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                // Requests are a handful of bytes; serve them
                                // inline rather than spawning per connection.
                                serve_client(stream, &stats, &sessions);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => {
                                telemetry::counter("admin.accept_errors", 1);
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    }
                })?
        };
        Ok(AdminServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the serve thread and join it.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_client(mut stream: TcpStream, stats: &ServerStats, sessions: &SessionTable) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let Some(request) = read_request_head(&mut stream) else {
        return;
    };
    telemetry::counter("admin.requests", 1);
    let (status, content_type, body) = route(&request, stats, sessions);
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Read until the blank line ending the request head, bounded in both size
/// and (via the socket timeout) time. Returns the request line.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !contains_blank_line(&buf) && buf.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(str::to_string)
}

fn contains_blank_line(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn route(
    request_line: &str,
    stats: &ServerStats,
    sessions: &SessionTable,
) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".into()),
        "/metrics" => {
            let snapshot = telemetry::snapshot();
            let s = stats.snapshot();
            let extras = [
                ("server.accepted", s.accepted),
                ("server.completed", s.completed),
                ("server.key_mismatches", s.key_mismatches),
                ("server.failed", s.failed),
                ("server.duplicate_frames", s.duplicate_frames),
                ("server.rejected_frames", s.rejected_frames),
                ("server.cascade_rounds", s.cascade_rounds),
                ("server.reprobes", s.reprobes),
                ("server.exhausted_blocks", s.exhausted_blocks),
                ("server.leaked_bits", s.leaked_bits),
                ("server.handshake_timeouts", s.handshake_timeouts),
                ("server.rejected_overload", s.rejected_overload),
            ];
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                telemetry::render_metrics(&snapshot, &extras),
            )
        }
        "/sessions" => (
            "200 OK",
            "application/json",
            format!("{}\n", sessions.to_json()),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect admin");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn split_body(response: &str) -> &str {
        response.split_once("\r\n\r\n").map_or("", |(_, body)| body)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let admin = AdminServer::start(
            "127.0.0.1:0",
            Arc::new(ServerStats::default()),
            Arc::new(SessionTable::new()),
        )
        .expect("start admin");
        let ok = get(admin.local_addr(), "/healthz");
        assert!(ok.starts_with("HTTP/1.0 200 OK"), "got: {ok}");
        assert_eq!(split_body(&ok), "ok\n");
        let missing = get(admin.local_addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "got: {missing}");
        admin.shutdown();
    }

    #[test]
    fn metrics_exposes_server_stats() {
        let stats = Arc::new(ServerStats::default());
        stats.accepted.store(5, Ordering::Relaxed);
        stats.completed.store(4, Ordering::Relaxed);
        let admin = AdminServer::start(
            "127.0.0.1:0",
            Arc::clone(&stats),
            Arc::new(SessionTable::new()),
        )
        .expect("start admin");
        let response = get(admin.local_addr(), "/metrics");
        let body = split_body(&response);
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(body.contains("# TYPE vk_server_accepted counter"));
        assert!(body.contains("vk_server_accepted 5"));
        assert!(body.contains("vk_server_completed 4"));
        assert!(body.contains("vk_server_leaked_bits 0"));
    }

    #[test]
    fn metrics_exposes_lifecycle_counters() {
        // Emit through the real telemetry path. Retried because the sink
        // is process-global and concurrent tests swap it: an emission that
        // lands while no sink is installed is silently dropped, so loop
        // until the registry actually aggregated the counter.
        let sink = Arc::new(telemetry::MemorySink::new());
        for _ in 0..64 {
            telemetry::install(sink.clone());
            telemetry::counter("lifecycle.rekeys", 1);
            telemetry::counter("lifecycle.group.epochs", 1);
            telemetry::histogram("lifecycle.group.agreement_ms", 4.0);
            if telemetry::snapshot()
                .counters
                .contains_key("lifecycle.rekeys")
            {
                break;
            }
        }
        telemetry::uninstall();
        let admin = AdminServer::start(
            "127.0.0.1:0",
            Arc::new(ServerStats::default()),
            Arc::new(SessionTable::new()),
        )
        .expect("start admin");
        let response = get(admin.local_addr(), "/metrics");
        let body = split_body(&response);
        assert!(
            body.contains("# TYPE vk_lifecycle_rekeys counter"),
            "missing lifecycle counter exposition:\n{body}"
        );
        assert!(body.contains("vk_lifecycle_group_epochs"), "{body}");
        assert!(
            body.contains("vk_lifecycle_group_agreement_ms_count"),
            "{body}"
        );
        admin.shutdown();
    }

    #[test]
    fn sessions_route_tracks_the_table() {
        let table = Arc::new(SessionTable::new());
        table.register(3);
        table.update(3, |e| e.blocks = 2);
        table.register(4);
        table.finish(4, |e| {
            e.state = "failed";
            e.error = Some("deadline".into());
        });
        let admin = AdminServer::start(
            "127.0.0.1:0",
            Arc::new(ServerStats::default()),
            Arc::clone(&table),
        )
        .expect("start admin");
        let response = get(admin.local_addr(), "/sessions");
        let doc = Json::parse(split_body(&response).trim()).expect("valid json");
        assert_eq!(doc.get("live").and_then(Json::as_u64), Some(1));
        let live = doc.get("sessions").and_then(Json::items).unwrap();
        assert_eq!(live[0].get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(live[0].get("blocks").and_then(Json::as_u64), Some(2));
        assert_eq!(live[0].get("state").and_then(Json::as_str), Some("active"));
        let recent = doc.get("recent").and_then(Json::items).unwrap();
        assert_eq!(
            recent[0].get("state").and_then(Json::as_str),
            Some("failed")
        );
        assert_eq!(
            recent[0].get("error").and_then(Json::as_str),
            Some("deadline")
        );
    }

    #[test]
    fn recent_list_is_bounded() {
        let table = SessionTable::new();
        for id in 0..(RECENT_CAP as u32 + 10) {
            table.register(id);
            table.finish(id, |e| e.state = "matched");
        }
        let doc = table.to_json();
        let recent = doc.get("recent").and_then(Json::items).unwrap();
        assert_eq!(recent.len(), RECENT_CAP);
        // The oldest entries were evicted.
        assert_eq!(recent[0].get("session").and_then(Json::as_u64), Some(10));
        assert_eq!(table.live_len(), 0);
    }

    #[test]
    fn oversized_and_non_get_requests_are_rejected() {
        let admin = AdminServer::start(
            "127.0.0.1:0",
            Arc::new(ServerStats::default()),
            Arc::new(SessionTable::new()),
        )
        .expect("start admin");
        let mut stream = TcpStream::connect(admin.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 405"), "got: {response}");
    }
}
