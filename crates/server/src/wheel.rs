//! Hierarchical timer wheel driving the reactor's deadlines.
//!
//! A reactor shard owns thousands of sessions, each carrying several live
//! deadlines at once (retransmission backoff, `block_deadline`, handshake
//! and session budgets, the stall watchdog). A `BinaryHeap` of deadlines
//! would pay `O(log n)` per re-arm and has no cheap cancellation; the
//! classic hashed hierarchical wheel (Varghese & Lauck) makes arm,
//! cancel, and expiry amortized `O(1)`:
//!
//! * **L0** — 64 slots × 8 ms ticks (512 ms span): the hot level, where
//!   every ack-timeout and poll deadline lives.
//! * **L1** — 64 slots × 512 ms (32.8 s span): session/handshake budgets.
//! * **L2** — 64 slots × 32.8 s (≈35 min span): long lingers and anything
//!   an operator sets with a big `--session-timeout`.
//! * **overflow** — a plain list for deadlines past L2's horizon,
//!   re-examined when L2 wraps.
//!
//! When L0 wraps, the next L1 slot *cascades*: its entries re-insert at
//! finer granularity (likewise L1←L2←overflow). A timer therefore fires
//! on the first [`advance`](TimerWheel::advance) whose wall-clock tick
//! reaches its (tick-rounded-up) deadline — never early, at most one
//! 8 ms tick late.
//!
//! **Cancellation is lazy.** The wheel never removes entries; each entry
//! carries the `(token, gen)` pair it was armed with, and the caller
//! bumps its generation counter to cancel. Expired entries whose `gen` no
//! longer matches the caller's current generation are stale pops to be
//! ignored. This is what makes re-arming a retransmission timer on every
//! frame O(1) instead of a heap surgery.

use crate::poll::Token;
use std::time::{Duration, Instant};

/// Milliseconds per L0 tick — the wheel's resolution. 8 ms is well under
/// the shortest production retry timeout (250 ms) while keeping an idle
/// shard's timer wakeups under 125/s.
pub const TICK_MS: u64 = 8;

/// Slots per level.
const SLOTS: u64 = 64;
/// Ticks spanned by one L1 slot.
const L1_SPAN: u64 = SLOTS;
/// Ticks spanned by one L2 slot.
const L2_SPAN: u64 = SLOTS * SLOTS;
/// Ticks spanned by the whole L2 level — the overflow horizon.
const L2_HORIZON: u64 = SLOTS * SLOTS * SLOTS;

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: Token,
    gen: u64,
    /// Absolute due time in ticks since the wheel's epoch.
    due: u64,
}

/// A timer that popped: the token and the generation it was armed with.
/// Compare `gen` against the owner's current generation to detect a
/// lazily-cancelled (stale) pop.
pub type Expired = (Token, u64);

/// Hierarchical timing wheel. See the module docs for the level layout.
pub struct TimerWheel {
    /// Wall-clock epoch; tick 0 starts here.
    start: Instant,
    /// Last fully processed tick.
    tick: u64,
    l0: Vec<Vec<Entry>>,
    l1: Vec<Vec<Entry>>,
    l2: Vec<Vec<Entry>>,
    overflow: Vec<Entry>,
    /// Live entries across all levels (stale ones included until they
    /// pop — lazy cancellation keeps them in place).
    armed: usize,
}

impl TimerWheel {
    /// An empty wheel whose tick 0 is `start`.
    pub fn new(start: Instant) -> Self {
        let level = || (0..SLOTS).map(|_| Vec::new()).collect::<Vec<_>>();
        TimerWheel {
            start,
            tick: 0,
            l0: level(),
            l1: level(),
            l2: level(),
            overflow: Vec::new(),
            armed: 0,
        }
    }

    /// Entries currently stored (armed plus not-yet-popped stale ones).
    pub fn armed(&self) -> usize {
        self.armed
    }

    fn ticks_at(&self, at: Instant) -> u64 {
        let ms = at.saturating_duration_since(self.start).as_millis();
        u64::try_from(ms / u128::from(TICK_MS)).unwrap_or(u64::MAX)
    }

    fn instant_of(&self, tick: u64) -> Instant {
        self.start + Duration::from_millis(tick.saturating_mul(TICK_MS))
    }

    /// Arm a timer for `at`. Deadlines already in the past fire on the
    /// next [`advance`](TimerWheel::advance). `gen` is echoed back on
    /// expiry so the caller can detect stale pops.
    pub fn schedule(&mut self, token: Token, gen: u64, at: Instant) {
        // Round the deadline *up* to a tick so timers never fire early,
        // and never behind the wheel's cursor so they land in a live slot.
        let ms = at.saturating_duration_since(self.start).as_millis();
        let due_tick = u64::try_from(ms.div_ceil(u128::from(TICK_MS))).unwrap_or(u64::MAX);
        let due = due_tick.max(self.tick + 1);
        self.armed += 1;
        self.place(Entry { token, gen, due });
    }

    /// File an entry into the level matching its remaining delta. Callers
    /// guarantee `due > self.tick`.
    fn place(&mut self, e: Entry) {
        let delta = e.due - self.tick;
        let slot_list = if delta <= L1_SPAN {
            self.l0.get_mut(usize::try_from(e.due % SLOTS).unwrap_or(0))
        } else if delta <= L2_SPAN {
            self.l1
                .get_mut(usize::try_from((e.due / L1_SPAN) % SLOTS).unwrap_or(0))
        } else if delta <= L2_HORIZON {
            self.l2
                .get_mut(usize::try_from((e.due / L2_SPAN) % SLOTS).unwrap_or(0))
        } else {
            self.overflow.push(e);
            return;
        };
        if let Some(list) = slot_list {
            list.push(e);
        }
    }

    /// Advance wall-clock time to `now`, pushing every expired `(token,
    /// gen)` onto `expired` in firing-tick order.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<Expired>) {
        let target = self.ticks_at(now);
        while self.tick < target {
            self.tick += 1;
            // Cascade coarser levels *before* draining L0: a cascaded
            // entry due this very tick must land in the slot about to be
            // drained. Coarsest first, so L2 entries can pass through L1.
            if self.tick % L2_HORIZON == 0 {
                let pending = std::mem::take(&mut self.overflow);
                for e in pending {
                    self.place(e);
                }
            }
            if self.tick % L2_SPAN == 0 {
                let slot = usize::try_from((self.tick / L2_SPAN) % SLOTS).unwrap_or(0);
                let pending = self
                    .l2
                    .get_mut(slot)
                    .map(std::mem::take)
                    .unwrap_or_default();
                for e in pending {
                    self.place(e);
                }
            }
            if self.tick % L1_SPAN == 0 {
                let slot = usize::try_from((self.tick / L1_SPAN) % SLOTS).unwrap_or(0);
                let pending = self
                    .l1
                    .get_mut(slot)
                    .map(std::mem::take)
                    .unwrap_or_default();
                for e in pending {
                    self.place(e);
                }
            }
            let slot = usize::try_from(self.tick % SLOTS).unwrap_or(0);
            let due_now = self
                .l0
                .get_mut(slot)
                .map(std::mem::take)
                .unwrap_or_default();
            for e in due_now {
                if e.due <= self.tick {
                    self.armed -= 1;
                    expired.push((e.token, e.gen));
                } else {
                    // A later lap of the same slot: re-file.
                    self.place(e);
                }
            }
        }
    }

    /// Earliest instant a timer could fire, for sizing the poll timeout.
    /// Exact when the next timer lives in L0; for coarser levels it
    /// returns the next *cascade* boundary instead — conservatively
    /// early, so a wakeup there re-files entries and the next call is
    /// exact. `None` when nothing is armed (the reactor then blocks
    /// indefinitely — the idle-CPU guarantee).
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.armed == 0 {
            return None;
        }
        // L0: the first non-empty slot ahead holds entries due exactly at
        // that tick (one lap at most, checked via due).
        for dt in 1..=SLOTS {
            let tick = self.tick + dt;
            if let Some(list) = self.l0.get(usize::try_from(tick % SLOTS).unwrap_or(0)) {
                if let Some(due) = list.iter().map(|e| e.due).min() {
                    return Some(self.instant_of(due.min(tick)));
                }
            }
        }
        // L1/L2: first upcoming cascade whose slot is populated.
        for dl in 1..=SLOTS {
            let boundary = (self.tick / L1_SPAN + dl) * L1_SPAN;
            let slot = usize::try_from((boundary / L1_SPAN) % SLOTS).unwrap_or(0);
            if self.l1.get(slot).is_some_and(|l| !l.is_empty()) {
                return Some(self.instant_of(boundary));
            }
        }
        for dl in 1..=SLOTS {
            let boundary = (self.tick / L2_SPAN + dl) * L2_SPAN;
            let slot = usize::try_from((boundary / L2_SPAN) % SLOTS).unwrap_or(0);
            if self.l2.get(slot).is_some_and(|l| !l.is_empty()) {
                return Some(self.instant_of(boundary));
            }
        }
        // Overflow: entries re-file at the L2 wrap before their due time,
        // so their own due instants are safe (and exact) wake targets.
        self.overflow
            .iter()
            .map(|e| e.due)
            .min()
            .map(|due| self.instant_of(due))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> (TimerWheel, Instant) {
        let start = Instant::now();
        (TimerWheel::new(start), start)
    }

    fn at(start: Instant, ms: u64) -> Instant {
        start + Duration::from_millis(ms)
    }

    fn fired(w: &mut TimerWheel, start: Instant, ms: u64) -> Vec<Expired> {
        let mut out = Vec::new();
        w.advance(at(start, ms), &mut out);
        out
    }

    #[test]
    fn fires_at_the_rounded_tick_never_early() {
        let (mut w, start) = wheel();
        w.schedule(Token(1), 0, at(start, 100));
        // 100 ms rounds up to tick 13 = 104 ms.
        assert!(fired(&mut w, start, 99).is_empty());
        assert!(fired(&mut w, start, 103).is_empty());
        let hits = fired(&mut w, start, 104);
        assert_eq!(hits, vec![(Token(1), 0)]);
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let (mut w, start) = wheel();
        let _ = fired(&mut w, start, 1000);
        w.schedule(Token(2), 7, at(start, 500)); // already past
        let hits = fired(&mut w, start, 1016);
        assert_eq!(hits, vec![(Token(2), 7)]);
    }

    #[test]
    fn levels_cascade_and_fire_in_order() {
        let (mut w, start) = wheel();
        w.schedule(Token(10), 0, at(start, 200)); // L0
        w.schedule(Token(11), 0, at(start, 5_000)); // L1
        w.schedule(Token(12), 0, at(start, 60_000)); // L2
        w.schedule(Token(13), 0, at(start, 3_000_000)); // overflow (50 min)
        assert_eq!(w.armed(), 4);

        let mut all = Vec::new();
        // Sweep forward in coarse steps; order of expiry must follow the
        // deadlines regardless of which level each lived in.
        for ms in [100u64, 1_000, 10_000, 100_000, 400_000, 3_000_100] {
            w.advance(at(start, ms), &mut all);
        }
        assert_eq!(
            all,
            vec![
                (Token(10), 0),
                (Token(11), 0),
                (Token(12), 0),
                (Token(13), 0),
            ]
        );
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn same_slot_different_laps_do_not_cross_fire() {
        let (mut w, start) = wheel();
        // Two deadlines 512 ms apart share an L0 slot index.
        w.schedule(Token(1), 0, at(start, 64));
        w.schedule(Token(2), 0, at(start, 64 + 512));
        assert_eq!(fired(&mut w, start, 64), vec![(Token(1), 0)]);
        assert!(fired(&mut w, start, 100).is_empty());
        assert_eq!(fired(&mut w, start, 576), vec![(Token(2), 0)]);
    }

    #[test]
    fn lazy_cancellation_surfaces_as_a_stale_generation() {
        let (mut w, start) = wheel();
        // The caller arms gen 3, then re-arms (cancelling) with gen 4.
        w.schedule(Token(5), 3, at(start, 40));
        w.schedule(Token(5), 4, at(start, 80));
        let first = fired(&mut w, start, 48);
        // The stale entry still pops — with the old gen, which the caller
        // compares against its current (4) and ignores.
        assert_eq!(first, vec![(Token(5), 3)]);
        let second = fired(&mut w, start, 88);
        assert_eq!(second, vec![(Token(5), 4)]);
    }

    #[test]
    fn next_deadline_is_exact_for_l0_and_conservative_for_coarse_levels() {
        let (mut w, start) = wheel();
        assert_eq!(w.next_deadline(), None);

        w.schedule(Token(1), 0, at(start, 100));
        // Exact: tick 13 = 104 ms.
        assert_eq!(w.next_deadline(), Some(at(start, 104)));

        let _ = fired(&mut w, start, 104);
        w.schedule(Token(2), 0, at(start, 10_000));
        // Coarse: some boundary at or before the real deadline, never
        // after it, and never at-or-behind the cursor.
        let hint = w.next_deadline().expect("armed wheel yields a deadline");
        assert!(hint <= at(start, 10_000 + TICK_MS));
        assert!(hint > at(start, 104));
        // Following the hints eventually fires the timer.
        let mut out = Vec::new();
        let mut guard = 0;
        while out.is_empty() {
            let next = w.next_deadline().expect("still armed");
            w.advance(next, &mut out);
            guard += 1;
            assert!(guard < 100, "next_deadline hints must make progress");
        }
        assert_eq!(out, vec![(Token(2), 0)]);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn dense_same_tick_timers_all_fire_once() {
        let (mut w, start) = wheel();
        for i in 0..1000u64 {
            w.schedule(Token(i), i, at(start, 96));
        }
        let hits = fired(&mut w, start, 104);
        assert_eq!(hits.len(), 1000);
        assert_eq!(w.armed(), 0);
        let mut tokens: Vec<u64> = hits.iter().map(|(t, _)| t.0).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn big_idle_gaps_advance_cheaply_and_correctly() {
        let (mut w, start) = wheel();
        w.schedule(Token(1), 0, at(start, 120_000)); // 2 min out, L2
        assert!(fired(&mut w, start, 119_000).is_empty());
        assert_eq!(fired(&mut w, start, 120_008), vec![(Token(1), 0)]);
    }
}
