//! Wire-level observability glue: trace-context frame extensions.
//!
//! The session machinery in [`crate::session`] calls into this module to
//! (a) append the thread's active trace context to outbound frames as the
//! optional extension defined in [`telemetry::trace`], and (b) recover the
//! context a peer attached to an inbound frame. Both directions are
//! interop-safe by construction: [`vehicle_key::Message::decode`] ignores
//! trailing bytes, so a peer that predates the extension never notices it,
//! and a garbage extension degrades to "no trace" instead of an error.

use crate::sim::SplitMix64;
use telemetry::TraceContext;
use vehicle_key::{Message, Transport, TransportError};

/// Derive the deterministic 128-bit trace id for a session from the
/// client's handshake nonce. The client (Bob) computes it before its first
/// probe; the server adopts whatever arrives on the wire, so only this
/// side ever derives. Deterministic by design: seeded fleet runs produce
/// stable trace ids, and no entropy is drawn from the key path.
pub fn trace_id_for_nonce(nonce_b: u64) -> u128 {
    let mut rng = SplitMix64::new(nonce_b ^ 0x7472_6163); // "trac"
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// The extension to append to an outbound frame right now: present only
/// when telemetry is enabled and a trace is active on this thread. The
/// advertised parent is the innermost open span, so the receiving peer can
/// record its remote causal parent.
pub fn outbound_extension() -> Option<Vec<u8>> {
    if !telemetry::enabled() {
        return None;
    }
    let trace = telemetry::current_trace()?;
    let ctx = TraceContext {
        trace_id: trace.trace_id,
        parent_span: telemetry::current_span_id().unwrap_or(0),
    };
    Some(ctx.encode_ext())
}

/// Send `frame`, appending the thread's trace extension when one is
/// active. With telemetry disabled this is exactly `transport.send`.
///
/// # Errors
///
/// Propagates the transport's send error.
pub fn send_traced<T: Transport>(transport: &mut T, frame: &[u8]) -> Result<(), TransportError> {
    match outbound_extension() {
        Some(ext) => {
            let mut out = Vec::with_capacity(frame.len() + ext.len());
            out.extend_from_slice(frame);
            out.extend_from_slice(&ext);
            transport.send(&out)
        }
        None => transport.send(frame),
    }
}

/// Extract the trace context riding after the encoded message in `frame`.
/// Returns `None` — never an error — when the message itself does not
/// decode, when no extension is present, or when the extension is garbage
/// (counted under `obs.trace_ext_garbage`); the session proceeds
/// untraced either way.
pub fn extract_trace(frame: &[u8]) -> Option<TraceContext> {
    let (_, consumed) = Message::decode_prefix(frame).ok()?;
    let ext = &frame[consumed..];
    if ext.is_empty() {
        return None;
    }
    let ctx = TraceContext::decode_ext(ext);
    if ctx.is_none() {
        telemetry::counter("obs.trace_ext_garbage", 1);
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> Vec<u8> {
        Message::Probe {
            session_id: 0,
            seq: 1,
            nonce: 99,
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn extension_survives_the_frame_round_trip() {
        let ctx = TraceContext {
            trace_id: trace_id_for_nonce(99),
            parent_span: 12,
        };
        let mut frame = probe();
        frame.extend_from_slice(&ctx.encode_ext());
        // An extension-aware peer recovers the context…
        assert_eq!(extract_trace(&frame), Some(ctx));
        // …and a legacy peer decodes the identical message regardless.
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::decode(&probe()).unwrap()
        );
    }

    #[test]
    fn bare_and_garbage_frames_yield_no_trace() {
        assert_eq!(extract_trace(&probe()), None);
        let mut garbage = probe();
        garbage.extend_from_slice(&[0xC7, 0xFF]); // truncated header
        assert_eq!(extract_trace(&garbage), None);
        let mut wrong_magic = probe();
        wrong_magic.extend_from_slice(&[0x00, 0x00, 0x18]);
        assert_eq!(extract_trace(&wrong_magic), None);
        assert_eq!(extract_trace(&[0xFE, 0x01]), None, "undecodable message");
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id_for_nonce(7), trace_id_for_nonce(7));
        assert_ne!(trace_id_for_nonce(7), trace_id_for_nonce(8));
        assert_ne!(trace_id_for_nonce(7), 0);
    }

    #[test]
    fn no_extension_without_an_active_trace() {
        assert_eq!(outbound_extension(), None);
    }
}
