//! `vk-server` — the Vehicle-Key exchange as a network service, plus the
//! load generator that stresses it.
//!
//! The `vehicle-key` core computes sessions end-to-end but only in-process:
//! its [`Transport`](vehicle_key::Transport) was exercised solely by
//! in-memory queues. This crate runs the same protocol over real sockets
//! and at scale:
//!
//! * [`framing`] — a length-prefixed TCP framing layer
//!   ([`TcpTransport`]) implementing the core `Transport` trait, with an
//!   incremental [`FrameDecoder`] that survives partial reads and rejects
//!   oversized frames;
//! * [`fault`] — [`FaultyTransport`], a deterministic (seeded)
//!   fault-injection wrapper dropping, duplicating, corrupting, and
//!   reordering frames, usable around any transport;
//! * [`pipe`] — a thread-safe in-memory duplex transport for tests that
//!   need two real threads without sockets;
//! * [`session`] — the per-session state machines: the server's Alice side
//!   ([`serve_session`]) with idempotent block acknowledgements, and the
//!   client's Bob side ([`run_bob_session`]) with bounded retry/backoff
//!   recovery;
//! * [`server`] — [`Server`]: a listener plus worker-pool session manager
//!   with graceful shutdown and atomic stats;
//! * [`fleet`] — [`run_fleet`]: N concurrent Bob endpoints against a
//!   server, recording per-session outcome, key-match rate, and latency
//!   percentiles into a `fleet.manifest.json`;
//! * [`sim`] — deterministic derivation of the correlated key material a
//!   simulated session's two endpoints hold (the stand-in for the physical
//!   LoRa channel when the exchange runs over TCP);
//! * [`obs`] — trace-context frame extensions stitching both peers of a
//!   session into one exported causal trace;
//! * [`admin`] — the hand-rolled HTTP/1.0 admin endpoint serving
//!   `/metrics` (Prometheus text), `/healthz`, and `/sessions`;
//! * [`adversary`] — Eve and Mallory as workloads: wire-level capture
//!   ([`RecordingTransport`]), the passive key-recovery pipeline at
//!   swept separations, active attacks (injection, replay, bit-flip
//!   storms, lifecycle forgery), and DoS drivers (half-open floods,
//!   slowloris) with the campaign umbrella [`run_adversary`].
//!
//! Everything is instrumented with `vk-telemetry` spans and counters under
//! the `server.*` and `fleet.*` namespaces.

pub mod admin;
pub mod adversary;
pub mod fault;
pub mod fleet;
pub mod framing;
pub mod lifecycle;
pub mod obs;
pub mod pipe;
pub mod poll;
pub mod reactor;
pub mod server;
pub mod session;
pub mod sim;
pub mod wheel;

pub use admin::{AdminServer, SessionEntry, SessionTable};
pub use adversary::{
    attack_bitflip_storm, attack_lifecycle_inject, attack_probe_injection, attack_session_replay,
    correlation_at, default_separations, eve_observe, eve_sweep_point, forged_app_frames,
    run_adversary, run_recorded_session, slowloris, AdversaryConfig, AdversaryReport,
    AttackOutcome, BlockCapture, EveArm, EveObservation, HalfOpenFlood, RecordingTransport,
    SessionCapture, SlowlorisOutcome, StormOutcome, StormVerdict,
};
pub use fault::{FaultConfig, FaultLens, FaultStats, FaultyTransport};
pub use fleet::{
    peak_rss_mb, run_fleet, FleetConfig, FleetError, FleetLifecycleStats, FleetReport, LatencyStats,
};
pub use framing::{encode_frame, FrameBuf, FrameDecoder, TcpTransport, MAX_FRAME_LEN};
pub use lifecycle::{
    run_bob_lifecycle, serve_lifecycle, BobLifecycleOutcome, ClientLifecycleCfg, GroupPlane,
    LifecycleConfig, LifecycleServeOutcome, LifecycleStats, RekeyMode, RekeyPolicy, RekeyTrigger,
    AGREEMENT_PAYLOAD,
};
pub use pipe::PipeTransport;
pub use poll::{Event, Interest, Poller, Token, Waker};
pub use server::{Server, ServerConfig, ServerMode, ServerStats, StatsSnapshot};
pub use session::{
    run_bob_session, run_bob_session_keyed, serve_session, serve_session_keyed, BobCore,
    BobOutcome, RetryPolicy, ServeOutcome, SessionCore, SessionError, SessionHandoff,
    SessionParams, GARBAGE_BUDGET,
};
pub use sim::{derive_block_keys, derive_session_keys, SplitMix64};
pub use wheel::TimerWheel;
