//! Deterministic fault injection around any [`Transport`].
//!
//! [`FaultyTransport`] perturbs *outgoing* frames — dropping, corrupting,
//! duplicating, or reordering them with configured probabilities — while
//! passing received frames through untouched. Wrapping one endpoint is
//! therefore enough to disturb one direction of a link, and wrapping both
//! endpoints disturbs both. All randomness comes from a seeded
//! [`SplitMix64`], so a failing run replays exactly.

use crate::sim::SplitMix64;
use vehicle_key::{Transport, TransportError};

/// Fault probabilities (each in `[0, 1]`) plus the seed that makes a run
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability an outgoing frame is silently discarded.
    pub drop: f64,
    /// Probability an outgoing frame is sent twice.
    pub duplicate: f64,
    /// Probability one random bit of an outgoing frame is flipped.
    pub corrupt: f64,
    /// Probability an outgoing frame is held back and emitted after the
    /// next one (adjacent-pair reordering).
    pub reorder: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            seed: 1,
        }
    }
}

impl FaultConfig {
    /// Whether every probability is zero (the wrapper would be a no-op).
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.corrupt == 0.0 && self.reorder == 0.0
    }
}

/// Counts of injected faults, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames discarded.
    pub dropped: u64,
    /// Extra copies sent.
    pub duplicated: u64,
    /// Frames with a flipped bit.
    pub corrupted: u64,
    /// Frames delivered out of order.
    pub reordered: u64,
}

/// The fault-decision engine, factored out of the transport wrapper so
/// the readiness-driven reactor (which owns raw sockets, not
/// [`Transport`]s) can perturb its outbound frames with byte-identical
/// semantics. Feed it one logical frame; it emits zero or more frames in
/// the order they should hit the wire.
///
/// The decision order — and therefore the PRNG draw order, which pins the
/// deterministic replay — is: drop, corrupt (one random bit), reorder
/// (hold until the next frame), emit, flush any held frame, duplicate.
#[derive(Debug)]
pub struct FaultLens {
    config: FaultConfig,
    rng: SplitMix64,
    held: Option<Vec<u8>>,
    stats: FaultStats,
}

impl FaultLens {
    /// A lens drawing from `config.seed`.
    pub fn new(config: FaultConfig) -> Self {
        FaultLens {
            config,
            rng: SplitMix64::new(config.seed),
            held: None,
            stats: FaultStats::default(),
        }
    }

    /// Injected-fault counts so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.next_f64() < p
    }

    /// Run one outgoing frame through the fault pipeline, appending what
    /// should actually be emitted (0–3 frames) to `out` in wire order.
    pub fn apply(&mut self, frame: &[u8], out: &mut Vec<Vec<u8>>) {
        if self.chance(self.config.drop) {
            self.stats.dropped += 1;
            return;
        }
        let mut frame = frame.to_vec();
        if !frame.is_empty() && self.chance(self.config.corrupt) {
            let bit = self.rng.below(frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            self.stats.corrupted += 1;
        }
        if self.chance(self.config.reorder) && self.held.is_none() {
            self.held = Some(frame);
            self.stats.reordered += 1;
            return;
        }
        out.push(frame.clone());
        if let Some(late) = self.held.take() {
            out.push(late);
        }
        if self.chance(self.config.duplicate) {
            self.stats.duplicated += 1;
            out.push(frame);
        }
    }
}

/// A [`Transport`] wrapper injecting faults into the send path.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    lens: FaultLens,
    /// Scratch for the lens output, reused across sends.
    emitted: Vec<Vec<u8>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap a transport.
    pub fn new(inner: T, config: FaultConfig) -> Self {
        FaultyTransport {
            inner,
            lens: FaultLens::new(config),
            emitted: Vec::new(),
        }
    }

    /// Injected-fault counts so far.
    pub fn stats(&self) -> FaultStats {
        self.lens.stats()
    }

    /// Unwrap the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.emitted.clear();
        self.lens.apply(frame, &mut self.emitted);
        for emitted in self.emitted.drain(..) {
            self.inner.send(&emitted)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        self.inner.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehicle_key::DuplexQueue;

    fn sent_through(config: FaultConfig, frames: usize) -> (Vec<Vec<u8>>, FaultStats) {
        let mut q = DuplexQueue::new();
        let stats;
        {
            let mut faulty = FaultyTransport::new(q.bob(), config);
            for i in 0..frames {
                faulty.send(&[i as u8; 8]).unwrap();
            }
            stats = faulty.stats();
        }
        let mut out = Vec::new();
        while let Some(f) = q.alice().recv().unwrap() {
            out.push(f);
        }
        (out, stats)
    }

    #[test]
    fn noop_config_is_transparent() {
        let (out, stats) = sent_through(FaultConfig::default(), 10);
        assert_eq!(out.len(), 10);
        assert_eq!(stats, FaultStats::default());
        assert_eq!(out[3], vec![3u8; 8]);
    }

    #[test]
    fn drop_rate_thins_the_stream() {
        let cfg = FaultConfig {
            drop: 0.5,
            seed: 42,
            ..FaultConfig::default()
        };
        let (out, stats) = sent_through(cfg, 400);
        assert_eq!(out.len() as u64 + stats.dropped, 400);
        // With p=0.5 over 400 frames, anything outside [120, 280] would be
        // astronomically unlikely.
        assert!(
            (120..=280).contains(&out.len()),
            "dropped {}",
            stats.dropped
        );
    }

    #[test]
    fn duplicates_add_frames_deterministically() {
        let cfg = FaultConfig {
            duplicate: 0.3,
            seed: 7,
            ..FaultConfig::default()
        };
        let (out1, s1) = sent_through(cfg, 100);
        let (out2, s2) = sent_through(cfg, 100);
        assert_eq!(out1, out2, "same seed must replay the same faults");
        assert_eq!(s1, s2);
        assert_eq!(out1.len() as u64, 100 + s1.duplicated);
        assert!(s1.duplicated > 0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt: 1.0,
            seed: 3,
            ..FaultConfig::default()
        };
        let (out, stats) = sent_through(cfg, 20);
        assert_eq!(stats.corrupted, 20);
        for (i, f) in out.iter().enumerate() {
            let clean = vec![i as u8; 8];
            let flipped: u32 = f
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1);
        }
    }

    #[test]
    fn lens_emits_exactly_what_the_transport_sends() {
        // The lens is the transport's engine; the two views of the same
        // config and seed must produce byte-identical wire streams.
        let cfg = FaultConfig {
            drop: 0.2,
            duplicate: 0.2,
            corrupt: 0.2,
            reorder: 0.2,
            seed: 1234,
        };
        let (through_transport, t_stats) = sent_through(cfg, 200);
        let mut lens = FaultLens::new(cfg);
        let mut through_lens = Vec::new();
        for i in 0..200usize {
            lens.apply(&[i as u8; 8], &mut through_lens);
        }
        assert_eq!(through_lens, through_transport);
        assert_eq!(lens.stats(), t_stats);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        let cfg = FaultConfig {
            reorder: 1.0,
            seed: 9,
            ..FaultConfig::default()
        };
        // With p=1 every other frame is held and flushed by the next send:
        // frames 0..4 arrive as 1,0,3,2.
        let (out, stats) = sent_through(cfg, 4);
        assert!(stats.reordered > 0);
        assert_eq!(
            out,
            vec![vec![1u8; 8], vec![0u8; 8], vec![3u8; 8], vec![2u8; 8]]
        );
    }
}
