//! Concurrent load generator: N Bob endpoints against a running server.
//!
//! [`run_fleet`] spins up `concurrency` client threads that share a global
//! session budget; each claimed session connects, runs
//! [`run_bob_session`](crate::session::run_bob_session), and records its
//! outcome, wall-clock latency, and retransmission count. The aggregate
//! [`FleetReport`] carries the throughput, key-match rate, failure
//! breakdown, and latency percentiles, and serializes to the
//! `fleet.manifest.json` schema:
//!
//! ```json
//! {
//!   "kind": "fleet",
//!   "sessions": 100, "concurrency": 8, "ok": 97,
//!   "key_match_rate": 0.97, "elapsed_s": 1.8, "sessions_per_sec": 53.9,
//!   "retransmissions": 12,
//!   "failed": { "timeout": 3 },
//!   "latency_ms": { "p50": 11.2, "p95": 19.8, "p99": 24.0,
//!                    "min": 8.1, "max": 25.3, "mean": 12.4 }
//! }
//! ```

use crate::fault::{FaultConfig, FaultLens, FaultyTransport};
use crate::framing::{encode_frame, FrameBuf, TcpTransport};
use crate::lifecycle::{run_bob_lifecycle, BobLifecycleOutcome, ClientLifecycleCfg};
use crate::poll::{Interest, Poller, Token};
use crate::session::{
    run_bob_session, run_bob_session_keyed, BobCore, SessionError, SessionParams,
};
use crate::sim::SplitMix64;
use crate::wheel::TimerWheel;
use reconcile::AutoencoderReconciler;
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::Json;
use vehicle_key::{ProtocolError, TransportError};

/// Why a fleet run could not start.
#[derive(Debug)]
pub enum FleetError {
    /// The server address did not resolve to a socket address.
    Resolve {
        /// The address as configured.
        addr: String,
        /// The resolver error, when it produced one (an address that
        /// resolves to nothing yields `None`).
        source: Option<std::io::Error>,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Resolve { addr, source: None } => {
                write!(f, "cannot resolve {addr}")
            }
            FleetError::Resolve {
                addr,
                source: Some(e),
            } => write!(f, "cannot resolve {addr}: {e}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Resolve { source, .. } => {
                source.as_ref().map(|e| e as &(dyn Error + 'static))
            }
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Server address.
    pub addr: String,
    /// Total sessions to run.
    pub sessions: u64,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Session parameters (must match the server's).
    pub params: SessionParams,
    /// Optional fault injection on the clients' outgoing frames.
    pub fault: Option<FaultConfig>,
    /// Socket read poll window.
    pub poll: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Seed for client handshake nonces (per-session nonces derive from
    /// this and the session index).
    pub nonce_seed: u64,
    /// When set, each confirmed session continues into the lifecycle
    /// phase with this client behaviour (the server must be running with
    /// [`ServerConfig::lifecycle`](crate::server::ServerConfig) set too).
    pub lifecycle: Option<ClientLifecycleCfg>,
    /// When set, the fleet runs as a *pooled* client engine instead of
    /// thread-per-slot: one event-driven thread (the client-side mirror
    /// of the server reactor — [`BobCore`] state machines over a
    /// [`Poller`] and a timer wheel) holds this many connections in
    /// flight at once. This is what lets one box present 10k+ concurrent
    /// sessions without 10k threads. Ignored when [`FleetConfig::lifecycle`]
    /// is set — the lifecycle client is a blocking loop and keeps the
    /// thread engine.
    pub pool: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            addr: "127.0.0.1:7400".into(),
            sessions: 100,
            concurrency: 8,
            params: SessionParams::default(),
            fault: None,
            poll: Duration::from_millis(25),
            connect_timeout: Duration::from_secs(5),
            nonce_seed: 0xB0B,
            lifecycle: None,
            pool: None,
        }
    }
}

/// Latency percentiles over the successful sessions, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the tail that matters at 10k sessions, where
    /// p99 still hides a hundred stragglers.
    pub p999: f64,
    /// Fastest session.
    pub min: f64,
    /// Slowest session.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Nearest-rank percentiles over a sample set (empty samples give all
    /// zeros).
    pub fn from_samples(samples: &mut Vec<f64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let idx = ((p / 100.0) * samples.len() as f64).ceil() as usize;
            samples[idx.clamp(1, samples.len()) - 1]
        };
        LatencyStats {
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
            p999: rank(99.9),
            min: samples[0],
            max: samples[samples.len() - 1],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("p50".into(), Json::Num(self.p50)),
            ("p95".into(), Json::Num(self.p95)),
            ("p99".into(), Json::Num(self.p99)),
            ("p999".into(), Json::Num(self.p999)),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
            ("mean".into(), Json::Num(self.mean)),
        ])
    }
}

/// Aggregate lifecycle-phase statistics over a fleet run (present when
/// [`FleetConfig::lifecycle`] was set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetLifecycleStats {
    /// Sessions that completed the lifecycle phase.
    pub completed: u64,
    /// Application frames acknowledged across all sessions.
    pub app_frames_acked: u64,
    /// Key rotations completed, any mode.
    pub rekeys: u64,
    /// Hash-ratchet rotations completed.
    pub ratchets: u64,
    /// Re-probe rotations completed.
    pub reprobes: u64,
    /// Group-key wraps installed across all members.
    pub group_installs: u64,
    /// Highest group epoch any member reached.
    pub max_group_epoch: u32,
    /// Members that departed gracefully.
    pub left: u64,
    /// Retransmissions inside the lifecycle phase.
    pub retransmissions: u64,
}

impl FleetLifecycleStats {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("completed".into(), Json::UInt(self.completed)),
            ("app_frames_acked".into(), Json::UInt(self.app_frames_acked)),
            ("rekeys".into(), Json::UInt(self.rekeys)),
            ("ratchets".into(), Json::UInt(self.ratchets)),
            ("reprobes".into(), Json::UInt(self.reprobes)),
            ("group_installs".into(), Json::UInt(self.group_installs)),
            (
                "max_group_epoch".into(),
                Json::UInt(u64::from(self.max_group_epoch)),
            ),
            ("left".into(), Json::UInt(self.left)),
            ("retransmissions".into(), Json::UInt(self.retransmissions)),
        ])
    }
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Sessions attempted.
    pub sessions: u64,
    /// Concurrency level the run used.
    pub concurrency: usize,
    /// Sessions that confirmed a matching key.
    pub ok: u64,
    /// Failure counts by category (`connect`, `timeout`, `transport`,
    /// `protocol`, `key_mismatch`).
    pub failed: BTreeMap<String, u64>,
    /// Wall time of the whole run in seconds.
    pub elapsed_s: f64,
    /// Total retransmissions across all sessions.
    pub retransmissions: u64,
    /// Cascade parity rounds the clients answered (escalation rung 2).
    pub cascade_rounds: u64,
    /// Re-probe requests the clients served (escalation rung 3).
    pub reprobes: u64,
    /// Parity bits revealed across all sessions — the cumulative Cascade
    /// leakage debited from the amplification inputs.
    pub leaked_bits: u64,
    /// Latency percentiles over successful sessions.
    pub latency: LatencyStats,
    /// Peak resident set of this process over the run, in MiB (from
    /// `/proc/self/status` `VmHWM`; 0 where procfs is unavailable). At
    /// 10k concurrent sessions memory is as load-bearing a result as
    /// latency.
    pub max_rss_mb: f64,
    /// Lifecycle-phase aggregates (only when the run was configured with
    /// [`FleetConfig::lifecycle`]).
    pub lifecycle: Option<FleetLifecycleStats>,
}

impl FleetReport {
    /// `ok / sessions` (0 when no sessions ran).
    pub fn key_match_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.ok as f64 / self.sessions as f64
        }
    }

    /// Successful sessions per second of wall time.
    pub fn sessions_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.ok as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Render as the manifest JSON value.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::Obj(vec![
            ("kind".into(), Json::Str("fleet".into())),
            ("sessions".into(), Json::UInt(self.sessions)),
            ("concurrency".into(), Json::UInt(self.concurrency as u64)),
            ("ok".into(), Json::UInt(self.ok)),
            ("key_match_rate".into(), Json::Num(self.key_match_rate())),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            (
                "sessions_per_sec".into(),
                Json::Num(self.sessions_per_sec()),
            ),
            ("retransmissions".into(), Json::UInt(self.retransmissions)),
            (
                "escalation".into(),
                Json::Obj(vec![
                    ("cascade_rounds".into(), Json::UInt(self.cascade_rounds)),
                    ("reprobes".into(), Json::UInt(self.reprobes)),
                    ("leaked_bits".into(), Json::UInt(self.leaked_bits)),
                ]),
            ),
            (
                "failed".into(),
                Json::Obj(
                    self.failed
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            ("latency_ms".into(), self.latency.to_json()),
            ("max_rss_mb".into(), Json::Num(self.max_rss_mb)),
        ]);
        if let (Json::Obj(fields), Some(lc)) = (&mut doc, self.lifecycle) {
            fields.push(("lifecycle".into(), lc.to_json()));
        }
        doc
    }

    /// Write the manifest file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string() + "\n")
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet: {}/{} sessions ok ({:.1}%) in {:.2}s — {:.1} sessions/s, {} retransmissions\n\
             escalation: {} cascade rounds, {} reprobes, {} parity bits leaked\n\
             latency ms: p50 {:.1}  p95 {:.1}  p99 {:.1}  p999 {:.1}  \
             (min {:.1}, mean {:.1}, max {:.1}) — peak RSS {:.1} MiB",
            self.ok,
            self.sessions,
            self.key_match_rate() * 100.0,
            self.elapsed_s,
            self.sessions_per_sec(),
            self.retransmissions,
            self.cascade_rounds,
            self.reprobes,
            self.leaked_bits,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.p999,
            self.latency.min,
            self.latency.mean,
            self.latency.max,
            self.max_rss_mb,
        );
        if let Some(lc) = self.lifecycle {
            out.push_str(&format!(
                "\nlifecycle: {} completed, {} app frames acked, {} rekeys \
                 ({} ratchet / {} reprobe), {} group installs (max epoch {}), {} left",
                lc.completed,
                lc.app_frames_acked,
                lc.rekeys,
                lc.ratchets,
                lc.reprobes,
                lc.group_installs,
                lc.max_group_epoch,
                lc.left,
            ));
        }
        for (reason, count) in &self.failed {
            out.push_str(&format!("\n  failed/{reason}: {count}"));
        }
        out
    }
}

fn failure_key(e: &SessionError) -> &'static str {
    match e {
        SessionError::Transport(TransportError::Closed) => "transport_closed",
        SessionError::Transport(_) => "transport",
        SessionError::Protocol(ProtocolError::RecoveryExhausted(_)) => "recovery_exhausted",
        SessionError::Protocol(ProtocolError::DeadlineExpired(_)) => "recovery_deadline",
        SessionError::Protocol(ProtocolError::EntropyExhausted) => "entropy_exhausted",
        SessionError::Protocol(_) => "protocol",
        SessionError::Timeout(_) => "timeout",
    }
}

struct SessionRecord {
    ok: bool,
    failure: Option<&'static str>,
    latency_ms: f64,
    retransmissions: u32,
    cascade_rounds: u32,
    reprobes: u32,
    leaked_bits: usize,
    lifecycle: Option<BobLifecycleOutcome>,
}

/// Drive one connection: the key exchange, then — when configured — the
/// lifecycle phase over the same transport.
fn drive_client<T: vehicle_key::Transport>(
    transport: &mut T,
    cfg: &FleetConfig,
    reconciler: &Arc<AutoencoderReconciler>,
    nonce_b: u64,
    index: u64,
    record: &mut SessionRecord,
) {
    let Some(lcfg) = cfg.lifecycle else {
        match run_bob_session(transport, reconciler, nonce_b, &cfg.params) {
            Ok(o) => {
                record.retransmissions = o.retransmissions;
                record.cascade_rounds = o.cascade_rounds;
                record.reprobes = o.reprobes;
                record.leaked_bits = o.leaked_bits;
                if o.key_matched {
                    record.ok = true;
                } else {
                    record.failure = Some("key_mismatch");
                }
            }
            Err(e) => record.failure = Some(failure_key(&e)),
        }
        return;
    };
    match run_bob_session_keyed(transport, reconciler, nonce_b, &cfg.params) {
        Ok((o, root)) => {
            record.retransmissions = o.retransmissions;
            record.cascade_rounds = o.cascade_rounds;
            record.reprobes = o.reprobes;
            record.leaked_bits = o.leaked_bits;
            let Some(root) = root else {
                record.failure = Some("key_mismatch");
                return;
            };
            let lifecycle_seed = SplitMix64::new(cfg.nonce_seed ^ index.rotate_left(17)).next_u64();
            match run_bob_lifecycle(
                transport,
                o.session_id,
                root,
                &lcfg,
                &cfg.params,
                lifecycle_seed,
            ) {
                Ok(lc) => {
                    record.retransmissions += lc.retransmissions;
                    record.lifecycle = Some(lc);
                    record.ok = true;
                }
                Err(_) => record.failure = Some("lifecycle"),
            }
        }
        Err(e) => record.failure = Some(failure_key(&e)),
    }
}

fn run_one(
    addr: &SocketAddr,
    cfg: &FleetConfig,
    reconciler: &Arc<AutoencoderReconciler>,
    index: u64,
) -> SessionRecord {
    let started = Instant::now();
    let mut record = SessionRecord {
        ok: false,
        failure: None,
        latency_ms: 0.0,
        retransmissions: 0,
        cascade_rounds: 0,
        reprobes: 0,
        leaked_bits: 0,
        lifecycle: None,
    };
    let stream = match TcpStream::connect_timeout(addr, cfg.connect_timeout) {
        Ok(s) => s,
        Err(_) => {
            record.failure = Some("connect");
            return record;
        }
    };
    let transport = match TcpTransport::new(stream, cfg.poll) {
        Ok(t) => t,
        Err(_) => {
            record.failure = Some("connect");
            return record;
        }
    };
    let nonce_b = SplitMix64::new(cfg.nonce_seed ^ index).next_u64();
    match cfg.fault {
        Some(fault) if !fault.is_noop() => {
            let fault = FaultConfig {
                seed: SplitMix64::new(fault.seed ^ index).next_u64(),
                ..fault
            };
            let mut t = FaultyTransport::new(transport, fault);
            drive_client(&mut t, cfg, reconciler, nonce_b, index, &mut record);
        }
        _ => {
            let mut t = transport;
            drive_client(&mut t, cfg, reconciler, nonce_b, index, &mut record);
        }
    }
    record.latency_ms = started.elapsed().as_secs_f64() * 1000.0;
    record
}

/// Peak resident set of this process in MiB, read from
/// `/proc/self/status` (`VmHWM`). Returns 0.0 where procfs is
/// unavailable or unparsable, so reports degrade gracefully off-Linux.
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// One in-flight connection of the pooled client engine: the client-side
/// mirror of the server reactor's per-connection state.
struct PoolConn {
    stream: TcpStream,
    core: BobCore,
    buf: FrameBuf,
    outbound: Vec<u8>,
    interest: Interest,
    lens: Option<FaultLens>,
    index: u64,
    started: Instant,
    gen: u64,
}

/// Frame one outbound client message (trace extension appended under the
/// caller's trace scope, fault lens applied, length-prefixed) onto the
/// connection's byte queue.
fn pool_queue_frame(conn: &mut PoolConn, mut frame: Vec<u8>, emitted: &mut Vec<Vec<u8>>) {
    if let Some(ext) = crate::obs::outbound_extension() {
        frame.extend_from_slice(&ext);
    }
    match &mut conn.lens {
        Some(lens) => {
            emitted.clear();
            lens.apply(&frame, emitted);
            for wire in emitted.drain(..) {
                conn.outbound.extend_from_slice(&encode_frame(&wire));
            }
        }
        None => conn.outbound.extend_from_slice(&encode_frame(&frame)),
    }
}

/// Write queued outbound bytes until done or the socket pushes back.
fn pool_flush(conn: &mut PoolConn) -> std::io::Result<()> {
    while !conn.outbound.is_empty() {
        match (&conn.stream).write(conn.outbound.as_slice()) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => {
                conn.outbound.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn pool_failure_record(started: Instant, failure: &'static str) -> SessionRecord {
    SessionRecord {
        ok: false,
        failure: Some(failure),
        latency_ms: started.elapsed().as_secs_f64() * 1000.0,
        retransmissions: 0,
        cascade_rounds: 0,
        reprobes: 0,
        leaked_bits: 0,
        lifecycle: None,
    }
}

/// Close out one pooled session from its finished [`BobCore`].
fn pool_finish_record(conn: &mut PoolConn) -> SessionRecord {
    let mut record = pool_failure_record(conn.started, "engine");
    record.failure = None;
    let Some((o, _root)) = conn.core.take_finished() else {
        record.failure = Some("engine");
        return record;
    };
    record.retransmissions = o.retransmissions;
    record.cascade_rounds = o.cascade_rounds;
    record.reprobes = o.reprobes;
    record.leaked_bits = o.leaked_bits;
    if o.key_matched {
        record.ok = true;
    } else {
        record.failure = Some("key_mismatch");
    }
    record
}

/// The pooled client engine: `pool` concurrent [`BobCore`] sessions
/// multiplexed on this one thread over a [`Poller`], deadlines driven by
/// a [`TimerWheel`] — the load-generator twin of the server reactor.
/// Claims session indices from `cfg.sessions` and tops the pool back up
/// as sessions retire, so the server sees a sustained `pool`-deep
/// concurrency plateau rather than a thundering herd of threads.
fn run_pool(
    addr: &SocketAddr,
    cfg: &FleetConfig,
    reconciler: &Arc<AutoencoderReconciler>,
    pool: usize,
) -> Vec<SessionRecord> {
    let mut records: Vec<SessionRecord> = Vec::with_capacity(cfg.sessions as usize);
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fleet: pooled engine cannot start ({e}); all sessions fail");
            let now = Instant::now();
            records.extend((0..cfg.sessions).map(|_| pool_failure_record(now, "engine")));
            return records;
        }
    };
    let mut wheel = TimerWheel::new(Instant::now());
    let mut conns: HashMap<u64, PoolConn> = HashMap::new();
    let mut next_index = 0u64;
    let mut next_token = 0u64;
    let mut events = Vec::new();
    let mut expired = Vec::new();
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut emitted: Vec<Vec<u8>> = Vec::new();
    loop {
        // Top up: open connections until the pool is full or the session
        // budget is claimed. Connects are blocking but loopback-fast; the
        // live sessions tolerate the pause as ordinary scheduling jitter.
        while conns.len() < pool.max(1) && next_index < cfg.sessions {
            let index = next_index;
            next_index += 1;
            let started = Instant::now();
            let stream = match TcpStream::connect_timeout(addr, cfg.connect_timeout).and_then(|s| {
                s.set_nonblocking(true)?;
                s.set_nodelay(true)?;
                Ok(s)
            }) {
                Ok(s) => s,
                Err(_) => {
                    records.push(pool_failure_record(started, "connect"));
                    continue;
                }
            };
            let nonce_b = SplitMix64::new(cfg.nonce_seed ^ index).next_u64();
            let lens = cfg.fault.filter(|f| !f.is_noop()).map(|fault| {
                FaultLens::new(FaultConfig {
                    seed: SplitMix64::new(fault.seed ^ index).next_u64(),
                    ..fault
                })
            });
            let core = BobCore::new(reconciler, nonce_b, &cfg.params);
            let token = next_token;
            next_token += 1;
            if poller
                .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
                .is_err()
            {
                records.push(pool_failure_record(started, "engine"));
                continue;
            }
            let mut conn = PoolConn {
                stream,
                core,
                buf: FrameBuf::new(),
                outbound: Vec::new(),
                interest: Interest::READABLE,
                lens,
                index,
                started,
                gen: 0,
            };
            {
                // The client originates the trace (same derivation as the
                // blocking path); a short-lived session span marks the
                // bob track, and the probe carries the extension.
                let _trace = telemetry::enabled()
                    .then(|| telemetry::push_trace(conn.core.trace_id(), "bob"));
                let _span = telemetry::span("fleet.session")
                    .field("session_index", index)
                    .enter();
                frames.clear();
                conn.core.start(started, &mut frames);
                for frame in frames.drain(..) {
                    pool_queue_frame(&mut conn, frame, &mut emitted);
                }
            }
            if pool_flush(&mut conn).is_err() {
                let _ = poller.deregister(conn.stream.as_raw_fd());
                records.push(pool_failure_record(started, "transport"));
                continue;
            }
            if !conn.outbound.is_empty() {
                conn.interest = Interest::BOTH;
                let _ = poller.reregister(conn.stream.as_raw_fd(), Token(token), Interest::BOTH);
            }
            wheel.schedule(Token(token), 0, conn.core.next_deadline());
            conns.insert(token, conn);
        }
        if conns.is_empty() && next_index >= cfg.sessions {
            break;
        }
        let timeout = wheel
            .next_deadline()
            .map(|d| d.saturating_duration_since(Instant::now()));
        if let Err(e) = poller.wait(&mut events, timeout) {
            eprintln!("fleet: pooled engine poll error: {e}");
            std::thread::sleep(Duration::from_millis(10));
        }
        let now = Instant::now();
        for ev in &events {
            let Token(token) = ev.token;
            let mut terminal: Option<&'static str> = None;
            let mut eof = false;
            let (finished, fd, deadline, want, have, gen) = {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if ev.writable && pool_flush(conn).is_err() {
                    terminal = Some("transport");
                }
                if ev.readable && terminal.is_none() {
                    loop {
                        match conn.buf.fill_from(&mut conn.stream) {
                            Ok(0) => {
                                eof = true;
                                break;
                            }
                            Ok(_) => {
                                let res = pool_pump(conn, now, &mut frames, &mut emitted);
                                if let Err(key) = res {
                                    terminal = Some(key);
                                    break;
                                }
                                if conn.core.is_finished() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => {
                                terminal = Some("transport");
                                break;
                            }
                        }
                    }
                }
                if terminal.is_none() && !conn.outbound.is_empty() && pool_flush(conn).is_err() {
                    terminal = Some("transport");
                }
                conn.gen += 1;
                (
                    conn.core.is_finished(),
                    conn.stream.as_raw_fd(),
                    conn.core.next_deadline(),
                    if conn.outbound.is_empty() {
                        Interest::READABLE
                    } else {
                        Interest::BOTH
                    },
                    conn.interest,
                    conn.gen,
                )
            };
            if let Some(key) = terminal {
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    records.push(pool_failure_record(conn.started, key));
                }
                continue;
            }
            if finished {
                pool_retire(&mut conns, &mut poller, token, &mut records);
                continue;
            }
            if eof {
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    records.push(pool_failure_record(conn.started, "transport_closed"));
                }
                continue;
            }
            if want != have {
                let _ = poller.reregister(fd, Token(token), want);
                if let Some(conn) = conns.get_mut(&token) {
                    conn.interest = want;
                }
            }
            wheel.schedule(Token(token), gen, deadline);
        }
        wheel.advance(now, &mut expired);
        for (Token(token), gen) in expired.drain(..) {
            let (result, finished, deadline) = {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if conn.gen != gen {
                    continue;
                }
                frames.clear();
                let res = {
                    let _trace = telemetry::enabled()
                        .then(|| telemetry::push_trace(conn.core.trace_id(), "bob"));
                    let res = conn.core.on_tick(now, &mut frames);
                    for frame in frames.drain(..) {
                        pool_queue_frame(conn, frame, &mut emitted);
                    }
                    res
                };
                let flushed = if conn.outbound.is_empty() {
                    Ok(())
                } else {
                    pool_flush(conn)
                };
                (
                    res.map_err(|e| failure_key(&e))
                        .and(flushed.map_err(|_| "transport")),
                    conn.core.is_finished(),
                    conn.core.next_deadline(),
                )
            };
            match result {
                Err(key) => {
                    if let Some(conn) = conns.remove(&token) {
                        let _ = poller.deregister(conn.stream.as_raw_fd());
                        records.push(pool_failure_record(conn.started, key));
                    }
                }
                Ok(()) if finished => pool_retire(&mut conns, &mut poller, token, &mut records),
                Ok(()) => wheel.schedule(Token(token), gen, deadline),
            }
        }
    }
    records
}

/// Feed every complete inbound frame through the session core, queueing
/// whatever it answers with.
fn pool_pump(
    conn: &mut PoolConn,
    now: Instant,
    frames: &mut Vec<Vec<u8>>,
    emitted: &mut Vec<Vec<u8>>,
) -> Result<(), &'static str> {
    loop {
        let range = match conn.buf.next_frame_range() {
            Ok(Some(range)) => range,
            Ok(None) => return Ok(()),
            Err(_) => return Err("transport"),
        };
        frames.clear();
        let res = {
            let _trace =
                telemetry::enabled().then(|| telemetry::push_trace(conn.core.trace_id(), "bob"));
            let res = conn.core.on_frame(conn.buf.slice(range), now, frames);
            for frame in frames.drain(..) {
                pool_queue_frame(conn, frame, emitted);
            }
            res
        };
        if let Err(e) = res {
            return Err(failure_key(&e));
        }
        if conn.core.is_finished() {
            return Ok(());
        }
    }
}

/// A pooled session ran to completion: flush its tail blocking-with-
/// timeout (the confirm ack must reach the server), record it, and free
/// the pool slot.
fn pool_retire(
    conns: &mut HashMap<u64, PoolConn>,
    poller: &mut Poller,
    token: u64,
    records: &mut Vec<SessionRecord>,
) {
    let Some(mut conn) = conns.remove(&token) else {
        return;
    };
    let _ = poller.deregister(conn.stream.as_raw_fd());
    if !conn.outbound.is_empty() {
        let _ = conn.stream.set_nonblocking(false);
        let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = conn.stream.write_all(conn.outbound.as_slice());
        conn.outbound.clear();
    }
    let record = pool_finish_record(&mut conn);
    telemetry::histogram("fleet.session_latency_ms", record.latency_ms);
    records.push(record);
}

/// Run the load generator against a server and aggregate the results.
///
/// # Errors
///
/// Returns an error when the address does not resolve; per-session
/// failures are *not* errors — they land in the report.
pub fn run_fleet(
    cfg: &FleetConfig,
    reconciler: &Arc<AutoencoderReconciler>,
) -> Result<FleetReport, FleetError> {
    let addr: SocketAddr = cfg
        .addr
        .to_socket_addrs()
        .map_err(|e| FleetError::Resolve {
            addr: cfg.addr.clone(),
            source: Some(e),
        })?
        .next()
        .ok_or_else(|| FleetError::Resolve {
            addr: cfg.addr.clone(),
            source: None,
        })?;
    let pooled = cfg.pool.filter(|_| cfg.lifecycle.is_none());
    let _span = telemetry::span("fleet.run")
        .field("sessions", cfg.sessions)
        .field("concurrency", cfg.concurrency as u64)
        .field("pool", pooled.unwrap_or(0) as u64)
        .enter();
    let started = Instant::now();
    if let Some(pool) = pooled {
        let records = run_pool(&addr, cfg, reconciler, pool);
        return Ok(aggregate(
            cfg,
            pool,
            records,
            started.elapsed().as_secs_f64(),
        ));
    }
    let next = Arc::new(AtomicU64::new(0));
    let records: Vec<SessionRecord> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.concurrency.max(1));
        for _ in 0..cfg.concurrency.max(1) {
            let next = Arc::clone(&next);
            handles.push(scope.spawn({
                let addr = addr;
                move || {
                    let mut mine = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= cfg.sessions {
                            break mine;
                        }
                        let record = run_one(&addr, cfg, reconciler, index);
                        telemetry::histogram("fleet.session_latency_ms", record.latency_ms);
                        mine.push(record);
                    }
                }
            }));
        }
        handles
            .into_iter()
            // vk-lint: allow(panic-freedom, "join fails only if a worker panicked; re-raising keeps its diagnostic")
            .flat_map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    Ok(aggregate(cfg, cfg.concurrency, records, elapsed_s))
}

/// Fold per-session records into the aggregate report (shared by the
/// thread engine and the pooled engine; `concurrency` is the thread
/// count for the former, the pool depth for the latter).
fn aggregate(
    cfg: &FleetConfig,
    concurrency: usize,
    records: Vec<SessionRecord>,
    elapsed_s: f64,
) -> FleetReport {
    let mut failed = BTreeMap::new();
    let mut latencies = Vec::new();
    let mut ok = 0u64;
    let mut retransmissions = 0u64;
    let mut cascade_rounds = 0u64;
    let mut reprobes = 0u64;
    let mut leaked_bits = 0u64;
    let mut lifecycle = cfg.lifecycle.map(|_| FleetLifecycleStats::default());
    for r in &records {
        retransmissions += u64::from(r.retransmissions);
        cascade_rounds += u64::from(r.cascade_rounds);
        reprobes += u64::from(r.reprobes);
        leaked_bits += r.leaked_bits as u64;
        if r.ok {
            ok += 1;
            latencies.push(r.latency_ms);
        } else if let Some(reason) = r.failure {
            *failed.entry(reason.to_string()).or_insert(0) += 1;
        }
        if let (Some(agg), Some(lc)) = (lifecycle.as_mut(), r.lifecycle.as_ref()) {
            agg.completed += 1;
            agg.app_frames_acked += u64::from(lc.app_frames_acked);
            agg.rekeys += u64::from(lc.rekeys);
            agg.ratchets += u64::from(lc.ratchets);
            agg.reprobes += u64::from(lc.reprobes);
            agg.group_installs += u64::from(lc.group_installs);
            agg.max_group_epoch = agg.max_group_epoch.max(lc.group_epoch);
            agg.left += u64::from(lc.left);
            agg.retransmissions += u64::from(lc.retransmissions);
        }
    }
    telemetry::counter("fleet.sessions_ok", ok);
    telemetry::counter("fleet.sessions_failed", cfg.sessions.saturating_sub(ok));
    telemetry::counter("fleet.leaked_bits", leaked_bits);
    FleetReport {
        sessions: cfg.sessions,
        concurrency,
        ok,
        failed,
        elapsed_s,
        retransmissions,
        cascade_rounds,
        reprobes,
        leaked_bits,
        latency: LatencyStats::from_samples(&mut latencies),
        max_rss_mb: peak_rss_mb(),
        lifecycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = LatencyStats::from_samples(&mut samples);
        assert_eq!(stats.p50, 50.0);
        assert_eq!(stats.p95, 95.0);
        assert_eq!(stats.p99, 99.0);
        assert_eq!(stats.p999, 100.0);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 100.0);
        assert!((stats.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_one_sample() {
        let mut samples = vec![7.5];
        let stats = LatencyStats::from_samples(&mut samples);
        assert_eq!(stats.p50, 7.5);
        assert_eq!(stats.p99, 7.5);
        assert_eq!(stats.p999, 7.5);
    }

    #[test]
    fn p999_separates_the_extreme_tail_from_p99() {
        // 500 fast samples and one straggler: p99 stays fast, p999 (which
        // under nearest-rank is the max for n <= 1000) finds the
        // straggler.
        let mut samples: Vec<f64> = vec![10.0; 500];
        samples.push(5000.0);
        let stats = LatencyStats::from_samples(&mut samples);
        assert_eq!(stats.p99, 10.0);
        assert_eq!(stats.p999, 5000.0);
    }

    #[test]
    fn peak_rss_reads_as_a_positive_number_on_linux() {
        let rss = peak_rss_mb();
        assert!(rss >= 0.0);
        if cfg!(target_os = "linux") {
            assert!(rss > 0.0, "VmHWM should be present on Linux: {rss}");
        }
    }

    #[test]
    fn empty_samples_do_not_panic() {
        assert_eq!(
            LatencyStats::from_samples(&mut Vec::new()),
            LatencyStats::default()
        );
    }

    #[test]
    fn fleet_error_displays_and_chains() {
        let plain = FleetError::Resolve {
            addr: "nowhere.invalid:1".into(),
            source: None,
        };
        assert_eq!(plain.to_string(), "cannot resolve nowhere.invalid:1");
        assert!(plain.source().is_none());
        let chained = FleetError::Resolve {
            addr: "nowhere.invalid:1".into(),
            source: Some(std::io::Error::other("dns down")),
        };
        assert!(chained.to_string().contains("dns down"));
        assert!(chained.source().is_some());
    }

    #[test]
    fn report_json_shape() {
        let mut failed = BTreeMap::new();
        failed.insert("timeout".to_string(), 3u64);
        let report = FleetReport {
            sessions: 100,
            concurrency: 8,
            ok: 97,
            failed,
            elapsed_s: 2.0,
            retransmissions: 12,
            cascade_rounds: 5,
            reprobes: 1,
            leaked_bits: 40,
            latency: LatencyStats {
                p50: 10.0,
                p95: 20.0,
                p99: 30.0,
                p999: 30.5,
                min: 5.0,
                max: 31.0,
                mean: 11.0,
            },
            max_rss_mb: 42.5,
            lifecycle: None,
        };
        let json = report.to_json();
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("fleet"));
        assert_eq!(json.get("ok").and_then(Json::as_u64), Some(97));
        assert_eq!(
            json.get("key_match_rate").and_then(Json::as_f64),
            Some(0.97)
        );
        assert_eq!(
            json.get("sessions_per_sec").and_then(Json::as_f64),
            Some(48.5)
        );
        assert_eq!(
            json.get("failed")
                .and_then(|f| f.get("timeout"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            json.get("latency_ms")
                .and_then(|l| l.get("p95"))
                .and_then(Json::as_f64),
            Some(20.0)
        );
        assert_eq!(
            json.get("latency_ms")
                .and_then(|l| l.get("p999"))
                .and_then(Json::as_f64),
            Some(30.5)
        );
        assert_eq!(json.get("max_rss_mb").and_then(Json::as_f64), Some(42.5));
        let escalation = json.get("escalation").expect("escalation block present");
        assert_eq!(
            escalation.get("cascade_rounds").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(escalation.get("reprobes").and_then(Json::as_u64), Some(1));
        assert_eq!(
            escalation.get("leaked_bits").and_then(Json::as_u64),
            Some(40)
        );
        // Round-trips through the hand-rolled JSON layer.
        let parsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_u64), Some(97));
    }

    #[test]
    fn pooled_engine_runs_a_fleet_against_the_reactor() {
        use crate::server::{Server, ServerConfig, ServerMode};
        use crate::session::RetryPolicy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use reconcile::AutoencoderTrainer;
        let mut rng = StdRng::seed_from_u64(7002);
        let reconciler = Arc::new(
            AutoencoderTrainer::default()
                .with_steps(6000)
                .train(&mut rng),
        );
        let params = SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        };
        let server = Server::start(
            ServerConfig {
                mode: ServerMode::Reactor,
                workers: 1,
                params,
                max_sessions: Some(12),
                ..ServerConfig::default()
            },
            reconciler.clone(),
        )
        .expect("reactor server starts");
        let report = run_fleet(
            &FleetConfig {
                addr: server.local_addr().to_string(),
                sessions: 12,
                concurrency: 1,
                pool: Some(6),
                params,
                ..FleetConfig::default()
            },
            &reconciler,
        )
        .expect("fleet runs");
        let stats = server.join();
        assert_eq!(report.sessions, 12);
        assert_eq!(report.concurrency, 6, "pooled runs report the pool depth");
        assert_eq!(report.ok, 12, "all pooled sessions match: {report:?}");
        assert!(report.latency.p999 >= report.latency.p99);
        assert!(report.max_rss_mb > 0.0);
        assert_eq!(stats.completed, 12, "{stats:?}");
    }
}
