//! `vkey` — command-line front end for the Vehicle-Key system.
//!
//! ```text
//! vkey train   --scenario V2V-Urban --out pipeline.bin [--fast]
//! vkey keygen  --pipeline pipeline.bin [--scenario V2V-Urban] [--sessions 3]
//! vkey export-trace --scenario V2I-Rural --rounds 200 --out trace.csv
//! vkey run-trace    --pipeline pipeline.bin --trace trace.csv
//! vkey nist    --pipeline pipeline.bin [--bits 4000]
//! vkey serve   --addr 127.0.0.1:7400 [--workers 4] [--max-sessions 100]
//!              [--admin 127.0.0.1:9100] [--flight-dir results]
//!              [--max-pending 64] [--per-ip 16]
//! vkey fleet   --addr 127.0.0.1:7400 --sessions 100 --concurrency 8
//! vkey fleet   --addr 127.0.0.1:7400 --adversary [--separations 0.1,0.35,2]
//!              [--flood 24] [--slowloris-bytes 48] [--lifecycle]
//! vkey trace-merge --inputs alice.jsonl,bob.jsonl --out trace.merged.json
//! vkey help
//! ```
//!
//! All subcommands accept `--seed <u64>` for reproducibility and
//! `--telemetry <path>` (or the `VK_TELEMETRY` environment variable — the
//! flag wins when both are set) to write a JSON-lines trace of every
//! pipeline stage; the value `-` streams human-readable events to stderr
//! instead.

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reconcile::{AutoencoderReconciler, AutoencoderTrainer};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::Json;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};
use vehicle_key::RecoveryPolicy;
use vk_server::{
    run_adversary, run_fleet, AdminServer, AdversaryConfig, ClientLifecycleCfg, FaultConfig,
    FleetConfig, LifecycleConfig, RekeyPolicy, RetryPolicy, Server, ServerConfig, ServerMode,
    SessionParams,
};

fn scenario_from(name: &str) -> Result<ScenarioKind, String> {
    match name {
        "V2I-Urban" => Ok(ScenarioKind::V2iUrban),
        "V2I-Rural" => Ok(ScenarioKind::V2iRural),
        "V2V-Urban" => Ok(ScenarioKind::V2vUrban),
        "V2V-Rural" => Ok(ScenarioKind::V2vRural),
        other => Err(format!(
            "unknown scenario '{other}' (expected V2I-Urban, V2I-Rural, V2V-Urban or V2V-Rural)"
        )),
    }
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            let Some(name) = raw[i].strip_prefix("--") else {
                return Err(format!("unexpected argument '{}'", raw[i]));
            };
            if matches!(
                name,
                "fast" | "no-recovery" | "json" | "self" | "lifecycle" | "group" | "adversary"
            ) {
                flags.insert(name.to_string(), "true".into());
                i += 1;
                continue;
            }
            let value = raw
                .get(i + 1)
                .ok_or_else(|| format!("--{name} requires a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e| format!("bad --{name}: {e}")),
        }
    }

    fn seed(&self) -> u64 {
        self.get("seed").and_then(|s| s.parse().ok()).unwrap_or(7)
    }

    fn scenario(&self, default: ScenarioKind) -> Result<ScenarioKind, String> {
        match self.get("scenario") {
            Some(s) => scenario_from(s),
            None => Ok(default),
        }
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let scenario = args.scenario(ScenarioKind::V2vUrban)?;
    let config = if args.get("fast").is_some() {
        PipelineConfig::fast()
    } else {
        PipelineConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed());
    eprintln!("training on simulated {scenario} drives (this takes a minute)...");
    let pipeline = KeyPipeline::train_for(scenario, &config, &mut rng);
    pipeline.save(out)?;
    eprintln!("saved pipeline to {out}");
    Ok(())
}

fn cmd_keygen(args: &Args) -> Result<(), String> {
    let pipeline = KeyPipeline::load(args.require("pipeline")?)?;
    let scenario = args.scenario(ScenarioKind::V2vUrban)?;
    let sessions: usize = args.parsed("sessions", 1)?;
    let mut rng = StdRng::seed_from_u64(args.seed());
    for s in 0..sessions {
        let outcome = pipeline.run_session(scenario, &mut rng);
        println!(
            "session {s}: agreement {:.2}% -> reconciled {:.2}%, {} key block(s), match rate {:.0}%",
            outcome.bit_agreement * 100.0,
            outcome.reconciled_agreement * 100.0,
            outcome.alice_keys.len(),
            outcome.key_match_rate * 100.0
        );
        for (a, b) in outcome.alice_keys.iter().zip(&outcome.bob_keys) {
            let hex: String = a.iter().map(|x| format!("{x:02x}")).collect();
            let status = if a == b { "MATCH" } else { "mismatch" };
            // vk-lint: allow(secret-hygiene, "keygen prints the derived key because the operator asked for exactly that")
            println!("  key {hex} [{status}]");
        }
    }
    Ok(())
}

fn cmd_export_trace(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let scenario = args.scenario(ScenarioKind::V2vUrban)?;
    let rounds: usize = args.parsed("rounds", 100)?;
    let mut rng = StdRng::seed_from_u64(args.seed());
    let cfg = PipelineConfig::default();
    let campaign = KeyPipeline::campaign(scenario, &cfg, rounds, cfg.speed_kmh, &mut rng);
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    testbed::write_csv(&campaign, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!("wrote {rounds} rounds to {out}");
    Ok(())
}

fn cmd_run_trace(args: &Args) -> Result<(), String> {
    let pipeline = KeyPipeline::load(args.require("pipeline")?)?;
    let trace = args.require("trace")?;
    let file = std::fs::File::open(trace).map_err(|e| e.to_string())?;
    let campaign = testbed::read_csv(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.seed());
    let outcome = pipeline.run_on_campaign(&campaign, &mut rng);
    println!(
        "trace {trace}: {} rounds, agreement {:.2}% -> reconciled {:.2}%, {} key block(s)",
        campaign.rounds.len(),
        outcome.bit_agreement * 100.0,
        outcome.reconciled_agreement * 100.0,
        outcome.alice_keys.len()
    );
    Ok(())
}

fn cmd_nist(args: &Args) -> Result<(), String> {
    let pipeline = KeyPipeline::load(args.require("pipeline")?)?;
    let target: usize = args.parsed("bits", 4000)?;
    let scenario = args.scenario(ScenarioKind::V2vUrban)?;
    let mut rng = StdRng::seed_from_u64(args.seed());
    let mut bits = Vec::new();
    eprintln!("generating {target}+ key bits ...");
    let cfg = *pipeline.config();
    while bits.len() < target {
        let campaign = KeyPipeline::campaign(
            scenario,
            &cfg,
            cfg.session_rounds * 4,
            cfg.speed_kmh,
            &mut rng,
        );
        let outcome = pipeline.run_on_campaign(&campaign, &mut rng);
        for key in &outcome.alice_keys {
            for byte in key {
                for b in (0..8).rev() {
                    bits.push((byte >> b) & 1 == 1);
                }
            }
        }
    }
    println!("NIST battery over {} bits:", bits.len());
    for r in nist::run_all(&bits) {
        println!(
            "  {:<26} p={:<10.6} {}",
            r.name,
            r.p_value,
            if r.passed() { "pass" } else { "FAIL" }
        );
    }
    Ok(())
}

/// Load a cached reconciler model, or train one and (if a path was given)
/// cache it. Both `serve` and `fleet` must use the same `--train-steps`
/// and `--model-seed` (or share a `--reconciler` file) so the two sides
/// hold the identical model.
fn reconciler_from(args: &Args) -> Result<AutoencoderReconciler, String> {
    let steps: usize = args.parsed("train-steps", 6000)?;
    let model_seed: u64 = args.parsed("model-seed", 7001)?;
    if let Some(path) = args.get("reconciler") {
        if std::path::Path::new(path).exists() {
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            return AutoencoderReconciler::from_bytes(&bytes)
                .map_err(|e| format!("bad reconciler file {path}: {e}"));
        }
        eprintln!("training reconciler ({steps} steps, seed {model_seed}) -> {path} ...");
        let mut rng = StdRng::seed_from_u64(model_seed);
        let model = AutoencoderTrainer::default()
            .with_steps(steps)
            .train(&mut rng);
        std::fs::write(path, model.to_bytes()).map_err(|e| format!("cannot write {path}: {e}"))?;
        return Ok(model);
    }
    eprintln!("training reconciler ({steps} steps, seed {model_seed}; use --reconciler <file> to cache) ...");
    let mut rng = StdRng::seed_from_u64(model_seed);
    Ok(AutoencoderTrainer::default()
        .with_steps(steps)
        .train(&mut rng))
}

fn session_params_from(args: &Args) -> Result<SessionParams, String> {
    let defaults = SessionParams::default();
    let recovery = if args.get("no-recovery").is_some() {
        RecoveryPolicy::disabled()
    } else {
        let base = defaults.recovery;
        RecoveryPolicy {
            decode_rounds: args.parsed("decode-rounds", base.decode_rounds)?,
            leakage_ceiling_bits: args.parsed("leakage-ceiling", base.leakage_ceiling_bits)?,
            max_reprobes: args.parsed("max-reprobes", base.max_reprobes)?,
            ..base
        }
    };
    Ok(SessionParams {
        key_bits: args.parsed("key-bits", defaults.key_bits)?,
        error_bits: args.parsed("error-bits", defaults.error_bits)?,
        retry: RetryPolicy {
            max_retries: args.parsed("max-retries", defaults.retry.max_retries)?,
            ack_timeout: Duration::from_millis(args.parsed(
                "ack-timeout-ms",
                defaults.retry.ack_timeout.as_millis() as u64,
            )?),
            backoff: defaults.retry.backoff,
        },
        session_timeout: Duration::from_secs(
            args.parsed("session-timeout-s", defaults.session_timeout.as_secs())?,
        ),
        handshake_timeout: Duration::from_millis(args.parsed(
            "handshake-timeout-ms",
            defaults.handshake_timeout.as_millis() as u64,
        )?),
        recovery,
    })
}

fn fault_from(args: &Args) -> Result<Option<FaultConfig>, String> {
    let fault = FaultConfig {
        drop: args.parsed("drop", 0.0)?,
        duplicate: args.parsed("dup", 0.0)?,
        corrupt: args.parsed("corrupt", 0.0)?,
        reorder: args.parsed("reorder", 0.0)?,
        seed: args.parsed("fault-seed", 1)?,
    };
    for (name, p) in [
        ("drop", fault.drop),
        ("dup", fault.duplicate),
        ("corrupt", fault.corrupt),
        ("reorder", fault.reorder),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{name} must be in [0, 1], got {p}"));
        }
    }
    Ok(if fault.is_noop() { None } else { Some(fault) })
}

/// Parse the lifecycle-plane flags shared by `serve` (full config) and
/// `fleet` (client behaviour). `--lifecycle` turns the plane on;
/// `--group` additionally runs platoon group keys over it.
fn lifecycle_from(args: &Args) -> Result<Option<LifecycleConfig>, String> {
    if args.get("lifecycle").is_none() && args.get("group").is_none() {
        return Ok(None);
    }
    let base = RekeyPolicy::default();
    Ok(Some(LifecycleConfig {
        rekey: RekeyPolicy {
            entropy_budget_bits: args.parsed("rekey-budget", base.entropy_budget_bits)?,
            frame_cost_bits: args.parsed("rekey-frame-cost", base.frame_cost_bits)?,
            reprobe_below_bits: args.parsed("rekey-min-entropy", base.reprobe_below_bits)?,
            ..base
        },
        group: args.get("group").is_some(),
        max_duration: Duration::from_secs(args.parsed("lifecycle-max-s", 30)?),
    }))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let flight = Arc::new(telemetry::FlightRecorder::default());
    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7400").to_string(),
        workers: args.parsed("workers", 4)?,
        mode: match args.get("mode") {
            None | Some("auto") => ServerMode::Auto,
            Some("blocking") => ServerMode::Blocking,
            Some("reactor") => ServerMode::Reactor,
            Some(other) => {
                return Err(format!(
                    "bad --mode: {other} (expected auto, blocking, or reactor)"
                ))
            }
        },
        params: session_params_from(args)?,
        fault: fault_from(args)?,
        max_sessions: match args.get("max-sessions") {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|e| format!("bad --max-sessions: {e}"))?,
            ),
        },
        nonce_seed: args.seed(),
        flight: Some(Arc::clone(&flight)),
        flight_dir: args.get("flight-dir").unwrap_or("results").to_string(),
        lifecycle: lifecycle_from(args)?,
        pending_cap: match args.get("max-pending") {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|e| format!("bad --max-pending: {e}"))?),
        },
        per_ip_cap: match args.get("per-ip") {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|e| format!("bad --per-ip: {e}"))?),
        },
        ..ServerConfig::default()
    };
    // Feed the flight recorder alongside whatever sink --telemetry
    // installed. With no trace sink, the recorder alone keeps the registry
    // enabled, so `/metrics` aggregation and post-mortems work even on an
    // untraced server.
    let sinks: Vec<Arc<dyn telemetry::Sink>> = match telemetry::uninstall() {
        Some(previous) => vec![previous, flight],
        None => vec![flight],
    };
    telemetry::install(Arc::new(telemetry::FanoutSink::new(sinks)));
    let reconciler = Arc::new(reconciler_from(args)?);
    let bounded = config.max_sessions;
    let lifecycle_on = config.lifecycle.is_some();
    let server = Server::start(config, reconciler).map_err(|e| format!("cannot start: {e}"))?;
    eprintln!("vk-server listening on {}", server.local_addr());
    let admin = match args.get("admin") {
        Some(addr) => {
            let admin = AdminServer::start(addr, server.stats_handle(), server.session_table())
                .map_err(|e| format!("cannot start admin endpoint on {addr}: {e}"))?;
            eprintln!(
                "vk-admin listening on http://{} (/healthz /metrics /sessions)",
                admin.local_addr()
            );
            Some(admin)
        }
        None => None,
    };
    match bounded {
        Some(n) => eprintln!("serving up to {n} session(s), then exiting"),
        None => eprintln!("serving until killed (pass --max-sessions for a bounded run)"),
    }
    let lifecycle_stats = server.lifecycle_stats();
    let stats = server.join();
    if let Some(admin) = admin {
        admin.shutdown();
    }
    telemetry::flush();
    if lifecycle_on {
        use std::sync::atomic::Ordering::Relaxed;
        eprintln!(
            "lifecycle: {} sessions, {} app frames, {} rekeys \
             ({} ratchet / {} reprobe; {} budget / {} leakage), \
             {} graceful leaves, {} evictions, {} errors",
            lifecycle_stats.sessions.load(Relaxed),
            lifecycle_stats.app_frames.load(Relaxed),
            lifecycle_stats.rekeys.load(Relaxed),
            lifecycle_stats.ratchets.load(Relaxed),
            lifecycle_stats.reprobes.load(Relaxed),
            lifecycle_stats.budget_rekeys.load(Relaxed),
            lifecycle_stats.leakage_rekeys.load(Relaxed),
            lifecycle_stats.graceful_leaves.load(Relaxed),
            lifecycle_stats.evictions.load(Relaxed),
            lifecycle_stats.errors.load(Relaxed),
        );
    }
    eprintln!(
        "vk-server done: {} accepted, {} matched, {} mismatched, {} failed \
         ({} duplicate frames answered, {} frames rejected)\n\
         escalation: {} cascade rounds, {} reprobes, {} blocks exhausted, \
         {} parity bits leaked",
        stats.accepted,
        stats.completed,
        stats.key_mismatches,
        stats.failed,
        stats.duplicate_frames,
        stats.rejected_frames,
        stats.cascade_rounds,
        stats.reprobes,
        stats.exhausted_blocks,
        stats.leaked_bits
    );
    Ok(())
}

/// `vkey fleet --adversary` — run the Eve/Mallory/DoS campaign against a
/// live server instead of the honest fleet. The passive arm records
/// honest sessions and replays Eve's correlated observations through the
/// full pipeline at every swept separation; the active and DoS arms then
/// attack the same server. Exits nonzero when part of the campaign could
/// not run (individual attack *outcomes* are data, not errors — gate on
/// the manifest).
fn cmd_adversary(args: &Args) -> Result<(), String> {
    let addr: std::net::SocketAddr = args
        .get("addr")
        .unwrap_or("127.0.0.1:7400")
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let mut cfg = AdversaryConfig::new(addr);
    cfg.sessions = args.parsed("sessions", cfg.sessions)?;
    cfg.params = session_params_from(args)?;
    cfg.nonce_seed = args.seed() ^ 0xE7E;
    cfg.lifecycle = args.get("lifecycle").is_some() || args.get("group").is_some();
    cfg.flood = args.parsed("flood", cfg.flood)?;
    cfg.slowloris_bytes = args.parsed("slowloris-bytes", cfg.slowloris_bytes)?;
    if let Some(raw) = args.get("separations") {
        cfg.separations_m = raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|e| format!("bad --separations: {e}"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(storm) = fault_from(args)? {
        cfg.storm = storm;
    }
    let reconciler = Arc::new(reconciler_from(args)?);
    let report = run_adversary(&cfg, &reconciler);
    println!("{}", report.render());
    let out = args.get("out").unwrap_or("adversary.manifest.json");
    std::fs::write(out, report.to_json().to_string() + "\n")
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {out}");
    if !report.errors.is_empty() {
        return Err(format!(
            "adversary campaign incomplete: {}",
            report.errors.join("; ")
        ));
    }
    Ok(())
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    if args.get("adversary").is_some() {
        return cmd_adversary(args);
    }
    let base = FleetConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7400").to_string(),
        sessions: args.parsed("sessions", 100)?,
        concurrency: args.parsed("concurrency", 8)?,
        pool: match args.get("pool") {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|e| format!("bad --pool: {e}"))?),
        },
        params: session_params_from(args)?,
        fault: fault_from(args)?,
        nonce_seed: args.seed() ^ 0xB0B,
        lifecycle: if args.get("lifecycle").is_some() || args.get("group").is_some() {
            Some(ClientLifecycleCfg {
                app_frames: args.parsed("app-frames", 8)?,
                hold: Duration::from_millis(args.parsed("hold-ms", 200)?),
                leave: true,
                group: args.get("group").is_some(),
            })
        } else {
            None
        },
        ..FleetConfig::default()
    };
    let out = args.get("out").unwrap_or("fleet.manifest.json");
    let min_match_rate: f64 = args.parsed("min-match-rate", 0.0)?;
    let reconciler = Arc::new(reconciler_from(args)?);

    let sweep: Vec<usize> = match args.get("sweep") {
        None => vec![base.concurrency],
        Some(raw) => raw
            .split(',')
            .map(|c| c.trim().parse().map_err(|e| format!("bad --sweep: {e}")))
            .collect::<Result<_, _>>()?,
    };

    let mut runs = Vec::new();
    for concurrency in sweep {
        let cfg = FleetConfig {
            concurrency,
            ..base.clone()
        };
        let report = run_fleet(&cfg, &reconciler).map_err(|e| e.to_string())?;
        println!("{}", report.render());
        runs.push(report);
    }

    let json = if runs.len() == 1 {
        runs[0].to_json()
    } else {
        Json::Obj(vec![
            ("kind".into(), Json::Str("fleet_sweep".into())),
            (
                "runs".into(),
                Json::Arr(runs.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    };
    std::fs::write(out, json.to_string() + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {out}");

    let worst = runs
        .iter()
        .map(|r| r.key_match_rate())
        .fold(f64::INFINITY, f64::min);
    if worst < min_match_rate {
        return Err(format!(
            "key-match rate {:.1}% below required {:.1}%",
            worst * 100.0,
            min_match_rate * 100.0
        ));
    }
    Ok(())
}

/// `vkey trace-merge` — merge JSON-lines telemetry traces (e.g. one from
/// `serve`, one from `fleet`) into a single Chrome trace-event document,
/// loadable at ui.perfetto.dev or chrome://tracing. Spans sharing a trace
/// id (the context `fleet` clients stamp on their frames) line up as one
/// causal trace across both processes.
fn cmd_trace_merge(args: &Args) -> Result<(), String> {
    let inputs = args.require("inputs")?;
    let out = args.get("out").unwrap_or("trace.merged.json");
    // Locals here deliberately avoid the names `hex`/`filter`: the
    // secret-hygiene taint engine is name-based and file-wide, and
    // `keygen` above legitimately taints `hex` as key material.
    let only = match args.get("trace") {
        None => None,
        Some(raw) => Some(telemetry::parse_trace_hex(raw).ok_or_else(|| {
            format!(
                "bad --trace '{raw}' (expected up to 32 hex digits, as exported in span fields)"
            )
        })?),
    };
    let mut files = Vec::new();
    for path in inputs.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        files.push(telemetry::parse_events_jsonl(&text));
    }
    if files.is_empty() {
        return Err("--inputs needs at least one JSON-lines trace file".into());
    }
    let events: usize = files.iter().map(Vec::len).sum();
    let doc = telemetry::chrome_trace(&files, only);
    std::fs::write(out, doc.to_string() + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "merged {events} event(s) from {} trace(s) into {out} (open at ui.perfetto.dev)",
        files.len()
    );
    Ok(())
}

/// `vkey lint` — the vk-lint engine behind the operator CLI. Same flags
/// and exit codes as the standalone `vk-lint` binary.
fn cmd_lint(args: &Args) -> ExitCode {
    let mut opts = vk_lint::LintOptions::default();
    if let Some(level) = args.get("deny") {
        let Some(floor) = vk_lint::report::parse_deny_floor(level) else {
            eprintln!("error: --deny needs allow|warn|deny");
            return ExitCode::from(2);
        };
        opts.deny_floor = Some(floor);
    }
    let root = PathBuf::from(args.get("root").unwrap_or("."));
    let started = Instant::now();
    let result = if args.get("self").is_some() {
        vk_lint::run_self(&root, &opts)
    } else {
        vk_lint::run(&root, &opts)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    if args.get("json").is_some() {
        print!("{}", vk_lint::report::render_json(&report, elapsed_ms));
    } else {
        print!("{}", vk_lint::report::render_human(&report));
    }
    ExitCode::from(vk_lint::report::exit_code(&report))
}

const USAGE: &str = "usage: vkey <train|keygen|export-trace|run-trace|nist|serve|fleet|trace-merge|lint|help> [--flags]";

fn print_help() {
    println!(
        "\
vkey — Vehicle-Key secret key establishment (ICDCS 2022 reproduction)

{USAGE}

Subcommands:
  train         Train the joint model + reconciler on simulated drives
                  --out <file>          pipeline output path (required)
                  --scenario <kind>     V2I-Urban | V2I-Rural | V2V-Urban | V2V-Rural
                  --fast                reduced training configuration
  keygen        Run key-establishment sessions with a trained pipeline
                  --pipeline <file>     trained pipeline (required)
                  --scenario <kind>     scenario to simulate
                  --sessions <n>        number of sessions (default 1)
  export-trace  Simulate a probing campaign and write it as CSV
                  --out <file>          CSV output path (required)
                  --scenario <kind>     scenario to simulate
                  --rounds <n>          probe rounds (default 100)
  run-trace     Run the pipeline over a recorded CSV campaign
                  --pipeline <file>     trained pipeline (required)
                  --trace <file>        CSV campaign (required)
  nist          Generate key bits and run the NIST randomness battery
                  --pipeline <file>     trained pipeline (required)
                  --bits <n>            minimum key bits to test (default 4000)
  serve         Run the concurrent key-establishment server (Alice side)
                  --addr <host:port>    bind address (default 127.0.0.1:7400)
                  --workers <n>         worker threads — blocking-mode session
                                        cap, reactor-mode shard count (default 4)
                  --mode <m>            serving core: auto (default; reactor
                                        unless --lifecycle is set), blocking
                                        (thread per session), or reactor
                                        (epoll/poll shards holding 10k+
                                        sessions on a few threads)
                  --max-sessions <n>    exit after n sessions (default: run forever)
                  --admin <host:port>   also serve the admin endpoint there:
                                        GET /healthz, /metrics (Prometheus
                                        text), /sessions (JSON session table)
                  --flight-dir <dir>    directory for flight-recorder
                                        post-mortems written when a session
                                        aborts (default results)
                  --max-pending <n>     refuse new connections while n are
                                        accepted but not yet served — the
                                        half-open-flood backpressure bound
                                        (default: unbounded)
                  --per-ip <n>          cap in-flight connections per client
                                        IP; loopback fleets must set this at
                                        least as high as their concurrency
                                        (default: unbounded)
                  --lifecycle           after key confirmation, keep each
                                        session in the authenticated
                                        lifecycle plane (app traffic and
                                        leakage-driven rekeying)
                  --group               also run platoon group keys over
                                        the plane (implies --lifecycle)
                  --rekey-budget <n>    entropy bits an epoch may spend on
                                        traffic before rotating (default 4096)
                  --rekey-frame-cost <n> bits debited per app frame (default 32)
                  --rekey-min-entropy <n> roots below this effective entropy
                                        re-probe instead of ratcheting
                                        (default 96)
                  --lifecycle-max-s <n> wall-clock bound per lifecycle phase
                                        (default 30)
  fleet         Run a concurrent client fleet against a server (Bob side)
                  --addr <host:port>    server address (default 127.0.0.1:7400)
                  --sessions <n>        total sessions (default 100)
                  --concurrency <n>     concurrent client threads (default 8)
                  --pool <n>            pooled engine: hold n concurrent
                                        sessions on one event-driven thread
                                        instead of n threads (the 10k-scale
                                        load path; ignored with --lifecycle)
                  --sweep <a,b,c>       run once per concurrency level
                  --out <file>          manifest path (default fleet.manifest.json)
                  --min-match-rate <p>  exit nonzero if the key-match rate
                                        falls below p (for CI gates)
                  --lifecycle           continue confirmed sessions into the
                                        lifecycle plane (server must run with
                                        --lifecycle too)
                  --group               participate in platoon group keys
                                        (implies --lifecycle)
                  --app-frames <n>      app frames per session (default 8)
                  --hold-ms <n>         linger after the last ack, receiving
                                        group rotations (default 200)
                  --adversary           run the adversary campaign instead of
                                        the honest fleet: record sessions,
                                        sweep Eve's separations, then attack
                                        (injection, replay, bit-flip storm,
                                        half-open flood, slowloris); writes
                                        adversary.manifest.json
                  --separations <a,b,..> Eve separations in metres to sweep
                                        (default: λ/32 .. 5 m at 434 MHz)
                  --flood <n>           half-open sockets to hold (0 skips
                                        the DoS arm; default 24)
                  --slowloris-bytes <n> byte budget trickled one-at-a-time
                                        (0 skips the probe; default 48)
                  --lifecycle           also forge lifecycle-plane frames
                                        (server must run with --lifecycle)
                  --corrupt etc. set the storm fault rates (default 0.25)
  trace-merge   Merge JSON-lines telemetry traces into one Chrome trace
                  --inputs <a,b,...>    trace files to merge (required)
                  --out <file>          output path (default trace.merged.json)
                  --trace <hex>         keep only events of this trace id
                open the result at ui.perfetto.dev (or chrome://tracing)
  lint          Run the domain-aware workspace linter (vk-lint)
                  --json                JSON-lines output instead of human
                  --deny <level>        promote findings at/above allow|warn|deny
                  --self                restrict the scan to crates/lint
                  --root <dir>          workspace to scan (default: walk up
                                        from the current directory)
                exits 0 clean, 1 on deny-level findings, 2 on config errors
  help          Show this message

Shared serve/fleet flags (both sides must agree on these):
  --key-bits <n>        raw key bits per session (default 128)
  --error-bits <n>      simulated channel disagreement bits (default 3;
                        the escalation ladder recovers what the one-shot
                        decode cannot)
  --no-recovery         disable the escalation ladder (pre-recovery wire
                        behaviour: a MAC failure is final)
  --decode-rounds <n>   extra local decode rounds, ladder rung 1 (default 2)
  --leakage-ceiling <n> max Cascade parity bits revealed per session before
                        the ladder skips to re-probing (default 48)
  --max-reprobes <n>    re-probe attempts per block, rung 3 (default 2)
  --reconciler <file>   cache file for the reconciler model: loaded when it
                        exists, trained and saved otherwise
  --train-steps <n>     reconciler training steps (default 6000)
  --model-seed <u64>    reconciler training seed (default 7001)
  --max-retries <n>     per-frame retransmission budget (default 8)
  --ack-timeout-ms <n>  first retransmission timeout (default 250)
  --drop / --dup / --corrupt / --reorder <p>
                        fault-injection probabilities in [0, 1] (default 0)
  --fault-seed <u64>    fault PRNG seed (default 1)

Global flags (every subcommand):
  --seed <u64>        RNG seed for reproducibility (default 7)
  --telemetry <path>  write a JSON-lines telemetry trace of every pipeline
                      stage to <path>; '-' streams human-readable events to
                      stderr. The VK_TELEMETRY environment variable is the
                      fallback when the flag is absent."
    );
}

/// Install the telemetry sink requested by `--telemetry` / `VK_TELEMETRY`.
/// Returns whether a sink was installed (so `main` knows to flush).
fn setup_telemetry(args: &Args) -> Result<bool, String> {
    let target = match args.get("telemetry").map(str::to_string) {
        Some(t) => Some(t),
        None => std::env::var("VK_TELEMETRY").ok().filter(|t| !t.is_empty()),
    };
    let Some(target) = target else {
        return Ok(false);
    };
    if target == "-" {
        telemetry::install(Arc::new(telemetry::StderrSink::new()));
    } else {
        let sink = telemetry::JsonLinesSink::create(&target)
            .map_err(|e| format!("cannot create telemetry trace '{target}': {e}"))?;
        telemetry::install(Arc::new(sink));
    }
    Ok(true)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let traced = match setup_telemetry(&args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        // `lint` owns its exit-code contract (0 clean / 1 deny findings /
        // 2 config error), so it bypasses the Ok/Err mapping below.
        "lint" => {
            let code = cmd_lint(&args);
            if traced {
                telemetry::uninstall();
            }
            return code;
        }
        "train" => cmd_train(&args),
        "keygen" => cmd_keygen(&args),
        "export-trace" => cmd_export_trace(&args),
        "run-trace" => cmd_run_trace(&args),
        "nist" => cmd_nist(&args),
        "serve" => cmd_serve(&args),
        "fleet" => cmd_fleet(&args),
        "trace-merge" => cmd_trace_merge(&args),
        other => {
            eprintln!("error: unknown command '{other}'");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if traced {
        telemetry::uninstall();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
