//! `vk-adversary` — Eve and Mallory as first-class workloads against the
//! live wire.
//!
//! The rest of this crate proves the protocol works for honest peers; this
//! module proves what it costs a hostile one. Three arms, mirroring the
//! paper's threat model (Sec. VII) and DESIGN §16:
//!
//! * **Passive Eve** — an eavesdropper parked `d` metres from Bob. She
//!   records every public frame of a real TCP session (probes, syndromes,
//!   Cascade parities, re-probe replies) via [`RecordingTransport`], and
//!   her channel observation is the legitimate measurement corrupted at
//!   the `J₀(2πd/λ)` spatial-correlation law
//!   ([`channel::sign_agreement_probability`]). She then runs the *same*
//!   quantize → reconcile → amplify pipeline as Bob, with the captured
//!   syndrome codes and the MAC as a correctness oracle. The score is her
//!   key-bit agreement with the confirmed session key.
//! * **Active Mallory** — a client speaking the real framing but
//!   hostile: probe-step injection, full-session replay, bit-flip storms
//!   through [`FaultyTransport`], and forged/replayed lifecycle control
//!   frames against the PR 7 MACs. Every attack must end in a typed abort
//!   on the server (never a panic, never a key accepted).
//! * **DoS** — half-open connection floods ([`HalfOpenFlood`]) and
//!   slowloris framing ([`slowloris`]) against the accept loop, exercising
//!   the handshake deadline and the [`ServerConfig`](crate::server::ServerConfig)
//!   `pending_cap`/`per_ip_cap` backpressure while honest clients keep
//!   confirming keys.
//!
//! One deliberate modelling caveat: the testbed derives Bob's "channel
//! measurement" pseudorandomly from the public session identity
//! ([`derive_session_keys`]), so a literal attacker could recompute it.
//! That derivation stands in for physics, not secrecy — Eve's modelled
//! capability is the *correlated observation* (truth bits flipped at the
//! spatial-decorrelation rate), never the derivation itself. DESIGN §16
//! spells this out.

use crate::fault::{FaultConfig, FaultStats, FaultyTransport};
use crate::framing::{encode_frame, TcpTransport};
use crate::session::{run_bob_session_keyed, BobOutcome, SessionParams};
use crate::sim::{derive_block_keys, derive_session_keys, SplitMix64};
use channel::sign_agreement_probability;
use quantize::BitString;
use reconcile::AutoencoderReconciler;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::Json;
use vehicle_key::{Message, Session, Transport, TransportError};
use vk_crypto::amplify::amplify_with_leakage;
use vk_lifecycle::LifecycleMessage;

/// Transport decorator that records every frame crossing it, in both
/// directions — Eve's wiretap. The inner transport still does the real
/// I/O; the recording is what [`SessionCapture::from_recording`] parses.
pub struct RecordingTransport<T> {
    inner: T,
    sent: Vec<Vec<u8>>,
    received: Vec<Vec<u8>>,
}

impl<T> RecordingTransport<T> {
    /// Wrap a transport with an (initially empty) tap.
    pub fn new(inner: T) -> Self {
        RecordingTransport {
            inner,
            sent: Vec::new(),
            received: Vec::new(),
        }
    }

    /// Frames sent through this transport, oldest first.
    pub fn sent(&self) -> &[Vec<u8>] {
        &self.sent
    }

    /// Frames received through this transport, oldest first.
    pub fn received(&self) -> &[Vec<u8>] {
        &self.received
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.sent.push(frame.to_vec());
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let got = self.inner.recv()?;
        if let Some(frame) = &got {
            self.received.push(frame.clone());
        }
        Ok(got)
    }
}

/// The final reconciliation payload Eve saw for one key block: the last
/// syndrome (or re-probe reply) code and MAC that the server acknowledged
/// retransmissions of.
#[derive(Debug, Clone)]
pub struct BlockCapture {
    /// Key-block index.
    pub block: u32,
    /// `None` when the block settled on its initial syndrome; `Some(n)`
    /// when the escalation ladder re-probed and attempt `n` was final.
    pub attempt: Option<u32>,
    /// Fixed-point encoder output from the wire.
    pub code: Vec<i16>,
    /// The MAC Bob attached — Eve's correctness oracle.
    pub mac: [u8; 32],
}

/// Everything an eavesdropper learns from one session's public traffic,
/// parsed out of a [`RecordingTransport`] tap.
#[derive(Debug, Clone)]
pub struct SessionCapture {
    /// Session id the server assigned (from the probe reply).
    pub session_id: u32,
    /// Server handshake nonce (public, from the probe reply).
    pub nonce_a: u64,
    /// Client handshake nonce (public, from the probe).
    pub nonce_b: u64,
    /// Final per-block reconciliation payloads, in block order.
    pub blocks: Vec<BlockCapture>,
    /// Cascade parity bits the client revealed — public leakage Eve also
    /// debits from her amplification input, exactly like the endpoints.
    pub leaked_bits: usize,
    /// Effective entropy of the final key after the leakage debit.
    pub entropy_bits: usize,
    /// Whether the endpoints confirmed matching keys.
    pub key_matched: bool,
    /// Every raw client→server frame, in order — replay ammunition for
    /// the active arm.
    pub client_frames: Vec<Vec<u8>>,
}

impl SessionCapture {
    /// Parse a capture from a recorded honest run. Returns `None` when
    /// the recording is not a complete session (no probe, no probe
    /// reply, or no syndromes).
    pub fn from_recording(
        sent: &[Vec<u8>],
        received: &[Vec<u8>],
        outcome: &BobOutcome,
    ) -> Option<SessionCapture> {
        let nonce_b = sent.iter().find_map(|f| match Message::decode(f) {
            Ok(Message::Probe { nonce, .. }) => Some(nonce),
            _ => None,
        })?;
        let (session_id, nonce_a) = received.iter().find_map(|f| match Message::decode(f) {
            Ok(Message::ProbeReply {
                session_id, nonce, ..
            }) => Some((session_id, nonce)),
            _ => None,
        })?;
        // Later payloads for a block supersede earlier ones: a re-probe
        // reply replaces the failed syndrome it recovers from.
        let mut blocks: BTreeMap<u32, BlockCapture> = BTreeMap::new();
        for frame in sent {
            match Message::decode(frame) {
                Ok(Message::Syndrome {
                    block, code, mac, ..
                }) => {
                    blocks.insert(
                        block,
                        BlockCapture {
                            block,
                            attempt: None,
                            code,
                            mac,
                        },
                    );
                }
                Ok(Message::ReprobeReply {
                    block,
                    attempt,
                    code,
                    mac,
                    ..
                }) => {
                    blocks.insert(
                        block,
                        BlockCapture {
                            block,
                            attempt: Some(attempt),
                            code,
                            mac,
                        },
                    );
                }
                _ => {}
            }
        }
        if blocks.is_empty() {
            return None;
        }
        Some(SessionCapture {
            session_id,
            nonce_a,
            nonce_b,
            blocks: blocks.into_values().collect(),
            leaked_bits: outcome.leaked_bits,
            entropy_bits: outcome.entropy_bits,
            key_matched: outcome.key_matched,
            client_frames: sent.to_vec(),
        })
    }
}

/// Connect to `addr` and wrap the stream for the session layer.
fn connect(
    addr: SocketAddr,
    poll: Duration,
    connect_timeout: Duration,
) -> Result<TcpTransport, String> {
    let stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    TcpTransport::new(stream, poll).map_err(|e| format!("transport setup: {e}"))
}

/// Run one honest client session with a wiretap attached and parse what
/// Eve saw. Returns the capture and the confirmed key (when the server's
/// confirmation matched).
///
/// # Errors
///
/// A rendered message when the connection or the session itself fails.
pub fn run_recorded_session(
    addr: SocketAddr,
    reconciler: &Arc<AutoencoderReconciler>,
    nonce_b: u64,
    params: &SessionParams,
    poll: Duration,
    connect_timeout: Duration,
) -> Result<(SessionCapture, Option<[u8; 16]>), String> {
    let mut tap = RecordingTransport::new(connect(addr, poll, connect_timeout)?);
    let (outcome, confirmed) = run_bob_session_keyed(&mut tap, reconciler, nonce_b, params)
        .map_err(|e| format!("session: {e}"))?;
    let capture = SessionCapture::from_recording(tap.sent(), tap.received(), &outcome)
        .ok_or_else(|| "recording did not contain a complete session".to_string())?;
    Ok((capture, confirmed))
}

/// One eavesdropping attempt against one captured session.
#[derive(Debug, Clone, Copy)]
pub struct EveObservation {
    /// Fraction of raw measurement bits Eve observed correctly.
    pub raw_agreement: f64,
    /// Blocks where the captured MAC verified Eve's reconciled bits —
    /// blocks she *knows* she recovered.
    pub oracle_blocks: u32,
    /// Blocks in the capture.
    pub blocks: u32,
    /// Agreement between Eve's final key bits and the confirmed session
    /// key, over the session's effective entropy.
    pub key_bit_agreement: f64,
    /// Whether Eve's final key equals the session key outright.
    pub key_recovered: bool,
}

/// Run Eve's full pipeline against one captured session.
///
/// Her observation is the legitimate measurement with every bit flipped
/// independently at `1 − sign_agreement_probability(rho)` — the
/// spatial-decorrelation law for a tap whose fading correlates with the
/// legitimate link at `rho`. She decodes each captured syndrome against
/// her own bits, uses the captured MAC as a correctness oracle, debits
/// the public Cascade leakage, and amplifies exactly as Bob does.
///
/// Returns `None` when the capture is unusable (block length mismatch or
/// amplification refusing the entropy budget) — callers count that as a
/// failed attack, not an error.
pub fn eve_observe(
    capture: &SessionCapture,
    session_key: &[u8; 16],
    reconciler: &Arc<AutoencoderReconciler>,
    rho: f64,
    params: &SessionParams,
    seed: u64,
) -> Option<EveObservation> {
    let flip_p = 1.0 - sign_agreement_probability(rho);
    let seg = reconciler.key_len();
    let error_rate = params.error_bits as f64 / params.key_bits.max(1) as f64;
    // The measurement Bob actually keyed each block with: the initial
    // session derivation, or the re-probe attempt the ladder settled on.
    // (Public-derivation caveat: see the module docs — Eve gets the
    // *truth* here only to corrupt it at her channel's rate.)
    let (_alice_bits, k_bob) = derive_session_keys(
        capture.session_id,
        capture.nonce_a,
        capture.nonce_b,
        params.key_bits,
        params.error_bits,
    );
    let session = Session::new(
        capture.session_id,
        reconciler.clone(),
        capture.nonce_a,
        capture.nonce_b,
    );
    let mut rng = SplitMix64::new(seed ^ u64::from(capture.session_id).rotate_left(24));
    let mut reconciled = BitString::new();
    let mut observed = 0usize;
    let mut agreed = 0usize;
    let mut oracle_blocks = 0u32;
    for bc in &capture.blocks {
        let truth = match bc.attempt {
            None => k_bob.slice(bc.block as usize * seg, seg),
            Some(attempt) => {
                derive_block_keys(
                    capture.session_id,
                    capture.nonce_a,
                    capture.nonce_b,
                    bc.block,
                    attempt,
                    seg,
                    error_rate,
                )
                .1
            }
        };
        let mut eve_bits = BitString::new();
        for i in 0..truth.len() {
            let flip = rng.next_f64() < flip_p;
            let bit = truth.get(i) != flip;
            eve_bits.push(bit);
            observed += 1;
            if bit == truth.get(i) {
                agreed += 1;
            }
        }
        let corrected = session.decode_once(&bc.code, &eve_bits).ok()?;
        if session.code_mac_ok(&bc.code, &bc.mac, &corrected) {
            oracle_blocks += 1;
        }
        reconciled.extend(&corrected);
    }
    let (eve_key, _effective_bits) =
        amplify_with_leakage(&reconciled.to_bools(), capture.leaked_bits)?;
    let key_bit_agreement = bit_agreement(&eve_key, session_key, capture.entropy_bits);
    Some(EveObservation {
        raw_agreement: agreed as f64 / observed.max(1) as f64,
        oracle_blocks,
        blocks: u32::try_from(capture.blocks.len()).unwrap_or(u32::MAX),
        key_bit_agreement,
        key_recovered: eve_key == *session_key,
    })
}

/// Fraction of the first `bits` key bits (MSB first, clamped to 128) on
/// which two keys agree.
fn bit_agreement(a: &[u8; 16], b: &[u8; 16], bits: usize) -> f64 {
    let n = bits.clamp(1, 128);
    let mut same = 0usize;
    for i in 0..n {
        let bit_a = (a[i / 8] >> (7 - i % 8)) & 1;
        let bit_b = (b[i / 8] >> (7 - i % 8)) & 1;
        if bit_a == bit_b {
            same += 1;
        }
    }
    same as f64 / n as f64
}

/// Aggregated eavesdropping results at one separation.
#[derive(Debug, Clone, Copy)]
pub struct EveArm {
    /// Eve's distance from Bob in metres.
    pub separation_m: f64,
    /// Spatial correlation of her tap (`J₀(2πd/λ)`, clamped to `[0, 1]`).
    pub rho: f64,
    /// The closed-form per-bit agreement her correlation predicts.
    pub predicted_agreement: f64,
    /// Captured sessions she attacked.
    pub sessions: usize,
    /// Mean measured raw-bit agreement across sessions.
    pub mean_raw_agreement: f64,
    /// Mean final key-bit agreement across sessions.
    pub mean_key_bit_agreement: f64,
    /// Worst case (for us): her best single-session key-bit agreement.
    pub max_key_bit_agreement: f64,
    /// Sessions whose key she recovered outright.
    pub recovered_key_count: usize,
    /// Fraction of blocks across all sessions where the MAC oracle
    /// confirmed her reconciliation.
    pub oracle_block_rate: f64,
}

impl EveArm {
    /// Render as a JSON object for the bench manifest.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("separation_m".into(), Json::Num(self.separation_m)),
            ("rho".into(), Json::Num(self.rho)),
            (
                "predicted_agreement".into(),
                Json::Num(self.predicted_agreement),
            ),
            ("sessions".into(), Json::UInt(self.sessions as u64)),
            (
                "mean_raw_agreement".into(),
                Json::Num(self.mean_raw_agreement),
            ),
            (
                "mean_key_bit_agreement".into(),
                Json::Num(self.mean_key_bit_agreement),
            ),
            (
                "max_key_bit_agreement".into(),
                Json::Num(self.max_key_bit_agreement),
            ),
            (
                "recovered_key_count".into(),
                Json::UInt(self.recovered_key_count as u64),
            ),
            (
                "oracle_block_rate".into(),
                Json::Num(self.oracle_block_rate),
            ),
        ])
    }
}

/// Attack every capture at one correlation level and aggregate.
pub fn eve_sweep_point(
    captures: &[(SessionCapture, [u8; 16])],
    reconciler: &Arc<AutoencoderReconciler>,
    separation_m: f64,
    rho: f64,
    params: &SessionParams,
    seed: u64,
) -> EveArm {
    let mut raw = 0.0;
    let mut key = 0.0;
    let mut max_key = 0.0f64;
    let mut recovered = 0usize;
    let mut oracle = 0u64;
    let mut blocks = 0u64;
    let mut attacked = 0usize;
    for (index, (capture, confirmed)) in captures.iter().enumerate() {
        let Some(obs) = eve_observe(
            capture,
            confirmed,
            reconciler,
            rho,
            params,
            seed ^ (index as u64).rotate_left(40),
        ) else {
            continue;
        };
        attacked += 1;
        raw += obs.raw_agreement;
        key += obs.key_bit_agreement;
        max_key = max_key.max(obs.key_bit_agreement);
        recovered += usize::from(obs.key_recovered);
        oracle += u64::from(obs.oracle_blocks);
        blocks += u64::from(obs.blocks);
    }
    let n = attacked.max(1) as f64;
    EveArm {
        separation_m,
        rho,
        predicted_agreement: sign_agreement_probability(rho),
        sessions: attacked,
        mean_raw_agreement: raw / n,
        mean_key_bit_agreement: key / n,
        max_key_bit_agreement: max_key,
        recovered_key_count: recovered,
        oracle_block_rate: oracle as f64 / blocks.max(1) as f64,
    }
}

/// Client-side view of one active attack: what Mallory sent and what the
/// server conceded. The server-side verdict (typed abort, flight dump)
/// is asserted from server stats by the caller.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Attack label (matches the server's `attack_kind` classification).
    pub kind: &'static str,
    /// Frames Mallory pushed.
    pub frames_sent: u64,
    /// Frames the server answered with, of any kind.
    pub replies: u64,
    /// Protocol-level acceptances (acks, confirms, lifecycle acks) —
    /// must be zero for every forgery.
    pub accepted: u64,
    /// Whether the server closed the connection on us.
    pub connection_closed: bool,
}

impl AttackOutcome {
    /// Render as a JSON object for the bench manifest.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.into())),
            ("frames_sent".into(), Json::UInt(self.frames_sent)),
            ("replies".into(), Json::UInt(self.replies)),
            ("accepted".into(), Json::UInt(self.accepted)),
            (
                "connection_closed".into(),
                Json::Bool(self.connection_closed),
            ),
        ])
    }
}

/// How long Mallory lingers draining replies after an attack before
/// concluding the server went silent rather than closing.
const DRAIN_WINDOW: Duration = Duration::from_secs(3);

/// Whether a reply frame is a protocol-level acceptance: an ack or
/// confirmation on the key plane, an ack/confirm on the lifecycle plane.
fn is_acceptance(frame: &[u8]) -> bool {
    match Message::decode(frame) {
        Ok(Message::Ack { .. } | Message::Confirm { .. }) => return true,
        Ok(_) => return false,
        Err(_) => {}
    }
    matches!(
        LifecycleMessage::decode(frame),
        Ok(LifecycleMessage::AppAck { .. }
            | LifecycleMessage::RekeyConfirm { .. }
            | LifecycleMessage::LeaveAck { .. }
            | LifecycleMessage::GroupKeyAck { .. })
    )
}

/// Drain replies until the server closes the connection or the window
/// expires. Returns (replies, acceptances, closed).
fn drain<T: Transport>(transport: &mut T, window: Duration) -> (u64, u64, bool) {
    let deadline = Instant::now() + window;
    let mut replies = 0u64;
    let mut accepted = 0u64;
    while Instant::now() < deadline {
        match transport.recv() {
            Ok(Some(frame)) => {
                replies += 1;
                accepted += u64::from(is_acceptance(&frame));
            }
            Ok(None) => {}
            Err(_) => return (replies, accepted, true),
        }
    }
    (replies, accepted, false)
}

/// Inject raw frames into an open transport, interleaving reply drains,
/// then drain to the close. Shared spine of the injection attacks.
fn inject_frames<T: Transport>(
    transport: &mut T,
    kind: &'static str,
    frames: &[Vec<u8>],
) -> AttackOutcome {
    let mut sent = 0u64;
    let mut replies = 0u64;
    let mut accepted = 0u64;
    let mut closed = false;
    for frame in frames {
        if transport.send(frame).is_err() {
            closed = true;
            break;
        }
        sent += 1;
        // Keep the receive path drained so the server never blocks on a
        // full socket buffer while rejecting us.
        loop {
            match transport.recv() {
                Ok(Some(reply)) => {
                    replies += 1;
                    accepted += u64::from(is_acceptance(&reply));
                }
                Ok(None) => break,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        if closed {
            break;
        }
    }
    if !closed {
        let (r, a, c) = drain(transport, DRAIN_WINDOW);
        replies += r;
        accepted += a;
        closed = c;
    }
    AttackOutcome {
        kind,
        frames_sent: sent,
        replies,
        accepted,
        connection_closed: closed,
    }
}

/// **Probe injection**: open a fresh connection and lead with a
/// well-formed syndrome instead of a probe. The server must refuse the
/// handshake outright (`Malformed("expected probe")` — classified
/// `probe_injection`) rather than guessing at session state.
///
/// # Errors
///
/// A rendered message when the connection cannot be opened.
pub fn attack_probe_injection(
    addr: SocketAddr,
    reconciler: &Arc<AutoencoderReconciler>,
    poll: Duration,
    connect_timeout: Duration,
) -> Result<AttackOutcome, String> {
    let mut transport = connect(addr, poll, connect_timeout)?;
    let frame = Message::Syndrome {
        session_id: 1,
        block: 0,
        code: vec![0i16; reconciler.code_dim()],
        mac: [0u8; 32],
    }
    .encode()
    .to_vec();
    Ok(inject_frames(&mut transport, "probe_injection", &[frame]))
}

/// **Session replay**: resend a captured session's client frames into a
/// fresh connection. The server answers the replayed probe with a fresh
/// nonce, so every replayed syndrome MAC fails against the new session
/// keys; repeating each reconciliation frame `repeats` times burns
/// through the rejection budget into a typed abort (`frame_tamper`).
/// Nothing may be acked or confirmed.
///
/// # Errors
///
/// A rendered message when the connection cannot be opened.
pub fn attack_session_replay(
    addr: SocketAddr,
    capture: &SessionCapture,
    repeats: usize,
    poll: Duration,
    connect_timeout: Duration,
) -> Result<AttackOutcome, String> {
    let mut transport = connect(addr, poll, connect_timeout)?;
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for frame in &capture.client_frames {
        let hammer = matches!(
            Message::decode(frame),
            Ok(Message::Syndrome { .. }
                | Message::ReprobeReply { .. }
                | Message::CascadeParityReply { .. }
                | Message::Confirm { .. })
        );
        for _ in 0..if hammer { repeats.max(1) } else { 1 } {
            frames.push(frame.clone());
        }
    }
    Ok(inject_frames(&mut transport, "frame_tamper", &frames))
}

/// Verdict of one bit-flip storm session.
#[derive(Debug, Clone)]
pub enum StormVerdict {
    /// The session survived the storm end to end (retransmissions and the
    /// escalation ladder absorbed the corruption).
    Completed {
        /// Whether the confirmation matched — a completed-but-mismatched
        /// session is *detected* divergence, never a silently wrong key.
        key_matched: bool,
    },
    /// The session died in a typed error — the acceptable failure mode.
    TypedError(String),
}

/// Client-side report of one storm session.
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// How the session ended.
    pub verdict: StormVerdict,
    /// Faults the storm transport actually injected.
    pub faults: FaultStats,
}

/// **Bit-flip storm**: run an otherwise honest session through a
/// [`FaultyTransport`] that corrupts outgoing frames at the configured
/// rate (pair it with a server-side [`FaultConfig`] for a bidirectional
/// storm). The invariant under test: the session either completes with
/// the corruption absorbed, or dies in a typed error — panics and
/// silently divergent keys are both failures.
///
/// # Errors
///
/// A rendered message when the connection cannot be opened (the storm
/// itself never errors — transport/protocol deaths are the verdict).
pub fn attack_bitflip_storm(
    addr: SocketAddr,
    reconciler: &Arc<AutoencoderReconciler>,
    nonce_b: u64,
    fault: FaultConfig,
    params: &SessionParams,
    poll: Duration,
    connect_timeout: Duration,
) -> Result<StormOutcome, String> {
    let mut transport = FaultyTransport::new(connect(addr, poll, connect_timeout)?, fault);
    let verdict = match run_bob_session_keyed(&mut transport, reconciler, nonce_b, params) {
        Ok((outcome, _)) => StormVerdict::Completed {
            key_matched: outcome.key_matched,
        },
        Err(e) => StormVerdict::TypedError(e.to_string()),
    };
    Ok(StormOutcome {
        verdict,
        faults: transport.stats(),
    })
}

/// Forge `count` lifecycle `AppData` frames with garbage MACs for an
/// established session — ammunition for [`attack_lifecycle_inject`].
pub fn forged_app_frames(session_id: u32, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|seq| {
            LifecycleMessage::AppData {
                session_id,
                epoch: 1,
                seq: seq as u64,
                ciphertext: vec![0x5A; 24],
                mac: [0u8; 32],
            }
            .encode()
            .to_vec()
        })
        .collect()
}

/// **Lifecycle forgery / replay**: establish an honest keyed session
/// (the server hands off into its lifecycle plane), then feed it hostile
/// control frames — forged MACs from [`forged_app_frames`], or frames
/// replayed from another session via `frame_source`. Past the lifecycle
/// rejection budget the server aborts typed (`lifecycle_forgery`) and
/// drops the connection; nothing may be acked.
///
/// # Errors
///
/// A rendered message when the connection fails or the honest session
/// that should anchor the attack does not confirm a key.
pub fn attack_lifecycle_inject(
    addr: SocketAddr,
    reconciler: &Arc<AutoencoderReconciler>,
    nonce_b: u64,
    params: &SessionParams,
    poll: Duration,
    connect_timeout: Duration,
    frame_source: impl FnOnce(u32) -> Vec<Vec<u8>>,
) -> Result<AttackOutcome, String> {
    let mut transport = connect(addr, poll, connect_timeout)?;
    let (outcome, confirmed) = run_bob_session_keyed(&mut transport, reconciler, nonce_b, params)
        .map_err(|e| format!("anchor session: {e}"))?;
    if confirmed.is_none() {
        return Err("anchor session did not confirm a key".into());
    }
    let frames = frame_source(outcome.session_id);
    Ok(inject_frames(&mut transport, "lifecycle_forgery", &frames))
}

/// A held half-open connection flood: sockets opened and then left
/// silent, pinning whatever the server lets them pin.
pub struct HalfOpenFlood {
    streams: Vec<TcpStream>,
    attempted: usize,
}

impl HalfOpenFlood {
    /// Open up to `n` connections to `addr` and hold them without
    /// sending a byte. Connection refusals (backpressure) are counted,
    /// not errors.
    pub fn open(addr: SocketAddr, n: usize, connect_timeout: Duration) -> HalfOpenFlood {
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            if let Ok(stream) = TcpStream::connect_timeout(&addr, connect_timeout) {
                streams.push(stream);
            }
        }
        HalfOpenFlood {
            streams,
            attempted: n,
        }
    }

    /// Connections attempted.
    pub fn attempted(&self) -> usize {
        self.attempted
    }

    /// Connections currently held open from our side.
    pub fn held(&self) -> usize {
        self.streams.len()
    }

    /// How many held sockets the server has already closed (handshake
    /// deadline or backpressure refusal) — a non-blocking probe.
    pub fn closed_by_server(&mut self) -> usize {
        let mut closed = 0usize;
        let mut buf = [0u8; 16];
        for stream in &mut self.streams {
            if stream
                .set_read_timeout(Some(Duration::from_millis(1)))
                .is_err()
            {
                closed += 1;
                continue;
            }
            match stream.read(&mut buf) {
                Ok(0) => closed += 1,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => closed += 1,
            }
        }
        closed
    }

    /// Drop every held socket.
    pub fn release(self) {
        drop(self.streams);
    }
}

/// Outcome of one slowloris probe.
#[derive(Debug, Clone, Copy)]
pub struct SlowlorisOutcome {
    /// Bytes trickled before the server gave up on us (or we hit the
    /// byte budget).
    pub bytes_sent: usize,
    /// Whether the server evicted us (closed/reset the connection).
    pub evicted: bool,
    /// Wall time from connect to eviction or budget exhaustion.
    pub elapsed: Duration,
}

/// **Slowloris**: advertise a frame with the 4-byte length prefix, then
/// trickle its payload one byte per `trickle` interval, never completing
/// it. The incremental frame decoder keeps returning "no frame yet", so
/// only the handshake deadline can evict us — this proves it does.
///
/// # Errors
///
/// A rendered message when the connection cannot be opened.
pub fn slowloris(
    addr: SocketAddr,
    connect_timeout: Duration,
    trickle: Duration,
    max_bytes: usize,
) -> Result<SlowlorisOutcome, String> {
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("nodelay: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let start = Instant::now();
    // Advertise a 64-byte frame we will never finish.
    let header = 64u32.to_be_bytes();
    if let Err(e) = stream.write_all(&header) {
        return Ok(SlowlorisOutcome {
            bytes_sent: 0,
            evicted: is_disconnect(&e),
            elapsed: start.elapsed(),
        });
    }
    let mut sent = header.len();
    let mut evicted = false;
    let mut buf = [0u8; 16];
    while sent < max_bytes {
        std::thread::sleep(trickle);
        match stream.read(&mut buf) {
            Ok(0) => {
                evicted = true;
                break;
            }
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {
                evicted = true;
                break;
            }
        }
        match stream.write_all(&[0x00]) {
            Ok(()) => sent += 1,
            Err(_) => {
                evicted = true;
                break;
            }
        }
    }
    Ok(SlowlorisOutcome {
        bytes_sent: sent,
        evicted,
        elapsed: start.elapsed(),
    })
}

fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
    )
}

/// Configuration for one [`run_adversary`] campaign against a live
/// server.
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Honest recorded sessions to run (Eve's capture corpus and the
    /// key-uniqueness sample).
    pub sessions: usize,
    /// Eve separations to sweep, in metres.
    pub separations_m: Vec<f64>,
    /// Session parameters (must match the server's).
    pub params: SessionParams,
    /// Socket read poll window.
    pub poll: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Seed for client nonces and Eve's bit-flip draws.
    pub nonce_seed: u64,
    /// Run the active (Mallory) arm.
    pub active: bool,
    /// Anchor lifecycle attacks (requires a lifecycle-enabled server).
    pub lifecycle: bool,
    /// Storm fault rates for the bit-flip arm (noop skips the storm).
    pub storm: FaultConfig,
    /// Half-open sockets to flood with (0 disables the DoS arm).
    pub flood: usize,
    /// Byte budget for the slowloris probe (0 disables it).
    pub slowloris_bytes: usize,
}

impl AdversaryConfig {
    /// Defaults for a campaign against `addr`: 25 recorded sessions, the
    /// λ-anchored separation sweep, every arm enabled except lifecycle.
    pub fn new(addr: SocketAddr) -> AdversaryConfig {
        AdversaryConfig {
            addr,
            sessions: 25,
            separations_m: default_separations(),
            params: SessionParams::default(),
            poll: Duration::from_millis(25),
            connect_timeout: Duration::from_secs(5),
            nonce_seed: 0xE7E5_EED,
            active: true,
            lifecycle: false,
            storm: FaultConfig {
                corrupt: 0.25,
                seed: 0xBAD_B175,
                ..FaultConfig::default()
            },
            flood: 24,
            slowloris_bytes: 48,
        }
    }
}

/// The sweep the paper's λ/2 security argument hangs on: separations
/// from λ/32 (Eve on the bumper) through λ/2 ≈ 0.35 m (the paper's
/// threshold) to metres away, at 434 MHz.
pub fn default_separations() -> Vec<f64> {
    let lambda = 2.997_924_58e8 / 434.0e6;
    vec![
        lambda / 32.0,
        lambda / 8.0,
        lambda / 4.0,
        lambda / 2.0,
        lambda,
        2.0,
        5.0,
    ]
}

/// Spatial correlation at `separation_m`, via the same clamped
/// `J₀(2πd/λ)` law [`channel::ChannelModel::spatial_correlation`] uses
/// at the 434 MHz default carrier.
pub fn correlation_at(separation_m: f64) -> f64 {
    let lambda = 2.997_924_58e8 / 434.0e6;
    channel::bessel_j0(std::f64::consts::TAU * separation_m / lambda).clamp(0.0, 1.0)
}

/// What a full campaign produced, across all three arms.
#[derive(Debug, Clone)]
pub struct AdversaryReport {
    /// Honest recorded sessions attempted.
    pub sessions: usize,
    /// Honest sessions that confirmed a matching key.
    pub honest_ok: usize,
    /// Distinct confirmed keys (must equal `honest_ok`).
    pub unique_key_count: usize,
    /// Eve's results per swept separation.
    pub eve: Vec<EveArm>,
    /// Active-arm outcomes (empty when the arm is disabled).
    pub attacks: Vec<AttackOutcome>,
    /// Bit-flip storm outcome, when the storm ran.
    pub storm: Option<StormOutcome>,
    /// DoS arm: sockets held half-open.
    pub flood_held: usize,
    /// DoS arm: held sockets the server evicted within the window.
    pub flood_evicted: usize,
    /// DoS arm: honest sessions confirmed while the flood was held.
    pub honest_during_flood: usize,
    /// DoS arm: honest sessions attempted while the flood was held.
    pub attempted_during_flood: usize,
    /// Slowloris probe, when it ran.
    pub slowloris: Option<SlowlorisOutcome>,
    /// Errors that prevented part of the campaign from running.
    pub errors: Vec<String>,
}

impl AdversaryReport {
    /// `honest_ok / sessions` (0 when no sessions ran).
    pub fn honest_match_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.honest_ok as f64 / self.sessions as f64
        }
    }

    /// Eve's best mean key-bit agreement at or beyond λ/2.
    pub fn eve_agreement_beyond_half_lambda(&self) -> f64 {
        let half_lambda = 2.997_924_58e8 / 434.0e6 / 2.0;
        self.eve
            .iter()
            .filter(|arm| arm.separation_m >= half_lambda - 1e-9)
            .map(|arm| arm.mean_key_bit_agreement)
            .fold(0.0, f64::max)
    }

    /// Render as the manifest JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str("adversary".into())),
            ("sessions".into(), Json::UInt(self.sessions as u64)),
            ("honest_ok".into(), Json::UInt(self.honest_ok as u64)),
            (
                "unique_key_count".into(),
                Json::UInt(self.unique_key_count as u64),
            ),
            (
                "honest_match_rate".into(),
                Json::Num(self.honest_match_rate()),
            ),
            (
                "eve".into(),
                Json::Arr(self.eve.iter().map(EveArm::to_json).collect()),
            ),
            (
                "attacks".into(),
                Json::Arr(self.attacks.iter().map(AttackOutcome::to_json).collect()),
            ),
            (
                "storm".into(),
                match &self.storm {
                    None => Json::Null,
                    Some(s) => Json::Obj(vec![
                        (
                            "verdict".into(),
                            Json::Str(match &s.verdict {
                                StormVerdict::Completed { key_matched } => {
                                    if *key_matched {
                                        "completed_matched".into()
                                    } else {
                                        "completed_detected_mismatch".into()
                                    }
                                }
                                StormVerdict::TypedError(e) => format!("typed_error: {e}"),
                            }),
                        ),
                        ("corrupted_frames".into(), Json::UInt(s.faults.corrupted)),
                    ]),
                },
            ),
            ("flood_held".into(), Json::UInt(self.flood_held as u64)),
            (
                "flood_evicted".into(),
                Json::UInt(self.flood_evicted as u64),
            ),
            (
                "honest_during_flood".into(),
                Json::UInt(self.honest_during_flood as u64),
            ),
            (
                "attempted_during_flood".into(),
                Json::UInt(self.attempted_during_flood as u64),
            ),
            (
                "slowloris".into(),
                match &self.slowloris {
                    None => Json::Null,
                    Some(s) => Json::Obj(vec![
                        ("bytes_sent".into(), Json::UInt(s.bytes_sent as u64)),
                        ("evicted".into(), Json::Bool(s.evicted)),
                        (
                            "elapsed_ms".into(),
                            Json::Num(s.elapsed.as_secs_f64() * 1000.0),
                        ),
                    ]),
                },
            ),
            (
                "errors".into(),
                Json::Arr(self.errors.iter().map(|e| Json::Str(e.clone())).collect()),
            ),
        ])
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "adversary campaign: {}/{} honest sessions confirmed, {} unique keys\n",
            self.honest_ok, self.sessions, self.unique_key_count
        ));
        out.push_str("  Eve sweep (separation -> key-bit agreement):\n");
        for arm in &self.eve {
            out.push_str(&format!(
                "    d={:>6.3} m  rho={:.3}  raw={:.3}  key={:.3} (max {:.3})  recovered={}/{}\n",
                arm.separation_m,
                arm.rho,
                arm.mean_raw_agreement,
                arm.mean_key_bit_agreement,
                arm.max_key_bit_agreement,
                arm.recovered_key_count,
                arm.sessions
            ));
        }
        for attack in &self.attacks {
            out.push_str(&format!(
                "  attack {:<18} sent={:<4} replies={:<4} accepted={} closed={}\n",
                attack.kind,
                attack.frames_sent,
                attack.replies,
                attack.accepted,
                attack.connection_closed
            ));
        }
        if let Some(s) = &self.storm {
            let verdict = match &s.verdict {
                StormVerdict::Completed { key_matched } => {
                    if *key_matched {
                        "completed (matched)".to_string()
                    } else {
                        "completed (detected mismatch)".to_string()
                    }
                }
                StormVerdict::TypedError(e) => format!("typed error: {e}"),
            };
            out.push_str(&format!(
                "  storm: {verdict}, {} frames corrupted\n",
                s.faults.corrupted
            ));
        }
        if self.flood_held > 0 || self.slowloris.is_some() {
            out.push_str(&format!(
                "  dos: {} held half-open ({} evicted), honest during flood {}/{}\n",
                self.flood_held,
                self.flood_evicted,
                self.honest_during_flood,
                self.attempted_during_flood
            ));
            if let Some(s) = &self.slowloris {
                out.push_str(&format!(
                    "  slowloris: {} bytes trickled, evicted={} after {:.0} ms\n",
                    s.bytes_sent,
                    s.evicted,
                    s.elapsed.as_secs_f64() * 1000.0
                ));
            }
        }
        if !self.errors.is_empty() {
            out.push_str(&format!("  errors: {}\n", self.errors.join("; ")));
        }
        out
    }
}

/// Run a full campaign: honest captures, the Eve sweep, the active arm,
/// and the DoS arm, in that order, against one live server.
pub fn run_adversary(
    cfg: &AdversaryConfig,
    reconciler: &Arc<AutoencoderReconciler>,
) -> AdversaryReport {
    let mut errors = Vec::new();
    let mut captures: Vec<(SessionCapture, [u8; 16])> = Vec::new();
    let mut honest_ok = 0usize;
    let mut distinct: std::collections::HashSet<[u8; 16]> = std::collections::HashSet::new();
    for index in 0..cfg.sessions {
        let nonce_b = SplitMix64::new(cfg.nonce_seed ^ index as u64).next_u64();
        match run_recorded_session(
            cfg.addr,
            reconciler,
            nonce_b,
            &cfg.params,
            cfg.poll,
            cfg.connect_timeout,
        ) {
            Ok((capture, Some(confirmed))) => {
                honest_ok += 1;
                let _ = distinct.insert(confirmed);
                captures.push((capture, confirmed));
            }
            Ok((_, None)) => {}
            Err(e) => errors.push(format!("session {index}: {e}")),
        }
    }

    let eve: Vec<EveArm> = cfg
        .separations_m
        .iter()
        .map(|&d| {
            eve_sweep_point(
                &captures,
                reconciler,
                d,
                correlation_at(d),
                &cfg.params,
                cfg.nonce_seed ^ d.to_bits(),
            )
        })
        .collect();

    let mut attacks = Vec::new();
    let mut storm = None;
    if cfg.active {
        match attack_probe_injection(cfg.addr, reconciler, cfg.poll, cfg.connect_timeout) {
            Ok(outcome) => attacks.push(outcome),
            Err(e) => errors.push(format!("probe injection: {e}")),
        }
        if let Some((capture, _)) = captures.first() {
            let repeats = cfg.params.retry.max_retries as usize + 2;
            match attack_session_replay(cfg.addr, capture, repeats, cfg.poll, cfg.connect_timeout) {
                Ok(outcome) => attacks.push(outcome),
                Err(e) => errors.push(format!("session replay: {e}")),
            }
        }
        if !cfg.storm.is_noop() {
            let nonce_b = SplitMix64::new(cfg.nonce_seed ^ 0x5707_14A1).next_u64();
            match attack_bitflip_storm(
                cfg.addr,
                reconciler,
                nonce_b,
                cfg.storm,
                &cfg.params,
                cfg.poll,
                cfg.connect_timeout,
            ) {
                Ok(outcome) => storm = Some(outcome),
                Err(e) => errors.push(format!("bitflip storm: {e}")),
            }
        }
        if cfg.lifecycle {
            let nonce_b = SplitMix64::new(cfg.nonce_seed ^ 0x00F0_96E5).next_u64();
            match attack_lifecycle_inject(
                cfg.addr,
                reconciler,
                nonce_b,
                &cfg.params,
                cfg.poll,
                cfg.connect_timeout,
                |session_id| forged_app_frames(session_id, 300),
            ) {
                Ok(outcome) => attacks.push(outcome),
                Err(e) => errors.push(format!("lifecycle forgery: {e}")),
            }
        }
    }

    let mut flood_held = 0usize;
    let mut flood_evicted = 0usize;
    let mut honest_during_flood = 0usize;
    let mut attempted_during_flood = 0usize;
    let mut slowloris_outcome = None;
    if cfg.flood > 0 {
        let mut flood = HalfOpenFlood::open(cfg.addr, cfg.flood, cfg.connect_timeout);
        flood_held = flood.held();
        // Honest clients must keep confirming keys while the flood holds.
        attempted_during_flood = 3;
        for index in 0..attempted_during_flood {
            let nonce_b =
                SplitMix64::new(cfg.nonce_seed ^ (index as u64).rotate_left(51)).next_u64();
            let mut confirmed_one = false;
            for _ in 0..3 {
                if let Ok((_, Some(_))) = run_recorded_session(
                    cfg.addr,
                    reconciler,
                    nonce_b,
                    &cfg.params,
                    cfg.poll,
                    cfg.connect_timeout,
                ) {
                    confirmed_one = true;
                    break;
                }
            }
            honest_during_flood += usize::from(confirmed_one);
        }
        // Give the handshake deadline a chance to fire before probing.
        std::thread::sleep(
            cfg.params
                .handshake_timeout
                .min(Duration::from_secs(2))
                .saturating_add(Duration::from_millis(200)),
        );
        flood_evicted = flood.closed_by_server();
        flood.release();
    }
    if cfg.slowloris_bytes > 0 {
        match slowloris(
            cfg.addr,
            cfg.connect_timeout,
            Duration::from_millis(20),
            cfg.slowloris_bytes,
        ) {
            Ok(outcome) => slowloris_outcome = Some(outcome),
            Err(e) => errors.push(format!("slowloris: {e}")),
        }
    }

    AdversaryReport {
        sessions: cfg.sessions,
        honest_ok,
        unique_key_count: distinct.len(),
        eve,
        attacks,
        storm,
        flood_held,
        flood_evicted,
        honest_during_flood,
        attempted_during_flood,
        slowloris: slowloris_outcome,
        errors,
    }
}

// Re-exported for the raw socket helpers used by bench DoS drivers.
pub use crate::framing::MAX_FRAME_LEN as ADVERSARY_MAX_FRAME_LEN;

/// Send one raw pre-encoded frame on a bare stream (length prefix
/// included) — for drivers that bypass [`TcpTransport`].
///
/// # Errors
///
/// Propagates the socket write error.
pub fn send_raw_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&encode_frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::session::RetryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reconcile::AutoencoderTrainer;
    use std::sync::{Arc, OnceLock};

    fn model() -> &'static Arc<AutoencoderReconciler> {
        static MODEL: OnceLock<Arc<AutoencoderReconciler>> = OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(7001);
            Arc::new(
                AutoencoderTrainer::default()
                    .with_steps(6000)
                    .train(&mut rng),
            )
        })
    }

    fn fast_params() -> SessionParams {
        SessionParams {
            retry: RetryPolicy {
                max_retries: 8,
                ack_timeout: Duration::from_millis(40),
                backoff: 1.5,
            },
            session_timeout: Duration::from_secs(10),
            ..SessionParams::default()
        }
    }

    fn start_server(config: ServerConfig) -> Server {
        Server::start(config, model().clone()).expect("server start")
    }

    const POLL: Duration = Duration::from_millis(10);
    const CONNECT: Duration = Duration::from_secs(2);

    #[test]
    fn wiretap_parses_a_complete_session_capture() {
        let server = start_server(ServerConfig {
            params: fast_params(),
            max_sessions: Some(1),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let (capture, confirmed) =
            run_recorded_session(addr, model(), 0xB0B1, &fast_params(), POLL, CONNECT)
                .expect("honest session");
        server.join();
        assert!(capture.key_matched);
        assert!(confirmed.is_some());
        assert_eq!(capture.nonce_b, 0xB0B1);
        assert_eq!(capture.blocks.len(), 2, "128-bit key = 2 blocks of 64");
        assert!(capture.entropy_bits > 0);
        assert!(
            capture.client_frames.len() >= capture.blocks.len() + 2,
            "probe + syndromes + confirm at minimum"
        );
        // The capture's public identity reproduces the wire traffic: the
        // first block's final code re-MACs under the derived measurement.
        let (_, k_bob) = derive_session_keys(
            capture.session_id,
            capture.nonce_a,
            capture.nonce_b,
            fast_params().key_bits,
            fast_params().error_bits,
        );
        let session = Session::new(
            capture.session_id,
            model().clone(),
            capture.nonce_a,
            capture.nonce_b,
        );
        let first = &capture.blocks[0];
        if first.attempt.is_none() {
            let truth = k_bob.slice(0, model().key_len());
            assert!(session.code_mac_ok(&first.code, &first.mac, &truth));
        }
    }

    #[test]
    fn eve_on_the_bumper_wins_and_past_half_lambda_loses() {
        let server = start_server(ServerConfig {
            params: fast_params(),
            max_sessions: Some(4),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let mut captures = Vec::new();
        for i in 0..4u64 {
            let (capture, confirmed) =
                run_recorded_session(addr, model(), 0xE7E0 + i, &fast_params(), POLL, CONNECT)
                    .expect("honest session");
            captures.push((capture, confirmed.expect("key confirmed")));
        }
        server.join();

        // rho = 1: Eve's observation is Bob's measurement verbatim — she
        // recovers every key. This is the co-located upper bound that
        // keeps the scoring honest.
        let close = eve_sweep_point(&captures, model(), 0.0, 1.0, &fast_params(), 0xE7E);
        assert_eq!(close.recovered_key_count, captures.len(), "{close:?}");
        assert!(close.oracle_block_rate > 0.99, "{close:?}");

        // rho = 0 (the clamped J0 at >= lambda/2): coin-flip observations.
        // Reconciliation cannot bridge ~32 errors per 64-bit block, and
        // amplification scatters whatever correlation survives.
        let far = eve_sweep_point(&captures, model(), 0.3456, 0.0, &fast_params(), 0xE7E);
        assert_eq!(far.recovered_key_count, 0, "{far:?}");
        assert!(
            far.mean_key_bit_agreement < 0.7,
            "residual key agreement too high: {far:?}"
        );
        assert!(far.mean_raw_agreement < 0.56, "{far:?}");
        assert!(far.predicted_agreement - 0.5 < 1e-9, "{far:?}");
    }

    #[test]
    fn probe_injection_is_refused_without_an_ack() {
        let server = start_server(ServerConfig {
            params: fast_params(),
            max_sessions: Some(1),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let outcome =
            attack_probe_injection(addr, model(), POLL, CONNECT).expect("attack connects");
        server.join();
        assert_eq!(outcome.kind, "probe_injection");
        assert_eq!(outcome.accepted, 0, "{outcome:?}");
        assert!(outcome.connection_closed, "{outcome:?}");
    }

    #[test]
    fn replayed_sessions_die_in_the_rejection_budget() {
        let params = fast_params();
        let server = start_server(ServerConfig {
            params: params.clone(),
            max_sessions: Some(2),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let (capture, _) = run_recorded_session(addr, model(), 0x9E9E, &params, POLL, CONNECT)
            .expect("honest session");
        let outcome = attack_session_replay(addr, &capture, 10, POLL, CONNECT).expect("replay");
        server.join();
        assert_eq!(outcome.kind, "frame_tamper");
        // The replayed probe gets a probe reply; the replayed syndromes
        // MAC-fail against the fresh session keys and are never acked.
        assert_eq!(outcome.accepted, 0, "{outcome:?}");
        assert!(outcome.replies >= 1, "{outcome:?}");
        assert!(outcome.connection_closed, "{outcome:?}");
    }

    #[test]
    fn forged_lifecycle_frames_never_ack_and_get_evicted() {
        let params = fast_params();
        let server = start_server(ServerConfig {
            params: params.clone(),
            max_sessions: Some(1),
            lifecycle: Some(crate::lifecycle::LifecycleConfig::default()),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let outcome = attack_lifecycle_inject(
            addr,
            model(),
            0xF06E,
            &params,
            POLL,
            CONNECT,
            |session_id| forged_app_frames(session_id, 300),
        )
        .expect("anchor session");
        server.join();
        assert_eq!(outcome.kind, "lifecycle_forgery");
        assert_eq!(outcome.accepted, 0, "{outcome:?}");
        assert!(
            outcome.connection_closed,
            "the rejection budget must evict the forger: {outcome:?}"
        );
    }

    #[test]
    fn slowloris_is_evicted_at_the_handshake_deadline() {
        let server = start_server(ServerConfig {
            params: SessionParams {
                handshake_timeout: Duration::from_millis(150),
                ..fast_params()
            },
            max_sessions: Some(1),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let outcome =
            slowloris(addr, CONNECT, Duration::from_millis(20), 4096).expect("slowloris connects");
        let stats = server.join();
        assert!(outcome.evicted, "{outcome:?}");
        assert!(
            outcome.elapsed < Duration::from_secs(5),
            "eviction took {:?}",
            outcome.elapsed
        );
        assert!(outcome.bytes_sent < 4096, "{outcome:?}");
        assert_eq!(stats.handshake_timeouts, 1);
    }

    #[test]
    fn half_open_flood_is_shed_while_honest_clients_confirm() {
        let params = SessionParams {
            handshake_timeout: Duration::from_millis(250),
            ..fast_params()
        };
        let server = start_server(ServerConfig {
            params: params.clone(),
            workers: 4,
            pending_cap: Some(4),
            max_sessions: None,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let mut flood = HalfOpenFlood::open(addr, 16, CONNECT);
        assert!(flood.held() >= 12, "flood barely connected");
        // An honest client gets through while the flood holds: the
        // handshake deadline keeps recycling pinned workers.
        let mut honest_ok = false;
        for attempt in 0..8u64 {
            if let Ok((capture, Some(_))) =
                run_recorded_session(addr, model(), 0xCAFE + attempt, &params, POLL, CONNECT)
            {
                assert!(capture.key_matched);
                honest_ok = true;
                break;
            }
            // A refused attempt lands while the pending queue is still
            // pinned by the flood; wait out part of a handshake-deadline
            // window so the workers can recycle before retrying.
            std::thread::sleep(Duration::from_millis(150));
        }
        std::thread::sleep(Duration::from_millis(600));
        let evicted = flood.closed_by_server();
        flood.release();
        let stats = server.shutdown();
        assert!(honest_ok, "no honest session confirmed during the flood");
        assert!(evicted > 0, "no flooded socket was shed");
        assert!(
            stats.rejected_overload > 0 || stats.handshake_timeouts > 0,
            "backpressure left no trace: {stats:?}"
        );
    }

    #[test]
    fn acceptance_classifier_only_matches_acks() {
        let ack = Message::Ack {
            session_id: 1,
            seq: 0,
        }
        .encode();
        let confirm = Message::Confirm {
            session_id: 1,
            check: [0u8; 32],
        }
        .encode();
        let probe = Message::Probe {
            session_id: 1,
            seq: 0,
            nonce: 2,
        }
        .encode();
        let app_ack = LifecycleMessage::AppAck {
            session_id: 1,
            epoch: 1,
            seq: 0,
            mac: [0u8; 32],
        }
        .encode();
        assert!(is_acceptance(&ack));
        assert!(is_acceptance(&confirm));
        assert!(is_acceptance(&app_ack));
        assert!(!is_acceptance(&probe));
        assert!(!is_acceptance(b"\xff\xff\xff"));
    }
}
