//! End-to-end exchange over a lossy, duplicating in-memory link.
//!
//! Both endpoints are wrapped in [`FaultyTransport`], so frames are
//! dropped and duplicated in *both* directions. The exchange must still
//! converge: retransmission recovers dropped frames, the server answers
//! duplicates idempotently, and the driver's replay rejection keeps
//! re-delivered syndromes from corrupting state.

use std::sync::{Arc, OnceLock};
use std::time::Duration;
use vk_server::{
    run_bob_session, serve_session, FaultConfig, FaultyTransport, PipeTransport, RetryPolicy,
    SessionParams,
};

use rand::rngs::StdRng;
use rand::SeedableRng;
use reconcile::{AutoencoderReconciler, AutoencoderTrainer};
use vehicle_key::{AliceDriver, ProtocolError, Session};

fn model() -> &'static Arc<AutoencoderReconciler> {
    static MODEL: OnceLock<Arc<AutoencoderReconciler>> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(9001);
        Arc::new(
            AutoencoderTrainer::default()
                .with_steps(6000)
                .train(&mut rng),
        )
    })
}

fn lossy_params() -> SessionParams {
    SessionParams {
        retry: RetryPolicy {
            max_retries: 12,
            ack_timeout: Duration::from_millis(60),
            backoff: 1.5,
        },
        session_timeout: Duration::from_secs(20),
        ..SessionParams::default()
    }
}

#[test]
fn exchange_survives_drops_and_duplicates_on_both_directions() {
    let (a, b) = PipeTransport::pair(Duration::from_millis(5));
    // Seeds chosen so both drops and duplicates actually fire in the few
    // dozen frames a session sends (the stream is deterministic per seed).
    let faults = FaultConfig {
        drop: 0.3,
        duplicate: 0.2,
        ..FaultConfig::default()
    };
    let mut server_side = FaultyTransport::new(a, FaultConfig { seed: 11, ..faults });
    let mut client_side = FaultyTransport::new(b, FaultConfig { seed: 12, ..faults });
    let params = lossy_params();

    let server = std::thread::spawn(move || {
        let outcome = serve_session(&mut server_side, model(), 9, 111, &params).unwrap();
        (outcome, server_side.stats())
    });
    let bob = run_bob_session(&mut client_side, model(), 222, &params).unwrap();
    let (alice, server_faults) = server.join().unwrap();

    assert!(bob.key_matched, "client saw mismatched keys: {bob:?}");
    assert!(alice.key_matched, "server saw mismatched keys: {alice:?}");
    assert_eq!(alice.blocks, 2);

    // The faults must actually have fired, and the exchange must have
    // repaired them: drops force retransmissions, and duplicates reaching
    // the server are answered idempotently rather than re-processed.
    let client_faults = client_side.stats();
    assert!(
        client_faults.dropped + server_faults.dropped > 0,
        "fault injection never dropped a frame: {client_faults:?} / {server_faults:?}"
    );
    assert!(
        bob.retransmissions > 0,
        "a lossy link must force retransmissions: {bob:?}"
    );
    if client_faults.duplicated > 0 {
        assert!(
            alice.duplicate_frames > 0,
            "duplicates reached the server but were not answered idempotently"
        );
    }
}

#[test]
fn escalation_ladder_survives_a_lossy_link() {
    // The recovery ladder and the retransmission machinery composed: 10
    // disagreeing bits defeat the one-shot decode (forcing cascade parity
    // rounds and possibly re-probes), while the link drops and duplicates
    // frames in both directions — including rung queries and replies. The
    // session must still converge, with both endpoints agreeing on the
    // parity leakage debited from privacy amplification.
    let (a, b) = PipeTransport::pair(Duration::from_millis(5));
    let faults = FaultConfig {
        drop: 0.15,
        duplicate: 0.1,
        ..FaultConfig::default()
    };
    let mut server_side = FaultyTransport::new(a, FaultConfig { seed: 21, ..faults });
    let mut client_side = FaultyTransport::new(b, FaultConfig { seed: 22, ..faults });
    let params = SessionParams {
        error_bits: 10,
        ..lossy_params()
    };

    let server = std::thread::spawn(move || {
        let outcome = serve_session(&mut server_side, model(), 31, 900, &params).unwrap();
        (outcome, server_side.stats())
    });
    let bob = run_bob_session(&mut client_side, model(), 901, &params).unwrap();
    let (alice, server_faults) = server.join().unwrap();

    assert!(bob.key_matched, "client saw mismatched keys: {bob:?}");
    assert!(alice.key_matched, "server saw mismatched keys: {alice:?}");
    assert!(
        alice.escalation.any(),
        "10 error bits must climb the ladder: {:?}",
        alice.escalation
    );
    assert_eq!(
        alice.leaked_bits, bob.leaked_bits,
        "endpoints disagree on revealed parity bits"
    );
    assert_eq!(
        alice.entropy_bits, bob.entropy_bits,
        "endpoints disagree on the amplification debit"
    );
    let client_faults = client_side.stats();
    assert!(
        client_faults.dropped + server_faults.dropped > 0,
        "fault injection never dropped a frame: {client_faults:?} / {server_faults:?}"
    );
}

#[test]
fn replayed_syndrome_is_rejected_after_acceptance() {
    // The driver-level guarantee the lossy test leans on, asserted
    // directly: once a block is accepted, the identical frame replayed is
    // rejected instead of re-processed.
    let reconciler = model().clone();
    let (k_alice, k_bob) = vk_server::derive_session_keys(4, 10, 20, 128, 3);
    let session = Session::new(4, reconciler.clone(), 10, 20);
    let mut driver = AliceDriver::new(4, reconciler, 10, 20, k_alice);

    let seg = 64;
    let msg = session.bob_syndrome_message(0, &k_bob.slice(0, seg));
    driver
        .handle_message(&msg)
        .expect("first delivery of block 0 is accepted");
    let replay = driver.handle_message(&msg);
    assert!(
        matches!(replay, Err(ProtocolError::Malformed(_))),
        "replayed block must be rejected, got {replay:?}"
    );
}
