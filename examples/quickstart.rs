//! Quickstart: establish a shared 128-bit key between two simulated
//! LoRa-equipped vehicles and use it to encrypt a message.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};
use vk_crypto::Aes128;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Train the system: the BiLSTM prediction/quantization model on
    //    simulated drive data, and the autoencoder reconciler on synthetic
    //    mismatch distributions. In a deployment both models ship with the
    //    device — they are public and carry no secrets.
    println!("training Vehicle-Key (simulated V2V-Urban drives)...");
    let config = PipelineConfig::fast();
    let pipeline = KeyPipeline::train_for(ScenarioKind::V2vUrban, &config, &mut rng);

    // 2. Run key-establishment sessions until key confirmation succeeds —
    //    exactly what the deployed protocol does when residual bit errors
    //    survive reconciliation.
    let mut outcome = pipeline.run_session(ScenarioKind::V2vUrban, &mut rng);
    for attempt in 1.. {
        println!(
            "session {attempt}: bit agreement {:.1}% -> reconciled {:.1}% ({} key(s), match {:.0}%)",
            outcome.bit_agreement * 100.0,
            outcome.reconciled_agreement * 100.0,
            outcome.alice_keys.len(),
            outcome.key_match_rate * 100.0,
        );
        if let Some(eve) = &outcome.eve {
            println!(
                "  Eve (imitating attack): {:.1}% — no better than guessing",
                eve.imitating_agreement * 100.0
            );
        }
        if outcome
            .alice_keys
            .iter()
            .zip(&outcome.bob_keys)
            .any(|(a, b)| a == b)
            || attempt >= 6
        {
            break;
        }
        outcome = pipeline.run_session(ScenarioKind::V2vUrban, &mut rng);
    }

    // 3. Use the first matching key pair for AES-128-CTR messaging.
    let Some((key, _)) = outcome
        .alice_keys
        .iter()
        .zip(&outcome.bob_keys)
        .find(|(a, b)| a == b)
    else {
        println!("no matching key this session — in deployment the protocol simply re-probes");
        return;
    };
    let hex: String = key.iter().map(|b| format!("{b:02x}")).collect();
    // vk-lint: allow(secret-hygiene, "demo deliberately shows the agreed key")
    println!("shared 128-bit key: {hex}");

    let alice_cipher = Aes128::new(key);
    let message = b"brake warning: obstacle at 120m, lane 2";
    let ciphertext = alice_cipher.ctr(1, message);
    println!("alice sends {} encrypted bytes", ciphertext.len());

    let bob_cipher = Aes128::new(key); // Bob derived the same key
    let decrypted = bob_cipher.ctr(1, &ciphertext);
    // vk-lint: allow(secret-hygiene, "prints the decrypted demo message, not the key")
    println!("bob decrypts: {}", String::from_utf8_lossy(&decrypted));
    assert_eq!(&decrypted, message); // vk-lint: allow(secret-hygiene, "round-trip check on the demo plaintext")
}
