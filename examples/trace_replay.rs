//! Bring-your-own-trace workflow: export a campaign to CSV, reload it, and
//! run the key pipeline over it — the exact path a user with real LoRa
//! captures follows (assemble the CSV from your logs, skip the export
//! step).
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};
use vehicle_key::security;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let config = PipelineConfig::fast();

    // A "field capture": here simulated, in practice your own drive log.
    println!("capturing a V2I-Rural drive to CSV...");
    let campaign = KeyPipeline::campaign(ScenarioKind::V2iRural, &config, 170, 50.0, &mut rng);
    let path = std::env::temp_dir().join("vehicle_key_trace.csv");
    let file = std::fs::File::create(&path).expect("create trace file");
    testbed::write_csv(&campaign, std::io::BufWriter::new(file)).expect("write trace");
    let size_kb = std::fs::metadata(&path)
        .map(|m| m.len() / 1024)
        .unwrap_or(0);
    println!(
        "wrote {} rounds ({size_kb} KiB) to {}",
        campaign.rounds.len(),
        path.display()
    );

    // Train elsewhere (different scenario!) and replay the capture.
    println!("training on V2V-Urban drives (a different environment)...");
    let pipeline = KeyPipeline::train_for(ScenarioKind::V2vUrban, &config, &mut rng);

    let file = std::fs::File::open(&path).expect("open trace file");
    let imported = testbed::read_csv(std::io::BufReader::new(file)).expect("parse trace");
    println!(
        "replaying {} imported rounds ({})...",
        imported.rounds.len(),
        imported.scenario
    );
    let outcome = pipeline.run_on_campaign(&imported, &mut rng);
    println!(
        "agreement {:.1}% -> reconciled {:.1}%, {} key block(s)",
        outcome.bit_agreement * 100.0,
        outcome.reconciled_agreement * 100.0,
        outcome.alice_keys.len()
    );

    // Entropy audit of the raw key material, as an operator would run.
    let streams = config.extractor.paired_streams(&imported);
    let q = config.model.training_quantizer();
    let mut bits = quantize::BitString::new();
    let mut i = 0;
    while i + 32 <= streams.bob.len() {
        bits.extend(&q.quantize(&streams.bob[i..i + 32]).bits);
        i += 32;
    }
    println!(
        "raw key material entropy: shannon {:.3}, markov {:.3}, min-entropy {:.3} bits/bit",
        security::shannon_entropy_rate(&bits),
        security::markov_entropy_rate(&bits),
        security::min_entropy_rate(&bits),
    );
    let budget = security::amplification_budget(
        security::min_entropy_rate(&bits).max(0.1),
        16 * 32 * 2, // two 64-bit-segment syndromes per key
    );
    println!("amplification sizing: ~{budget} raw bits per 128-bit key at this entropy rate");

    std::fs::remove_file(&path).ok();
}
