//! Fleet rollout study: one pre-trained model serving many vehicles across
//! heterogeneous scenarios — the deployment question an operator would ask
//! before adopting Vehicle-Key.
//!
//! Trains a single model in V2I-Urban (the richest infrastructure setting),
//! then measures key agreement and rate for a small fleet operating in all
//! four scenarios, with per-scenario aggregates. Mirrors the paper's
//! generalization argument (Sec. V-G) at fleet scale.
//!
//! ```sh
//! cargo run --release --example fleet_rollout
//! ```

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vehicle_key::metrics::Summary;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(55);
    println!("training the fleet model on V2I-Urban drives...");
    let config = PipelineConfig::fast();
    let pipeline = KeyPipeline::train_for(ScenarioKind::V2iUrban, &config, &mut rng);

    let vehicles_per_scenario = 4;
    println!(
        "\n{:<12} {:>18} {:>16} {:>14}",
        "scenario", "agreement", "raw rate (bit/s)", "sessions"
    );
    let mut fleet_agreement = Vec::new();
    for kind in ScenarioKind::ALL {
        let mut agreements = Vec::new();
        let mut rates = Vec::new();
        for _ in 0..vehicles_per_scenario {
            let outcome = pipeline.run_session(kind, &mut rng);
            agreements.push(outcome.reconciled_agreement);
            rates.push(outcome.raw_rate_bits_per_s());
        }
        let sa = Summary::of(&agreements);
        let sr = Summary::of(&rates);
        println!(
            "{:<12} {:>8.1}% ± {:>4.1}% {:>9.3} ± {:.3} {:>10}",
            kind.to_string(),
            sa.mean * 100.0,
            sa.std * 100.0,
            sr.mean,
            sr.std,
            vehicles_per_scenario
        );
        fleet_agreement.extend(agreements);
    }
    let overall = Summary::of(&fleet_agreement);
    println!(
        "\nfleet-wide agreement: {:.1}% ± {:.1}% over {} sessions",
        overall.mean * 100.0,
        overall.std * 100.0,
        overall.n
    );
    println!("operators can fine-tune per region with ~10% local data (see `repro fig14`).");
}
