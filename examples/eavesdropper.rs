//! Security demonstration: an eavesdropper who follows the vehicle and
//! intercepts every message still cannot derive the key.
//!
//! Runs several sessions with Eve simulated a few metres from Alice,
//! mounting both of the paper's attacks (Sec. V-H):
//! * **imitating** — Eve drives Alice's route and applies the same public
//!   model to her own measurements;
//! * **eavesdropping** — Eve feeds Bob's intercepted reconciliation
//!   syndrome plus her own bits into the public decoder.
//!
//! ```sh
//! cargo run --release --example eavesdropper
//! ```

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    println!("training Vehicle-Key (V2I-Urban)...");
    let config = PipelineConfig::fast();
    let pipeline = KeyPipeline::train_for(ScenarioKind::V2iUrban, &config, &mut rng);

    let sessions = 5;
    let mut legit = 0.0;
    let mut imitating = 0.0;
    let mut eavesdropping = 0.0;
    let mut counted = 0usize;
    println!("running {sessions} sessions with Eve tailing Alice at ~5 m...");
    for s in 0..sessions {
        let outcome = pipeline.run_session(ScenarioKind::V2iUrban, &mut rng);
        let eve = outcome.eve.expect("testbed simulates Eve by default");
        println!(
            "  session {s}: legit {:.1}% | Eve imitating {:.1}% | Eve eavesdropping {:.1}%",
            outcome.reconciled_agreement * 100.0,
            eve.imitating_agreement * 100.0,
            eve.eavesdropping_agreement * 100.0,
        );
        if outcome.reconciled_agreement.is_nan() {
            continue; // session too short to complete a 128-bit block
        }
        counted += 1;
        legit += outcome.reconciled_agreement;
        imitating += eve.imitating_agreement;
        eavesdropping += eve.eavesdropping_agreement;
    }
    let n = counted.max(1) as f64;
    println!("\nmeans over {sessions} sessions:");
    println!("  legitimate parties  : {:.1}%", legit / n * 100.0);
    println!("  Eve (imitating)     : {:.1}%", imitating / n * 100.0);
    println!("  Eve (eavesdropping) : {:.1}%", eavesdropping / n * 100.0);
    println!(
        "\nwith any residual disagreement, privacy amplification gives Eve a \
         completely different 128-bit key;\nguessing it has probability 2^-128."
    );
    assert!(
        legit / n > imitating / n + 0.1,
        "legitimate advantage must be clear"
    );
}
