//! Wire-protocol walkthrough: the full message flow of one Vehicle-Key
//! session between two vehicles, including MAC protection of the
//! reconciliation syndrome and key confirmation — plus a man-in-the-middle
//! attempt that the MAC catches.
//!
//! ```sh
//! cargo run --release --example v2v_key_exchange
//! ```

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};
use vehicle_key::protocol::{Message, ProtocolError, Session};

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    println!("training system models (public, shared by all parties)...");
    let config = PipelineConfig::fast();
    let pipeline = KeyPipeline::train_for(ScenarioKind::V2vUrban, &config, &mut rng);

    // --- Probe phase: exchange nonces and collect channel measurements ---
    let session_id: u32 = rng.random();
    let nonce_a: u64 = rng.random();
    let nonce_b: u64 = rng.random();
    let probe = Message::Probe {
        session_id,
        seq: 0,
        nonce: nonce_a,
    };
    let reply = Message::ProbeReply {
        session_id,
        seq: 0,
        nonce: nonce_b,
    };
    println!(
        "probe ({} B on the wire) / reply ({} B): session {session_id:08x}",
        probe.encode().len(),
        reply.encode().len()
    );

    // The testbed stands in for the radio: both sides collect rRSSI.
    let campaign = KeyPipeline::campaign(
        ScenarioKind::V2vUrban,
        &config,
        config.session_rounds,
        config.speed_kmh,
        &mut rng,
    );
    let streams = config.extractor.paired_streams(&campaign);

    // --- Key material: Alice runs the model, Bob the quantizer ---
    let model = pipeline.model();
    let seq = config.model.seq_len;
    let mut alice_bits = quantize::BitString::new();
    let mut bob_bits = quantize::BitString::new();
    let mut i = 0;
    while i + seq <= streams.alice.len().min(streams.bob.len()) && bob_bits.len() < 64 {
        let outcome = model.bob_bits_kept(&streams.bob[i..i + seq]);
        bob_bits.extend(&outcome.bits);
        let (_, bits) = model.predict(&streams.alice[i..i + seq], &streams.baseline[i..i + seq]);
        alice_bits.extend(&model.select_kept(&bits, &outcome.kept));
        i += seq;
    }
    let n = 64.min(alice_bits.len());
    let k_alice = alice_bits.slice(0, n);
    let k_bob = bob_bits.slice(0, n);
    println!(
        "quantized {} bits each; {} bit(s) currently disagree",
        n,
        k_alice.hamming(&k_bob)
    );
    if n < 64 {
        println!("(short session — rerun for a full 128-bit key)");
    }

    // --- Reconciliation over the wire, MAC-protected ---
    let session = Session::new(session_id, pipeline.reconciler().clone(), nonce_a, nonce_b);
    let syndrome_msg = session.bob_syndrome_message(0, &k_bob);
    // vk-lint: allow(secret-hygiene, "prints the wire size of the public syndrome frame, not its contents")
    println!("bob -> alice: syndrome ({} B)", syndrome_msg.encode().len());
    let corrected = session
        .alice_process_syndrome(&syndrome_msg, &k_alice)
        .expect("legitimate syndrome verifies");
    println!(
        "alice corrected her key: now {} bit(s) disagree",
        corrected.hamming(&k_bob)
    );

    // --- A man in the middle tampers with the syndrome ---
    let tampered = match syndrome_msg.clone() {
        Message::Syndrome {
            session_id,
            block,
            mut code,
            mac,
        } => {
            code[0] = code[0].wrapping_add(500);
            Message::Syndrome {
                session_id,
                block,
                code,
                mac,
            }
        }
        _ => unreachable!(),
    };
    match session.alice_process_syndrome(&tampered, &k_alice) {
        Err(ProtocolError::MacMismatch) => {
            println!("tampered syndrome rejected: MAC mismatch (MITM detected)");
        }
        other => panic!("tampering not detected: {other:?}"),
    }

    // --- Privacy amplification + confirmation ---
    let final_alice = vk_crypto::amplify::amplify_128(&corrected.to_bools());
    let final_bob = vk_crypto::amplify::amplify_128(&k_bob.to_bools());
    let confirm = Message::Confirm {
        session_id,
        check: session.confirm_check(&final_bob),
    };
    match session.verify_confirm(&confirm, &final_alice) {
        Ok(()) => println!("key confirmation OK — both hold the same 128-bit key"),
        Err(ProtocolError::ConfirmMismatch) => {
            println!("confirmation failed — parties re-probe (residual bit errors)");
        }
        Err(e) => panic!("unexpected protocol error: {e}"),
    }
}
