#!/usr/bin/env python3
"""CI assertion for the observability smoke: the merged Chrome trace must
contain spans from BOTH peers (the serve-side "alice" track and the
fleet-side "bob" track) under at least one shared 128-bit trace id —
i.e. the wire-level trace context actually stitched the two processes
into one causal trace.

Usage: check_merged_trace.py <trace.merged.json>
"""

import collections
import json
import sys


def main(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    node_of_pid = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    nodes_of_trace = collections.defaultdict(set)
    spans = 0
    for e in events:
        if e.get("ph") == "M":
            continue
        spans += 1
        trace = e.get("args", {}).get("trace")
        if trace:
            nodes_of_trace[trace].add(node_of_pid.get(e["pid"], "?"))
    shared = sorted(
        t for t, nodes in nodes_of_trace.items() if {"alice", "bob"} <= nodes
    )
    if not shared:
        print(
            f"FAIL: no trace id spans both peers "
            f"(spans={spans}, traces={dict(nodes_of_trace)})",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {len(shared)} trace(s) span both peers out of "
        f"{len(nodes_of_trace)} total ({spans} span events); "
        f"e.g. {shared[0]}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
