#!/usr/bin/env python3
"""Diff a `vkey lint --json` run against the committed finding baseline.

The linter emits one JSON line per finding with a stable `id`
(`rule@path:line`) and a content `fingerprint` (FNV-1a over
rule|path|message, so the id survives unrelated line drift while the
fingerprint pins the message). The baseline file records the warn-level
findings the workspace is allowed to carry; deny findings are never
baselined — the gate holds them at zero.

Usage:
    vkey lint --json | scripts/lint_baseline.py check results/lint_baseline.json
    vkey lint --json | scripts/lint_baseline.py update results/lint_baseline.json

`check` exits nonzero when a finding appears that is not in the baseline
(new warn) or when a baselined finding changed its message (fingerprint
mismatch). Findings that disappeared are reported as fixable baseline
staleness but do not fail the check — deleting them is `update`'s job.
"""

import json
import sys


def read_report(stream):
    findings, summary = [], None
    for line in stream:
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if doc.get("kind") == "finding":
            findings.append(doc)
        elif doc.get("kind") == "summary":
            summary = doc
    if summary is None:
        raise SystemExit("lint_baseline: no summary line — is this `vkey lint --json`?")
    return findings, summary


def baseline_entry(finding):
    return {
        "id": finding["id"],
        "fingerprint": finding["fingerprint"],
        "rule": finding["rule"],
        "severity": finding["severity"],
    }


def cmd_update(findings, summary, path):
    entries = sorted((baseline_entry(f) for f in findings), key=lambda e: e["id"])
    doc = {
        "files": int(summary["files"]),
        "protocol_tags": int(summary.get("protocol_tags", 0)),
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as out:
        json.dump(doc, out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"lint_baseline: wrote {len(entries)} finding(s) to {path}")
    return 0


def cmd_check(findings, summary, path):
    with open(path, encoding="utf-8") as f:
        baseline = json.load(f)
    known = {e["id"]: e["fingerprint"] for e in baseline["findings"]}
    current = {f["id"]: f["fingerprint"] for f in findings}

    deny = [f for f in findings if f["severity"] == "deny"]
    fresh = sorted(i for i in current if i not in known)
    drifted = sorted(i for i in current if i in known and current[i] != known[i])
    stale = sorted(i for i in known if i not in current)

    rc = 0
    for f in deny:
        print(f"DENY     {f['id']}: {f['message']}")
        rc = 1
    for i in fresh:
        print(f"NEW      {i}")
        rc = 1
    for i in drifted:
        print(f"CHANGED  {i} (message fingerprint drifted)")
        rc = 1
    for i in stale:
        print(f"stale    {i} (fixed — run update to drop it)")
    tags = int(summary.get("protocol_tags", 0))
    want = int(baseline.get("protocol_tags", tags))
    if tags != want:
        print(f"TAGS     protocol_tags {tags} != baseline {want}")
        rc = 1
    if rc == 0:
        print(
            f"lint_baseline: clean — {len(current)} finding(s) all baselined, "
            f"{tags} wire tags accounted"
        )
    return rc


def main(argv):
    if len(argv) != 3 or argv[1] not in {"check", "update"}:
        print(__doc__, file=sys.stderr)
        return 2
    findings, summary = read_report(sys.stdin)
    if argv[1] == "update":
        return cmd_update(findings, summary, argv[2])
    return cmd_check(findings, summary, argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
