//! Umbrella crate for the Vehicle-Key reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The actual functionality lives in the
//! workspace crates, re-exported here for convenience:
//!
//! * [`vehicle_key`] — the paper's contribution: the full key-establishment
//!   pipeline (features → BiLSTM model → reconciliation → amplification),
//! * [`lora_phy`] / [`channel`] / [`mobility`] / [`testbed`] — the simulated
//!   LoRa IoV substrate,
//! * [`nn`] / [`quantize`] / [`reconcile`] / [`vk_crypto`] / [`nist`] —
//!   supporting libraries,
//! * [`baselines`] — LoRa-Key, Han et al., Gao et al.

pub use baselines;
pub use channel;
pub use lora_phy;
pub use mobility;
pub use nist;
pub use nn;
pub use quantize;
pub use reconcile;
pub use testbed;
pub use vehicle_key;
pub use vk_crypto;
