//! End-to-end integration: the full Vehicle-Key stack from simulated radio
//! to AES-encrypted messaging.

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::OnceLock;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig, SessionOutcome};
use vehicle_key::protocol::{Message, ProtocolError, Session};

/// One trained pipeline shared by every test in this file (training is the
/// expensive part; all assertions are read-only).
fn pipeline() -> &'static KeyPipeline {
    static PIPE: OnceLock<KeyPipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(9001);
        KeyPipeline::train_for(ScenarioKind::V2vUrban, &PipelineConfig::fast(), &mut rng)
    })
}

fn session(seed: u64) -> SessionOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    pipeline().run_session(ScenarioKind::V2vUrban, &mut rng)
}

#[test]
fn full_pipeline_reaches_high_agreement() {
    let outcome = session(1);
    assert!(
        outcome.bit_agreement > 0.75,
        "bit agreement {}",
        outcome.bit_agreement
    );
    assert!(
        outcome.reconciled_agreement >= outcome.bit_agreement - 0.05,
        "reconciliation should not materially hurt: {} -> {}",
        outcome.bit_agreement,
        outcome.reconciled_agreement
    );
    assert!(!outcome.alice_keys.is_empty());
    assert_eq!(outcome.alice_keys.len(), outcome.bob_keys.len());
}

#[test]
fn eavesdropper_stays_near_chance() {
    let outcome = session(2);
    let eve = outcome.eve.expect("eve simulated by default");
    assert!(
        outcome.bit_agreement > eve.imitating_agreement + 0.15,
        "legitimate advantage too small: {} vs {}",
        outcome.bit_agreement,
        eve.imitating_agreement
    );
    assert!(
        eve.imitating_agreement < 0.72,
        "imitating Eve too strong: {}",
        eve.imitating_agreement
    );
}

#[test]
fn matched_keys_encrypt_and_decrypt() {
    // Try several sessions; with the fast config most produce at least one
    // matching key pair.
    for seed in 3..11 {
        let outcome = session(seed);
        if let Some((key, _)) = outcome
            .alice_keys
            .iter()
            .zip(&outcome.bob_keys)
            .find(|(a, b)| a == b)
        {
            let cipher = vk_crypto::Aes128::new(key);
            let msg = b"integration test payload";
            let ct = cipher.ctr(99, msg);
            assert_ne!(&ct[..], &msg[..]);
            assert_eq!(cipher.ctr(99, &ct), msg);
            return;
        }
    }
    panic!("no session produced a matching key in 8 attempts");
}

#[test]
fn wire_protocol_round_trip_with_mac() {
    let mut rng = StdRng::seed_from_u64(42);
    let reconciler = pipeline().reconciler().clone();
    let session = Session::new(77, reconciler, rng.random(), rng.random());
    let k_bob: quantize::BitString = (0..64).map(|_| rng.random::<bool>()).collect();
    let mut k_alice = k_bob.clone();
    k_alice.set(9, !k_alice.get(9));
    // Serialize / deserialize across the "air".
    let wire = session.bob_syndrome_message(0, &k_bob).encode();
    let msg = Message::decode(&wire).expect("well-formed message");
    let corrected = session
        .alice_process_syndrome(&msg, &k_alice)
        .expect("legitimate syndrome verifies");
    assert_eq!(corrected, k_bob);
    // Confirmation closes the loop.
    let final_key = vk_crypto::amplify::amplify_128(&corrected.to_bools());
    let confirm = Message::Confirm {
        session_id: 77,
        check: session.confirm_check(&final_key),
    };
    assert!(session.verify_confirm(&confirm, &final_key).is_ok());
}

#[test]
fn tampering_is_detected_end_to_end() {
    let mut rng = StdRng::seed_from_u64(43);
    let session = Session::new(
        78,
        pipeline().reconciler().clone(),
        rng.random(),
        rng.random(),
    );
    let k_bob: quantize::BitString = (0..64).map(|_| rng.random::<bool>()).collect();
    let msg = session.bob_syndrome_message(0, &k_bob);
    let mut wire = msg.encode().to_vec();
    // Flip a byte inside the code section.
    wire[12] ^= 0xFF;
    let tampered = Message::decode(&wire).expect("still parses");
    assert_eq!(
        session.alice_process_syndrome(&tampered, &k_bob),
        Err(ProtocolError::MacMismatch)
    );
}

#[test]
fn amplified_keys_pass_basic_randomness() {
    // Gather key bits from a few sessions and run the length-appropriate
    // NIST subset.
    let mut bits = Vec::new();
    for seed in 20..26 {
        let outcome = session(seed);
        for key in &outcome.alice_keys {
            for byte in key {
                for b in (0..8).rev() {
                    bits.push((byte >> b) & 1 == 1);
                }
            }
        }
    }
    assert!(
        bits.len() >= 256,
        "need some key material, got {} bits",
        bits.len()
    );
    if bits.len() >= 128 {
        let r = nist::tests::frequency(&bits).unwrap();
        assert!(r.passed(), "frequency p = {}", r.p_value);
        let r = nist::tests::runs(&bits).unwrap();
        assert!(r.passed(), "runs p = {}", r.p_value);
    }
}
