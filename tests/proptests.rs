//! Property-based tests on the core data structures and invariants,
//! spanning the workspace crates.

use proptest::prelude::*;
use quantize::{BitString, FixedQuantizer, GuardBandQuantizer, MultiBitQuantizer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use reconcile::PositionPreservingMask;
use vehicle_key::Message;
use vk_lifecycle::{ChannelRole, LifecycleMessage, RekeyMode, RekeyTrigger, SecureChannel};

/// Helpers for the escalation-ladder interleaving property.
mod escalation {
    use quantize::BitString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reconcile::{AutoencoderReconciler, AutoencoderTrainer};
    use std::sync::OnceLock;
    use vehicle_key::{AliceDriver, Disposition, ProtocolError};

    pub fn model() -> &'static AutoencoderReconciler {
        static MODEL: OnceLock<AutoencoderReconciler> = OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(4242);
            AutoencoderTrainer::default()
                .with_steps(6000)
                .train(&mut rng)
        })
    }

    /// A Bob-side rung reply, kept so faults can re-deliver it verbatim.
    #[derive(Clone)]
    pub enum Reply {
        Cascade {
            block: u32,
            round: u32,
            parities: Vec<bool>,
        },
        Reprobe {
            block: u32,
            attempt: u32,
            code: Vec<i16>,
            mac: [u8; 32],
            fresh: BitString,
        },
    }

    pub fn deliver(
        alice: &mut AliceDriver,
        sid: u32,
        reply: &Reply,
    ) -> Result<Disposition, ProtocolError> {
        match reply {
            Reply::Cascade {
                block,
                round,
                parities,
            } => alice.handle_cascade_reply(sid, *block, *round, parities),
            Reply::Reprobe {
                block,
                attempt,
                code,
                mac,
                fresh,
            } => alice.handle_reprobe_reply(sid, *block, *attempt, code, mac, fresh),
        }
    }

    /// Every legitimate abort the ladder can produce: either a recovery
    /// budget ran out or authentication failed — never `Malformed`, which
    /// would mean the driver mis-parsed its own well-formed replies.
    pub fn is_typed_abort(e: &ProtocolError) -> bool {
        matches!(
            e,
            ProtocolError::RecoveryExhausted(_)
                | ProtocolError::DeadlineExpired(_)
                | ProtocolError::EntropyExhausted
                | ProtocolError::MacMismatch
        )
    }
}

fn trace_ctx_strategy() -> impl Strategy<Value = telemetry::TraceContext> {
    (any::<u128>(), any::<u64>()).prop_map(|(trace_id, parent_span)| telemetry::TraceContext {
        trace_id,
        parent_span,
    })
}

fn bits_strategy(max_len: usize) -> impl Strategy<Value = BitString> {
    prop::collection::vec(any::<bool>(), 1..max_len).prop_map(|v| BitString::from_bools(&v))
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(session_id, seq, nonce)| {
            Message::Probe {
                session_id,
                seq,
                nonce,
            }
        }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(session_id, seq, nonce)| {
            Message::ProbeReply {
                session_id,
                seq,
                nonce,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<i16>(), 0..64),
            any::<[u8; 32]>(),
        )
            .prop_map(|(session_id, block, code, mac)| Message::Syndrome {
                session_id,
                block,
                code,
                mac,
            }),
        (any::<u32>(), any::<[u8; 32]>())
            .prop_map(|(session_id, check)| Message::Confirm { session_id, check }),
        (any::<u32>(), any::<u32>()).prop_map(|(session_id, seq)| Message::Ack { session_id, seq }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(prop::collection::vec(any::<u16>(), 0..16), 0..8),
        )
            .prop_map(
                |(session_id, block, round, queries)| Message::CascadeParity {
                    session_id,
                    block,
                    round,
                    queries,
                }
            ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<bool>(), 0..32),
        )
            .prop_map(
                |(session_id, block, round, parities)| Message::CascadeParityReply {
                    session_id,
                    block,
                    round,
                    parities,
                },
            ),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(session_id, block, attempt)| {
            Message::ReprobeRequest {
                session_id,
                block,
                attempt,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<i16>(), 0..64),
            any::<[u8; 32]>(),
        )
            .prop_map(
                |(session_id, block, attempt, code, mac)| Message::ReprobeReply {
                    session_id,
                    block,
                    attempt,
                    code,
                    mac,
                }
            ),
    ]
}

fn lifecycle_message_strategy() -> impl Strategy<Value = LifecycleMessage> {
    let mode = prop_oneof![Just(RekeyMode::Ratchet), Just(RekeyMode::Reprobe)];
    let trigger = prop_oneof![
        Just(RekeyTrigger::Budget),
        Just(RekeyTrigger::Leakage),
        Just(RekeyTrigger::Manual),
    ];
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<[u8; 32]>(),
        )
            .prop_map(|(session_id, epoch, seq, ciphertext, mac)| {
                LifecycleMessage::AppData {
                    session_id,
                    epoch,
                    seq,
                    ciphertext,
                    mac,
                }
            }),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<[u8; 32]>()).prop_map(
            |(session_id, epoch, seq, mac)| LifecycleMessage::AppAck {
                session_id,
                epoch,
                seq,
                mac,
            },
        ),
        (
            any::<u32>(),
            any::<u32>(),
            mode,
            trigger,
            any::<u64>(),
            any::<[u8; 32]>(),
        )
            .prop_map(|(session_id, epoch, mode, trigger, fresh, mac)| {
                LifecycleMessage::RekeyRequest {
                    session_id,
                    epoch,
                    mode,
                    trigger,
                    fresh,
                    mac,
                }
            },),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<[u8; 32]>()).prop_map(
            |(session_id, epoch, fresh, check)| LifecycleMessage::RekeyConfirm {
                session_id,
                epoch,
                fresh,
                check,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<[u8; 32]>()).prop_map(|(session_id, epoch, check)| {
            LifecycleMessage::RekeyAck {
                session_id,
                epoch,
                check,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..32),
            any::<[u8; 32]>(),
        )
            .prop_map(
                |(session_id, group_epoch, member_id, nonce, ciphertext, mac)| {
                    LifecycleMessage::GroupKey {
                        session_id,
                        group_epoch,
                        member_id,
                        nonce,
                        ciphertext,
                        mac,
                    }
                }
            ),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<[u8; 32]>()).prop_map(
            |(session_id, group_epoch, member_id, mac)| LifecycleMessage::GroupKeyAck {
                session_id,
                group_epoch,
                member_id,
                mac,
            }
        ),
        (any::<u32>(), any::<[u8; 32]>())
            .prop_map(|(session_id, mac)| LifecycleMessage::Leave { session_id, mac }),
        (any::<u32>(), any::<[u8; 32]>())
            .prop_map(|(session_id, mac)| LifecycleMessage::LeaveAck { session_id, mac }),
    ]
}

/// The frame mutations the adversarial fuzz battery applies — the moves
/// Mallory actually has on the wire: a single-bit flip (tag, field, or
/// MAC), a tag overwrite, a truncation, and trailing junk.
fn mutate_frame(frame: &[u8], choice: usize, idx: u16, junk: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    match choice {
        0 => {
            let i = idx as usize % out.len();
            out[i] ^= 1u8 << (idx % 8);
        }
        1 => out[0] = (idx & 0xFF) as u8,
        2 => out.truncate(idx as usize % out.len()),
        _ => out.extend_from_slice(junk),
    }
    out
}

/// Reader that hands out at most `chunk` bytes per `read` call — a socket
/// dribbling data at whatever granularity the kernel felt like.
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl std::io::Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_reassembly_is_chunking_invariant(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 1..12),
        chunk in 1usize..24,
    ) {
        use vk_server::{encode_frame, FrameBuf, FrameDecoder};
        // The reactor's read path (FrameBuf fed by partial reads of
        // arbitrary size, 1 byte included) must hand out byte-identical
        // frames, in order, to the blocking path's whole-stream decoder.
        let stream: Vec<u8> = payloads.iter().flat_map(|p| encode_frame(p)).collect();
        let mut whole = FrameDecoder::new();
        whole.push(&stream);
        let mut reader = ChunkedReader { data: &stream, pos: 0, chunk };
        let mut buf = FrameBuf::new();
        let mut reassembled: Vec<Vec<u8>> = Vec::new();
        loop {
            let n = buf.fill_from(&mut reader).expect("in-memory reader");
            while let Some(range) = buf.next_frame_range().expect("honest stream stays framed") {
                reassembled.push(buf.slice(range).to_vec());
            }
            if n == 0 {
                break;
            }
        }
        prop_assert_eq!(&reassembled, &payloads);
        for want in &payloads {
            let got = whole
                .next_frame()
                .expect("reference decoder accepts the honest stream")
                .expect("reference decoder yields the same frame count");
            prop_assert_eq!(&got, want);
        }
        prop_assert_eq!(whole.next_frame().expect("drained decoder stays clean"), None);
        prop_assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn oversized_length_prefixes_die_typed_in_both_decoders(
        len in (vk_server::MAX_FRAME_LEN as u32 + 1)..=u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        use vehicle_key::TransportError;
        use vk_server::{FrameBuf, FrameDecoder};
        // A hostile length prefix must surface as a typed transport error
        // from both decoders — before any allocation of the stated size,
        // and never as a panic or a silent stall.
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        let mut whole = FrameDecoder::new();
        whole.push(&bytes);
        prop_assert!(matches!(whole.next_frame(), Err(TransportError::Io(_))));
        let mut buf = FrameBuf::new();
        buf.push(&bytes);
        prop_assert!(matches!(buf.next_frame_range(), Err(TransportError::Io(_))));
    }

    #[test]
    fn garbage_floods_abort_typed_within_the_budget(
        seed in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 0..40)
            .prop_filter("undecodable", |g| Message::decode(g).is_err()),
    ) {
        use vk_server::{SessionCore, SessionError, SessionParams, GARBAGE_BUDGET};
        // Past the handshake, a peer streaming frames that never decode
        // must be cut off with a typed protocol error within the garbage
        // budget — not served until its session deadline.
        let now = std::time::Instant::now();
        let mut core = SessionCore::new(
            escalation::model().clone(),
            7,
            seed,
            &SessionParams::default(),
            false,
            now,
        );
        let mut out = Vec::new();
        let probe = Message::Probe { session_id: 7, seq: 0, nonce: seed ^ 1 }.encode();
        core.on_frame(&probe, now, &mut out).expect("probe handshake");
        prop_assert!(core.handshaken());
        let mut delivered = 0u64;
        let err = loop {
            delivered += 1;
            prop_assert!(delivered <= GARBAGE_BUDGET + 1, "garbage budget overshot");
            match core.on_frame(&garbage, now, &mut out) {
                Ok(()) => {}
                Err(e) => break e,
            }
        };
        prop_assert!(
            matches!(err, SessionError::Protocol(_)),
            "garbage flood died untyped: {:?}",
            err
        );
        prop_assert_eq!(delivered, GARBAGE_BUDGET + 1);
    }

    #[test]
    fn bitstring_xor_is_involutive(a in bits_strategy(256)) {
        let b = BitString::from_bools(&a.iter().map(|x| !x).collect::<Vec<_>>());
        prop_assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    fn bitstring_agreement_symmetric(v in prop::collection::vec(any::<(bool, bool)>(), 1..200)) {
        let a = BitString::from_bools(&v.iter().map(|p| p.0).collect::<Vec<_>>());
        let b = BitString::from_bools(&v.iter().map(|p| p.1).collect::<Vec<_>>());
        prop_assert!((a.agreement(&b) - b.agreement(&a)).abs() < 1e-12);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
    }

    #[test]
    fn bitstring_slice_extend_round_trip(a in bits_strategy(128), at in 0usize..128) {
        let at = at.min(a.len());
        let mut rebuilt = a.slice(0, at);
        rebuilt.extend(&a.slice(at, a.len() - at));
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn mask_preserves_hamming_distance(
        seed in any::<u64>(),
        v in prop::collection::vec(any::<(bool, bool)>(), 8..128),
    ) {
        let a = BitString::from_bools(&v.iter().map(|p| p.0).collect::<Vec<_>>());
        let b = BitString::from_bools(&v.iter().map(|p| p.1).collect::<Vec<_>>());
        let mask = PositionPreservingMask::new(seed, a.len());
        prop_assert_eq!(mask.apply(&a).hamming(&mask.apply(&b)), a.hamming(&b));
        prop_assert_eq!(mask.invert(&mask.apply(&a)), a);
    }

    #[test]
    fn gray_code_round_trip_and_adjacency(n in 0u32..100_000) {
        prop_assert_eq!(quantize::gray::decode(quantize::gray::encode(n)), n);
        let d = (quantize::gray::encode(n) ^ quantize::gray::encode(n + 1)).count_ones();
        prop_assert_eq!(d, 1);
    }

    #[test]
    fn quantizers_are_deterministic(series in prop::collection::vec(-120.0f64..-40.0, 16..128)) {
        let multi = MultiBitQuantizer::new(2);
        prop_assert_eq!(multi.quantize(&series), multi.quantize(&series));
        let guard = GuardBandQuantizer::new(0.8);
        prop_assert_eq!(guard.quantize(&series), guard.quantize(&series));
        let fixed = FixedQuantizer::new(2);
        prop_assert_eq!(fixed.quantize(&series), fixed.quantize(&series));
    }

    #[test]
    fn fixed_quantizer_kept_bits_align(series in prop::collection::vec(-120.0f64..-40.0, 32..96)) {
        let q = FixedQuantizer::new(2).with_guard_z(0.2);
        let out = q.quantize(&series);
        prop_assert_eq!(out.bits.len(), out.kept.len() * 2);
        // Re-quantizing on the kept set reproduces the same bits.
        prop_assert_eq!(q.quantize_with_kept(&series, &out.kept), out.bits);
        // Kept indices are sorted and in range.
        prop_assert!(out.kept.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.kept.iter().all(|&i| i < series.len()));
    }

    #[test]
    fn sha256_avalanche_on_any_input(data in prop::collection::vec(any::<u8>(), 1..200), flip in any::<u8>()) {
        let mut flipped = data.clone();
        let idx = (flip as usize) % flipped.len();
        flipped[idx] ^= 1;
        let a = vk_crypto::sha256(&data);
        let b = vk_crypto::sha256(&flipped);
        let differing: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        prop_assert!(differing >= 64, "only {} bits differ", differing);
    }

    #[test]
    fn aes_ctr_round_trip(key in any::<[u8; 16]>(), nonce in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let aes = vk_crypto::Aes128::new(&key);
        prop_assert_eq!(aes.ctr(nonce, &aes.ctr(nonce, &msg)), msg);
    }

    #[test]
    fn aes_block_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = vk_crypto::Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn hmac_is_keyed(key in any::<[u8; 16]>(), msg in prop::collection::vec(any::<u8>(), 0..64)) {
        let tag = vk_crypto::hmac_sha256(&key, &msg);
        let mut other_key = key;
        other_key[0] ^= 1;
        prop_assert_ne!(tag, vk_crypto::hmac_sha256(&other_key, &msg));
        prop_assert!(vk_crypto::hmac::verify(&key, &msg, &tag));
    }

    #[test]
    fn privacy_amplification_is_deterministic_and_sensitive(
        v in prop::collection::vec(any::<bool>(), 64..256),
        flip in any::<u16>(),
    ) {
        let k1 = vk_crypto::amplify::amplify_128(&v);
        prop_assert_eq!(k1, vk_crypto::amplify::amplify_128(&v));
        let mut w = v.clone();
        let idx = (flip as usize) % w.len();
        w[idx] = !w[idx];
        prop_assert_ne!(k1, vk_crypto::amplify::amplify_128(&w));
    }

    #[test]
    fn leakage_debit_shrinks_the_entropy_budget(
        v in prop::collection::vec(any::<bool>(), 1..256),
        leak in 0usize..300,
    ) {
        // Every revealed parity bit must come out of the amplified key's
        // entropy budget, and full leakage must abort rather than derive
        // an enumerable key.
        match vk_crypto::amplify::amplify_with_leakage(&v, leak) {
            Some((key, effective)) => {
                prop_assert!(leak < v.len());
                prop_assert_eq!(effective, (v.len() - leak).min(128));
                // The debit is deterministic and the unused tail is zeroed,
                // so both endpoints can compare fixed-width keys.
                prop_assert_eq!(
                    Some((key, effective)),
                    vk_crypto::amplify::amplify_with_leakage(&v, leak)
                );
                let used = effective.div_ceil(8);
                prop_assert!(key[used..].iter().all(|&b| b == 0));
            }
            None => prop_assert!(leak >= v.len()),
        }
    }

    #[test]
    fn matrix_matmul_distributes_over_addition(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
        c in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        use nn::Matrix;
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(3, 2, b);
        let mc = Matrix::from_vec(3, 2, c);
        // A·(B + C) == A·B + A·C (within f32 tolerance).
        let lhs = ma.matmul(&mb.add(&mc));
        let rhs = ma.matmul(&mb).add(&ma.matmul(&mc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn lora_airtime_monotone_in_payload(len_a in 0usize..200, extra in 1usize..56) {
        let cfg = lora_phy::LoRaConfig::paper_default();
        prop_assert!(cfg.airtime(len_a + extra) >= cfg.airtime(len_a));
    }

    #[test]
    fn bessel_j0_bounded(x in -50.0f64..50.0) {
        let v = channel::bessel_j0(x);
        prop_assert!(v.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn wire_message_codec_round_trips(msg in message_strategy()) {
        let bytes = msg.encode();
        prop_assert_eq!(Message::decode(&bytes), Ok(msg));
    }

    #[test]
    fn wire_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary byte soup must decode or error — never panic.
        let _ = Message::decode(&data);
    }

    #[test]
    fn wire_decoder_rejects_truncations(msg in message_strategy(), cut in 1usize..16) {
        let bytes = msg.encode();
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        // Every strict prefix either errors or decodes to a *different*,
        // shorter message (possible only for self-delimiting payloads) —
        // and must never panic. Decoding the full frame stays exact.
        if let Ok(decoded) = Message::decode(truncated) {
            prop_assert_ne!(decoded, msg.clone());
        }
        prop_assert_eq!(Message::decode(&bytes), Ok(msg));
    }

    #[test]
    fn lifecycle_codec_round_trips(msg in lifecycle_message_strategy()) {
        let bytes = msg.encode();
        prop_assert_eq!(LifecycleMessage::decode(&bytes), Ok(msg));
    }

    #[test]
    fn lifecycle_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary byte soup must decode or error — never panic.
        let _ = LifecycleMessage::decode(&data);
    }

    #[test]
    fn lifecycle_decoder_rejects_truncations(msg in lifecycle_message_strategy(), cut in 1usize..16) {
        let bytes = msg.encode();
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        if let Ok(decoded) = LifecycleMessage::decode(truncated) {
            prop_assert_ne!(decoded, msg.clone());
        }
        prop_assert_eq!(LifecycleMessage::decode(&bytes), Ok(msg));
    }

    #[test]
    fn lifecycle_duplicate_frames_are_flagged_and_replayable(
        root in any::<[u8; 16]>(),
        sid in any::<u32>(),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        use vehicle_key::Disposition;
        let mut tx = SecureChannel::new(root, sid, ChannelRole::Initiator);
        let mut rx = SecureChannel::new(root, sid, ChannelRole::Responder);
        for payload in &payloads {
            let frame = tx.seal(payload).expect("payload under frame cap");
            let (first, plain) = rx.open(&frame).expect("authentic frame opens");
            prop_assert_eq!(first, Disposition::Accepted);
            prop_assert_eq!(&plain, payload);
            // Retransmission: same bytes re-delivered must flag Duplicate
            // and yield the identical payload, so the receiver re-acks
            // without double-processing.
            let (again, replay) = rx.open(&frame).expect("replay still authenticates");
            prop_assert_eq!(again, Disposition::Duplicate);
            prop_assert_eq!(&replay, payload);
        }
    }

    #[test]
    fn trace_extension_is_invisible_to_legacy_peers(
        msg in message_strategy(),
        ctx in trace_ctx_strategy(),
    ) {
        // A frame with the trace-context extension appended decodes to the
        // identical message for a peer that predates the extension, while
        // an extension-aware peer recovers exactly the advertised context.
        let bare = msg.encode();
        let mut framed = bare.to_vec();
        framed.extend_from_slice(&ctx.encode_ext());
        prop_assert_eq!(Message::decode(&framed), Ok(msg.clone()));
        prop_assert_eq!(vk_server::obs::extract_trace(&framed), Some(ctx));
        // Without the extension there is no phantom trace.
        prop_assert_eq!(Message::decode(&bare), Ok(msg));
        prop_assert_eq!(vk_server::obs::extract_trace(&bare), None);
    }

    #[test]
    fn garbage_extensions_never_abort_the_exchange(
        msg in message_strategy(),
        junk in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // Arbitrary trailing bytes — a corrupt extension, a different
        // extension, line noise — must leave the message intact and must
        // degrade trace extraction to an Option, never an error or panic.
        let mut framed = msg.encode().to_vec();
        framed.extend_from_slice(&junk);
        prop_assert_eq!(Message::decode(&framed), Ok(msg));
        let _ = vk_server::obs::extract_trace(&framed);
        // A region that does not even open with the magic byte is always
        // rejected outright.
        if junk[0] != telemetry::TRACE_EXT_MAGIC {
            prop_assert_eq!(telemetry::TraceContext::decode_ext(&junk), None);
        }
    }

    #[test]
    fn trace_extension_bodies_are_forward_compatible(
        ctx in trace_ctx_strategy(),
        pad in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        // A future writer may grow the body past 24 bytes; today's reader
        // must still recover the leading fields it understands.
        let mut ext = ctx.encode_ext();
        let body_len = telemetry::TRACE_EXT_BODY_LEN + pad.len();
        ext[1..3].copy_from_slice(&(body_len as u16).to_be_bytes());
        ext.extend_from_slice(&pad);
        prop_assert_eq!(telemetry::TraceContext::decode_ext(&ext), Some(ctx));
        // Truncating the declared body below the minimum rejects cleanly.
        let mut short = ctx.encode_ext();
        short[1..3].copy_from_slice(&8u16.to_be_bytes());
        prop_assert_eq!(telemetry::TraceContext::decode_ext(&short), None);
    }

    #[test]
    fn escalation_interleavings_never_yield_mismatched_keys(
        seed in any::<u64>(),
        flips in prop::collection::btree_set(0usize..64, 0..12),
        duplicate_replies in any::<bool>(),
        replay_stale in any::<bool>(),
    ) {
        use vehicle_key::{AliceDriver, Disposition, Message, Session};

        // Drive one block through the recovery ladder with rung replies
        // duplicated and stale replies re-delivered. The invariant: either
        // Alice accepts the block and both sides derive the *same* key with
        // the *same* leakage debit, or she aborts with a typed reason —
        // a mismatch must never be reported as success.
        let model = escalation::model();
        let sid = (seed % 1_000_000) as u32;
        let (nonce_a, nonce_b) = (seed ^ 0xA, seed ^ 0xB);
        let mut rng = StdRng::seed_from_u64(seed);
        let kb: BitString = (0..64).map(|_| rng.random::<bool>()).collect();
        let mut ka = kb.clone();
        for &p in &flips {
            ka.set(p, !ka.get(p));
        }
        let session = Session::new(sid, model.clone(), nonce_a, nonce_b);
        let mut alice = AliceDriver::new(sid, model.clone(), nonce_a, nonce_b, ka);
        let mut bob_kb = kb;
        let (code, mac) = session.bob_code_and_mac(&bob_kb);
        let mut answered = 0usize;
        let mut last_reply: Option<escalation::Reply> = None;
        let mut disp = match alice.handle_syndrome(sid, 0, &code, &mac) {
            Ok(d) => d,
            Err(e) => {
                prop_assert!(escalation::is_typed_abort(&e), "untyped abort {e:?}");
                return Ok(());
            }
        };
        let mut guard = 0;
        while disp != Disposition::Accepted {
            guard += 1;
            prop_assert!(guard < 400, "ladder neither converged nor aborted");
            if replay_stale {
                if let Some(stale) = &last_reply {
                    // A re-delivered earlier reply must be absorbed as a
                    // duplicate: no state change, no double-counted leakage.
                    let r = escalation::deliver(&mut alice, sid, stale);
                    prop_assert_eq!(r, Ok(Disposition::Duplicate));
                }
            }
            let query = alice
                .pending_recovery()
                .expect("escalated driver must expose its pending query")
                .clone();
            let reply = match query {
                Message::CascadeParity { block, round, queries, .. } => {
                    let qs: Vec<Vec<usize>> = queries
                        .iter()
                        .map(|q| q.iter().map(|&p| p as usize).collect())
                        .collect();
                    let parities = reconcile::cascade::parities(&bob_kb, &qs);
                    answered += parities.len();
                    escalation::Reply::Cascade { block, round, parities }
                }
                Message::ReprobeRequest { block, attempt, .. } => {
                    // A fresh, perfectly agreeing measurement: the ladder's
                    // job here is ordering/idempotence, not channel noise.
                    let mut fresh_rng = StdRng::seed_from_u64(seed ^ u64::from(attempt));
                    let fresh: BitString = (0..64).map(|_| fresh_rng.random::<bool>()).collect();
                    let (code, mac) = session.bob_code_and_mac(&fresh);
                    bob_kb = fresh.clone();
                    escalation::Reply::Reprobe { block, attempt, code, mac, fresh }
                }
                other => {
                    prop_assert!(false, "unexpected escalation query {other:?}");
                    unreachable!()
                }
            };
            disp = match escalation::deliver(&mut alice, sid, &reply) {
                Ok(d) => d,
                Err(e) => {
                    prop_assert!(escalation::is_typed_abort(&e), "untyped abort {e:?}");
                    return Ok(());
                }
            };
            if duplicate_replies {
                // The duplicated frame arrives again whatever state the
                // driver reached — it must always be a no-op.
                let r = escalation::deliver(&mut alice, sid, &reply);
                prop_assert_eq!(r, Ok(Disposition::Duplicate));
            }
            last_reply = Some(reply);
        }
        prop_assert_eq!(alice.leaked_bits(), answered, "leakage accounting diverged");
        let bob_final = vk_crypto::amplify::amplify_with_leakage(&bob_kb.to_bools(), answered);
        match alice.final_key_with_entropy() {
            Some((alice_key, entropy)) => {
                let (bob_key, bob_entropy) =
                    bob_final.expect("Alice derived a key Bob could not");
                prop_assert_eq!(alice_key, bob_key, "accepted block with mismatched keys");
                prop_assert_eq!(entropy, bob_entropy);
            }
            None => prop_assert!(bob_final.is_none(), "Bob derived a key Alice could not"),
        }
    }

    #[test]
    fn tampered_syndromes_never_accept_a_key(
        seed in any::<u64>(),
        choice in 0usize..4,
        idx in any::<u16>(),
        junk in prop::collection::vec(any::<u8>(), 1..48),
    ) {
        use vehicle_key::{AliceDriver, Disposition, Message, Session};

        // A perfectly agreeing channel, so the *untampered* syndrome would
        // accept on the first call — after mutation, acceptance is legal
        // only if the reconciler corrected the tampering back onto exactly
        // Bob's MAC-verified key. Landing anywhere else (Mallory steering
        // the key) must surface as escalation or a typed error, and the
        // decoder must never panic on the mutated bytes.
        let model = escalation::model();
        let sid = (seed % 1_000_000) as u32;
        let (nonce_a, nonce_b) = (seed ^ 0xA, seed ^ 0xB);
        let mut rng = StdRng::seed_from_u64(seed);
        let kb: BitString = (0..64).map(|_| rng.random::<bool>()).collect();
        let session = Session::new(sid, model.clone(), nonce_a, nonce_b);
        let (code, mac) = session.bob_code_and_mac(&kb);
        let frame = Message::Syndrome { session_id: sid, block: 0, code: code.clone(), mac }
            .encode();
        let mutated = mutate_frame(&frame, choice, idx, &junk);
        let Ok(decoded) = Message::decode(&mutated) else { return Ok(()) };
        let Message::Syndrome { session_id, block, code: mcode, mac: mmac } = decoded else {
            // Mutated into some other frame type: the serve loop's
            // rejection budget owns those, not the driver.
            return Ok(());
        };
        if (session_id, block, &mcode, &mmac) == (sid, 0, &code, &mac) {
            return Ok(()); // identity mutation (junk past a self-delimiting frame)
        }
        let mut alice = AliceDriver::new(sid, model.clone(), nonce_a, nonce_b, kb.clone());
        match alice.handle_syndrome(session_id, block, &mcode, &mmac) {
            Ok(Disposition::Accepted) => {
                let (alice_key, _) = alice
                    .final_key_with_entropy()
                    .expect("accepted driver must expose its key");
                let (bob_key, _) = vk_crypto::amplify::amplify_with_leakage(&kb.to_bools(), 0)
                    .expect("no leakage yet");
                prop_assert_eq!(alice_key, bob_key, "tampered syndrome steered the key");
            }
            Ok(_) => {}  // escalated or duplicate: tampering read as noise
            Err(_) => {} // typed rejection
        }
    }

    #[test]
    fn tampered_lifecycle_frames_never_authenticate(
        root in any::<[u8; 16]>(),
        sid in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        choice in 0usize..4,
        idx in any::<u16>(),
        junk in prop::collection::vec(any::<u8>(), 1..48),
    ) {
        use vehicle_key::Disposition;

        let mut tx = SecureChannel::new(root, sid, ChannelRole::Initiator);
        let mut rx = SecureChannel::new(root, sid, ChannelRole::Responder);
        let frame = tx.seal(&payload).expect("payload under frame cap");
        let mutated_bytes = mutate_frame(&frame.encode(), choice, idx, &junk);
        // A mutation the codec refuses outright never reaches the channel;
        // one it cannot distinguish (junk past the end of a
        // self-delimiting frame) is no forgery. Every other mutation must
        // be thrown out by the epoch MAC — and the rejection must not
        // poison the channel for the honest frame that follows.
        if let Ok(mutated) = LifecycleMessage::decode(&mutated_bytes) {
            if mutated != frame {
                prop_assert!(
                    rx.open(&mutated).is_err(),
                    "tampered lifecycle frame authenticated"
                );
            }
        }
        let (disp, plain) = rx.open(&frame).expect("honest frame must still open");
        prop_assert_eq!(disp, Disposition::Accepted);
        prop_assert_eq!(plain, payload);
    }

    #[test]
    fn nist_frequency_matches_bias(bias in 0.0f64..1.0) {
        // A deterministic sequence with `bias` fraction of ones: the
        // frequency test must reject clear bias and not reject balance.
        let n = 4000usize;
        let ones = (bias * n as f64) as usize;
        let bits: Vec<bool> = (0..n).map(|i| (i * 104729) % n < ones).collect();
        let r = nist::tests::frequency(&bits).unwrap();
        if (bias - 0.5).abs() > 0.1 {
            prop_assert!(!r.passed(), "bias {} passed with p {}", bias, r.p_value);
        }
    }
}
