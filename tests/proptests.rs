//! Property-based tests on the core data structures and invariants,
//! spanning the workspace crates.

use proptest::prelude::*;
use quantize::{BitString, FixedQuantizer, GuardBandQuantizer, MultiBitQuantizer};
use reconcile::PositionPreservingMask;
use vehicle_key::Message;

fn bits_strategy(max_len: usize) -> impl Strategy<Value = BitString> {
    prop::collection::vec(any::<bool>(), 1..max_len).prop_map(|v| BitString::from_bools(&v))
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(session_id, seq, nonce)| {
            Message::Probe {
                session_id,
                seq,
                nonce,
            }
        }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(session_id, seq, nonce)| {
            Message::ProbeReply {
                session_id,
                seq,
                nonce,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<i16>(), 0..64),
            any::<[u8; 32]>(),
        )
            .prop_map(|(session_id, block, code, mac)| Message::Syndrome {
                session_id,
                block,
                code,
                mac,
            }),
        (any::<u32>(), any::<[u8; 32]>())
            .prop_map(|(session_id, check)| Message::Confirm { session_id, check }),
        (any::<u32>(), any::<u32>()).prop_map(|(session_id, seq)| Message::Ack { session_id, seq }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitstring_xor_is_involutive(a in bits_strategy(256)) {
        let b = BitString::from_bools(&a.iter().map(|x| !x).collect::<Vec<_>>());
        prop_assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    fn bitstring_agreement_symmetric(v in prop::collection::vec(any::<(bool, bool)>(), 1..200)) {
        let a = BitString::from_bools(&v.iter().map(|p| p.0).collect::<Vec<_>>());
        let b = BitString::from_bools(&v.iter().map(|p| p.1).collect::<Vec<_>>());
        prop_assert!((a.agreement(&b) - b.agreement(&a)).abs() < 1e-12);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
    }

    #[test]
    fn bitstring_slice_extend_round_trip(a in bits_strategy(128), at in 0usize..128) {
        let at = at.min(a.len());
        let mut rebuilt = a.slice(0, at);
        rebuilt.extend(&a.slice(at, a.len() - at));
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn mask_preserves_hamming_distance(
        seed in any::<u64>(),
        v in prop::collection::vec(any::<(bool, bool)>(), 8..128),
    ) {
        let a = BitString::from_bools(&v.iter().map(|p| p.0).collect::<Vec<_>>());
        let b = BitString::from_bools(&v.iter().map(|p| p.1).collect::<Vec<_>>());
        let mask = PositionPreservingMask::new(seed, a.len());
        prop_assert_eq!(mask.apply(&a).hamming(&mask.apply(&b)), a.hamming(&b));
        prop_assert_eq!(mask.invert(&mask.apply(&a)), a);
    }

    #[test]
    fn gray_code_round_trip_and_adjacency(n in 0u32..100_000) {
        prop_assert_eq!(quantize::gray::decode(quantize::gray::encode(n)), n);
        let d = (quantize::gray::encode(n) ^ quantize::gray::encode(n + 1)).count_ones();
        prop_assert_eq!(d, 1);
    }

    #[test]
    fn quantizers_are_deterministic(series in prop::collection::vec(-120.0f64..-40.0, 16..128)) {
        let multi = MultiBitQuantizer::new(2);
        prop_assert_eq!(multi.quantize(&series), multi.quantize(&series));
        let guard = GuardBandQuantizer::new(0.8);
        prop_assert_eq!(guard.quantize(&series), guard.quantize(&series));
        let fixed = FixedQuantizer::new(2);
        prop_assert_eq!(fixed.quantize(&series), fixed.quantize(&series));
    }

    #[test]
    fn fixed_quantizer_kept_bits_align(series in prop::collection::vec(-120.0f64..-40.0, 32..96)) {
        let q = FixedQuantizer::new(2).with_guard_z(0.2);
        let out = q.quantize(&series);
        prop_assert_eq!(out.bits.len(), out.kept.len() * 2);
        // Re-quantizing on the kept set reproduces the same bits.
        prop_assert_eq!(q.quantize_with_kept(&series, &out.kept), out.bits);
        // Kept indices are sorted and in range.
        prop_assert!(out.kept.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.kept.iter().all(|&i| i < series.len()));
    }

    #[test]
    fn sha256_avalanche_on_any_input(data in prop::collection::vec(any::<u8>(), 1..200), flip in any::<u8>()) {
        let mut flipped = data.clone();
        let idx = (flip as usize) % flipped.len();
        flipped[idx] ^= 1;
        let a = vk_crypto::sha256(&data);
        let b = vk_crypto::sha256(&flipped);
        let differing: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        prop_assert!(differing >= 64, "only {} bits differ", differing);
    }

    #[test]
    fn aes_ctr_round_trip(key in any::<[u8; 16]>(), nonce in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let aes = vk_crypto::Aes128::new(&key);
        prop_assert_eq!(aes.ctr(nonce, &aes.ctr(nonce, &msg)), msg);
    }

    #[test]
    fn aes_block_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = vk_crypto::Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn hmac_is_keyed(key in any::<[u8; 16]>(), msg in prop::collection::vec(any::<u8>(), 0..64)) {
        let tag = vk_crypto::hmac_sha256(&key, &msg);
        let mut other_key = key;
        other_key[0] ^= 1;
        prop_assert_ne!(tag, vk_crypto::hmac_sha256(&other_key, &msg));
        prop_assert!(vk_crypto::hmac::verify(&key, &msg, &tag));
    }

    #[test]
    fn privacy_amplification_is_deterministic_and_sensitive(
        v in prop::collection::vec(any::<bool>(), 64..256),
        flip in any::<u16>(),
    ) {
        let k1 = vk_crypto::amplify::amplify_128(&v);
        prop_assert_eq!(k1, vk_crypto::amplify::amplify_128(&v));
        let mut w = v.clone();
        let idx = (flip as usize) % w.len();
        w[idx] = !w[idx];
        prop_assert_ne!(k1, vk_crypto::amplify::amplify_128(&w));
    }

    #[test]
    fn matrix_matmul_distributes_over_addition(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
        c in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        use nn::Matrix;
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(3, 2, b);
        let mc = Matrix::from_vec(3, 2, c);
        // A·(B + C) == A·B + A·C (within f32 tolerance).
        let lhs = ma.matmul(&mb.add(&mc));
        let rhs = ma.matmul(&mb).add(&ma.matmul(&mc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn lora_airtime_monotone_in_payload(len_a in 0usize..200, extra in 1usize..56) {
        let cfg = lora_phy::LoRaConfig::paper_default();
        prop_assert!(cfg.airtime(len_a + extra) >= cfg.airtime(len_a));
    }

    #[test]
    fn bessel_j0_bounded(x in -50.0f64..50.0) {
        let v = channel::bessel_j0(x);
        prop_assert!(v.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn wire_message_codec_round_trips(msg in message_strategy()) {
        let bytes = msg.encode();
        prop_assert_eq!(Message::decode(&bytes), Ok(msg));
    }

    #[test]
    fn wire_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary byte soup must decode or error — never panic.
        let _ = Message::decode(&data);
    }

    #[test]
    fn wire_decoder_rejects_truncations(msg in message_strategy(), cut in 1usize..16) {
        let bytes = msg.encode();
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        // Every strict prefix either errors or decodes to a *different*,
        // shorter message (possible only for self-delimiting payloads) —
        // and must never panic. Decoding the full frame stays exact.
        if let Ok(decoded) = Message::decode(truncated) {
            prop_assert_ne!(decoded, msg.clone());
        }
        prop_assert_eq!(Message::decode(&bytes), Ok(msg));
    }

    #[test]
    fn nist_frequency_matches_bias(bias in 0.0f64..1.0) {
        // A deterministic sequence with `bias` fraction of ones: the
        // frequency test must reject clear bias and not reject balance.
        let n = 4000usize;
        let ones = (bias * n as f64) as usize;
        let bits: Vec<bool> = (0..n).map(|i| (i * 104729) % n < ones).collect();
        let r = nist::tests::frequency(&bits).unwrap();
        if (bias - 0.5).abs() > 0.1 {
            prop_assert!(!r.passed(), "bias {} passed with p {}", bias, r.p_value);
        }
    }
}
