//! Integration: persistence paths — pipeline save/load and CSV trace
//! round trips through real files, exercised together.

use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("vk_integration");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn pipeline_survives_disk_round_trip_and_still_agrees() {
    let mut rng = StdRng::seed_from_u64(7100);
    let mut cfg = PipelineConfig::fast();
    cfg.train_rounds = 200;
    cfg.model.epochs = 8;
    cfg.reconciler = cfg.reconciler.with_steps(4000);
    let pipeline = KeyPipeline::train_for(ScenarioKind::V2vUrban, &cfg, &mut rng);

    let path = temp_path("pipeline_roundtrip.bin");
    pipeline.save(&path).expect("save pipeline");
    let restored = KeyPipeline::load(&path).expect("load pipeline");
    std::fs::remove_file(&path).ok();

    // The restored pipeline runs a session with sane metrics.
    let outcome = restored.run_session(ScenarioKind::V2vUrban, &mut rng);
    assert!(
        outcome.bit_agreement > 0.6,
        "restored pipeline agreement {}",
        outcome.bit_agreement
    );

    // And produces bit-identical inference to the original.
    let window: Vec<f64> = (0..cfg.model.seq_len)
        .map(|i| ((i * 7) as f64).sin())
        .collect();
    let baselines = vec![-95.0; window.len()];
    assert_eq!(
        pipeline.model().predict(&window, &baselines).1,
        restored.model().predict(&window, &baselines).1
    );
}

#[test]
fn csv_trace_feeds_a_loaded_pipeline() {
    let mut rng = StdRng::seed_from_u64(7200);
    let cfg = PipelineConfig::fast();

    // Record a campaign to CSV.
    let campaign = KeyPipeline::campaign(ScenarioKind::V2iUrban, &cfg, 60, 50.0, &mut rng);
    let trace_path = temp_path("trace_roundtrip.csv");
    let file = std::fs::File::create(&trace_path).expect("create trace");
    testbed::write_csv(&campaign, std::io::BufWriter::new(file)).expect("write csv");

    // Import and compare the analysis-relevant series.
    let file = std::fs::File::open(&trace_path).expect("open trace");
    let imported = testbed::read_csv(std::io::BufReader::new(file)).expect("read csv");
    std::fs::remove_file(&trace_path).ok();
    assert_eq!(imported.rounds.len(), campaign.rounds.len());
    let orig = cfg.extractor.paired_streams(&campaign);
    let back = cfg.extractor.paired_streams(&imported);
    assert_eq!(orig.alice.len(), back.alice.len());
    for (a, b) in orig.alice.iter().zip(&back.alice) {
        assert!((a - b).abs() < 0.05, "imported stream drifted: {a} vs {b}");
    }
}

#[test]
fn corrupted_pipeline_file_is_rejected() {
    let path = temp_path("corrupt_pipeline.bin");
    std::fs::write(&path, [1, 2, 3, 4, 5]).expect("write garbage");
    assert!(KeyPipeline::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}
