//! Data-parallel training must be bit-identical to sequential training.
//!
//! The compute layer's contract (`nn::pool`, `nn::kernel`): the worker
//! count changes wall clock only. Gradient shards are reduced in a fixed
//! order determined by the batch — never by the thread schedule — so a
//! seeded run produces the same weight bits at any `jobs` value. These
//! tests train real models twice (sequential vs. parallel pool) and compare
//! exact bit patterns, the same gate `repro -- nnbench` enforces at scale.

use nn::pool::set_global_jobs;
use quantize::BitString;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use reconcile::AutoencoderTrainer;
use vehicle_key::model::TrainSample;
use vehicle_key::{ModelConfig, PredictionQuantizationModel};

fn synth_dataset(count: usize, cfg: &ModelConfig, seed: u64) -> Vec<TrainSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| TrainSample {
            alice: (0..cfg.seq_len)
                .map(|_| rng.random::<f32>() - 0.5)
                .collect(),
            level: (0..cfg.seq_len)
                .map(|_| rng.random::<f32>() - 0.5)
                .collect(),
            bob_norm: (0..cfg.seq_len)
                .map(|_| rng.random::<f32>() - 0.5)
                .collect(),
            bob_bits: (0..cfg.key_bits)
                .map(|_| rng.random::<bool>())
                .collect::<BitString>(),
        })
        .collect()
}

/// Train the BiLSTM prediction model with the given worker count; return
/// (weight digest, final loss bits).
fn train_model(jobs: usize) -> (u64, u32) {
    set_global_jobs(jobs);
    let cfg = ModelConfig::default();
    let dataset = synth_dataset(48, &cfg, 7001);
    let mut model = PredictionQuantizationModel::new(cfg, &mut StdRng::seed_from_u64(7002));
    let report = model.train_epochs(&dataset, 2, &mut StdRng::seed_from_u64(7003));
    set_global_jobs(1);
    (model.weights_digest(), report.final_loss.to_bits())
}

#[test]
fn bilstm_training_is_bit_identical_across_job_counts() {
    let (seq_digest, seq_loss) = train_model(1);
    for jobs in [2, 4, 7] {
        let (par_digest, par_loss) = train_model(jobs);
        assert_eq!(
            seq_digest, par_digest,
            "weights diverged at jobs={jobs}: {seq_digest:#018x} vs {par_digest:#018x}"
        );
        assert_eq!(seq_loss, par_loss, "loss bits diverged at jobs={jobs}");
    }
}

/// Train the autoencoder reconciler with the given worker count; return its
/// syndrome for a fixed key, bit for bit.
fn train_reconciler(jobs: usize) -> Vec<u32> {
    set_global_jobs(jobs);
    let model = AutoencoderTrainer::default()
        .with_steps(600)
        .train(&mut StdRng::seed_from_u64(7010));
    set_global_jobs(1);
    let key: BitString = (0..model.key_len()).map(|i| i % 3 == 0).collect();
    model
        .bob_syndrome(&key)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn autoencoder_training_is_bit_identical_across_job_counts() {
    let seq = train_reconciler(1);
    for jobs in [2, 5] {
        assert_eq!(
            seq,
            train_reconciler(jobs),
            "reconciler diverged at jobs={jobs}"
        );
    }
}
