//! Integration: Vehicle-Key against the baseline schemes on shared
//! campaigns — the Fig. 12/13 ordering as a regression test.

use baselines::{GaoScheme, HanScheme, KeyScheme, LoRaKey};
use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use vehicle_key::pipeline::{KeyPipeline, PipelineConfig};

fn pipeline() -> &'static KeyPipeline {
    static PIPE: OnceLock<KeyPipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(8001);
        KeyPipeline::train_for(ScenarioKind::V2vUrban, &PipelineConfig::fast(), &mut rng)
    })
}

#[test]
fn vehicle_key_beats_baseline_agreement() {
    let mut rng = StdRng::seed_from_u64(8002);
    let cfg = pipeline().config();
    let sessions = 3;
    let mut vk = 0.0;
    let mut lorakey = 0.0;
    let mut han = 0.0;
    for _ in 0..sessions {
        let c = KeyPipeline::campaign(
            ScenarioKind::V2vUrban,
            cfg,
            cfg.session_rounds,
            cfg.speed_kmh,
            &mut rng,
        );
        vk += pipeline().run_on_campaign(&c, &mut rng).bit_agreement;
        lorakey += LoRaKey::default().run(&c).bit_agreement;
        han += HanScheme::default().run(&c).bit_agreement;
    }
    let n = sessions as f64;
    assert!(
        vk / n > lorakey / n,
        "Vehicle-Key {} must beat LoRa-Key {}",
        vk / n,
        lorakey / n
    );
    assert!(
        vk / n > han / n,
        "Vehicle-Key {} must beat Han {}",
        vk / n,
        han / n
    );
}

#[test]
fn vehicle_key_generates_bits_faster() {
    let mut rng = StdRng::seed_from_u64(8003);
    let cfg = pipeline().config();
    let c = KeyPipeline::campaign(
        ScenarioKind::V2vUrban,
        cfg,
        cfg.session_rounds,
        cfg.speed_kmh,
        &mut rng,
    );
    let vk_bits = pipeline().run_on_campaign(&c, &mut rng).raw_bits;
    let lk_bits = LoRaKey::default().run(&c).raw_bits;
    let gao_bits = GaoScheme::default().run(&c).raw_bits;
    assert!(
        vk_bits > lk_bits,
        "Vehicle-Key {vk_bits} bits must exceed LoRa-Key {lk_bits}"
    );
    assert!(
        vk_bits > gao_bits,
        "Vehicle-Key {vk_bits} bits must exceed Gao {gao_bits}"
    );
}

#[test]
fn all_schemes_run_on_all_scenarios() {
    // Robustness: no panics, sane outputs, on every scenario.
    let mut rng = StdRng::seed_from_u64(8004);
    let cfg = PipelineConfig::fast();
    for kind in ScenarioKind::ALL {
        let c = KeyPipeline::campaign(kind, &cfg, 60, 50.0, &mut rng);
        for scheme in [
            Box::new(LoRaKey::default()) as Box<dyn KeyScheme>,
            Box::new(HanScheme::default()),
            Box::new(GaoScheme::default()),
        ] {
            let o = scheme.run(&c);
            assert!(
                o.bit_agreement.is_nan() || (0.0..=1.0).contains(&o.bit_agreement),
                "{} on {kind}: agreement {}",
                scheme.name(),
                o.bit_agreement
            );
        }
    }
}
