//! Cross-crate physics invariants of the simulated substrate — the facts
//! the paper's preliminary study (Sec. II) establishes experimentally.

use lora_phy::LoRaConfig;
use mobility::ScenarioKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use testbed::{pearson, Campaign, Testbed, TestbedConfig};
use vehicle_key::features::ArRssiExtractor;

fn campaign(kind: ScenarioKind, rounds: usize, speed: f64, seed: u64) -> Campaign {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = TestbedConfig::default();
    let mut tb = Testbed::generate(
        kind,
        rounds as f64 * cfg.round_interval_s + 60.0,
        speed,
        cfg,
        &mut rng,
    );
    tb.run(rounds, &mut rng)
}

#[test]
fn airtime_dominates_probe_offset() {
    // Sec. II-A: ΔT is dominated by the transmit time, not propagation or
    // operation delay.
    let cfg = LoRaConfig::paper_default();
    let airtime = cfg.airtime(16);
    let offset = cfg.probe_offset(16, 10_000.0, 8.0e-3);
    assert!(airtime / offset > 0.95);
}

#[test]
fn boundary_arssi_beats_prssi_in_every_scenario() {
    // The Fig. 3 invariant, across all four scenarios.
    let ex = ArRssiExtractor::default();
    for (i, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        let c = campaign(kind, 80, 50.0, 100 + i as u64);
        let (a, b) = ex.boundary_series(&c);
        let r_ar = pearson(&a, &b);
        let r_p = pearson(&c.alice_prssi(), &c.bob_prssi());
        assert!(r_ar > r_p, "{kind}: arRSSI {r_ar} should beat pRSSI {r_p}");
        assert!(r_ar > 0.8, "{kind}: arRSSI corr {r_ar}");
    }
}

#[test]
fn higher_speed_decorrelates_detrended_prssi() {
    // Fig. 2(b) invariant: round-to-round pRSSI changes agree less at
    // higher speed. Averaged over seeds to beat scenario randomness.
    let diff_corr = |c: &Campaign| {
        let d = |v: &[f64]| -> Vec<f64> { v.windows(2).map(|w| w[1] - w[0]).collect() };
        pearson(&d(&c.alice_prssi()), &d(&c.bob_prssi()))
    };
    let mut slow = 0.0;
    let mut fast = 0.0;
    let runs = 4;
    for i in 0..runs {
        slow += diff_corr(&campaign(ScenarioKind::V2vUrban, 90, 10.0, 200 + i));
        fast += diff_corr(&campaign(ScenarioKind::V2vUrban, 90, 80.0, 300 + i));
    }
    assert!(
        slow > fast,
        "slow-speed corr {} should exceed fast-speed corr {}",
        slow / runs as f64,
        fast / runs as f64
    );
}

#[test]
fn eve_shares_trend_but_not_residual() {
    // The Fig. 16 invariant: raw traces correlate (trend), detrended
    // residuals do not.
    let c = campaign(ScenarioKind::V2iUrban, 250, 50.0, 400);
    let raw = ArRssiExtractor::default().with_detrend(false);
    let det = ArRssiExtractor::default();
    let sr = raw.paired_streams(&c);
    let sd = det.paired_streams(&c);
    let r_raw = pearson(&sr.alice, sr.eve.as_ref().unwrap());
    let r_det = pearson(&sd.bob, sd.eve.as_ref().unwrap());
    assert!(r_raw > 0.35, "Eve should share the raw trend: {r_raw}");
    assert!(
        r_det < 0.45,
        "Eve must not share the detrended residual: {r_det}"
    );
    assert!(
        r_raw > r_det + 0.15,
        "trend share must clearly exceed residual share: {r_raw} vs {r_det}"
    );
}

#[test]
fn detrended_legitimate_correlation_survives() {
    // The legitimate parties share the residual (boundary reciprocity) that
    // Eve lacks — the security asymmetry in one number each.
    let c = campaign(ScenarioKind::V2vUrban, 120, 50.0, 500);
    let sd = ArRssiExtractor::default().paired_streams(&c);
    let legit = pearson(&sd.alice, &sd.bob);
    let eve = pearson(&sd.bob, sd.eve.as_ref().unwrap());
    assert!(
        legit > eve + 0.3,
        "legitimate residual corr {legit} must clearly exceed Eve's {eve}"
    );
}

#[test]
fn rural_and_urban_campaigns_have_expected_texture() {
    // Urban Rayleigh fading has more spread than rural Rician.
    let std_of = |c: &Campaign| {
        let s = ArRssiExtractor::default().paired_streams(c);
        let m = s.bob.iter().sum::<f64>() / s.bob.len() as f64;
        (s.bob.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.bob.len() as f64).sqrt()
    };
    let mut urban = 0.0;
    let mut rural = 0.0;
    for i in 0..3 {
        urban += std_of(&campaign(ScenarioKind::V2vUrban, 60, 50.0, 600 + i));
        rural += std_of(&campaign(ScenarioKind::V2vRural, 60, 50.0, 700 + i));
    }
    assert!(
        urban > rural,
        "urban arRSSI spread {urban} should exceed rural {rural}"
    );
}
